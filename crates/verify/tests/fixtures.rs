//! Cross-crate fixtures for the analyzer and the oracle:
//!
//! * `cellfleet-shared-rack` — the deliberately symmetric corpus member
//!   whose replicas genuinely merge under `pomdp::lump`; the BPR105
//!   lump-consistency check must come back clean on it, full policy
//!   versus quotient policy, on reachable beliefs.
//! * Random tiny topologies — proptest sandwiches the oracle between
//!   nothing and the brute-force exact finite-horizon optimum: a
//!   `k`-sweep oracle holds only depth-`k` conditional-plan values, so
//!   it may never exceed `exact_value` at horizon `k`, and never the
//!   certified MDP ceiling either.

use bpr_core::{BoundedConfig, BoundedController, LumpedController};
use bpr_pomdp::Belief;
use bpr_topo::{cellfleet_shared_rack, compile, HazardSpec, TopologySpec};
use bpr_verify::{
    certified_lower_bound, exact_value, mdp_ceiling, verify_lumped, OracleOpts, VerifyConfig,
};
use proptest::prelude::*;

#[test]
fn shared_rack_lump_policy_is_consistent_on_reachable_beliefs() {
    let scenario = cellfleet_shared_rack();
    let model = bpr_core::scenario::Scenario::build(&scenario).unwrap();
    let t_op = bpr_core::scenario::Scenario::operator_response_time(&scenario);
    let transformed = model.without_notification(t_op).unwrap();
    let (quotient, certificate) = transformed.lump().unwrap();
    assert!(
        quotient.pomdp().n_states() < transformed.pomdp().n_states(),
        "fixture must genuinely merge states"
    );
    let full = BoundedController::new(transformed, BoundedConfig::default()).unwrap();
    let inner = BoundedController::new(quotient, BoundedConfig::default()).unwrap();
    let lumped = LumpedController::new(inner, certificate);
    let roots = bpr_core::scenario::Scenario::probe_beliefs(&scenario, &model);
    // A few hundred lockstep nodes is plenty to exercise divergence;
    // the walk warns (BPR100) rather than errors when the budget trips.
    let cfg = VerifyConfig {
        max_nodes: 256,
        ..VerifyConfig::default()
    };
    let report = verify_lumped("cellfleet-shared-rack", &full, &lumped, &roots, &cfg).unwrap();
    assert!(!report.has_errors(), "{}", report.render());
}

/// A coin-flip strategy (the vendored minimal proptest has no
/// `any::<bool>()`).
fn arb_bool() -> impl Strategy<Value = bool> {
    prop_oneof![Just(false), Just(true)]
}

/// Tiny random valid topologies: one tier of 1–2 services × 1–2
/// replicas on one host, so the transformed state space stays small
/// enough for brute-force plan enumeration at horizon 2.
fn arb_tiny_spec() -> impl Strategy<Value = TopologySpec> {
    (
        1usize..=2,
        1usize..=2,
        30.0f64..120.0,
        arb_bool(),
        0u64..1024,
    )
        .prop_map(|(services, replicas, duration, partitions, seed)| {
            TopologySpec::builder()
                .tier("svc", services, replicas, duration)
                .hosts(1)
                .racks(1)
                .restart_group_size(1)
                .hazards(HazardSpec {
                    partitions,
                    rolling_deploys: false,
                    deploy_fraction: 0.0,
                    cascade_prob: 0.0,
                })
                .operator_response_time(600.0)
                .duration_jitter(0.0)
                .seed(seed)
                .build()
                .expect("tiny specs are statically valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Oracle soundness, sandwiched: for every sweep depth `k`, the
    /// oracle's value never exceeds the exact horizon-`k` optimum (its
    /// vectors are depth-`k` plan values) and never the certified MDP
    /// ceiling, at corners and at the uniform belief.
    #[test]
    fn oracle_never_exceeds_brute_force_on_tiny_topologies(spec in arb_tiny_spec()) {
        let model = compile(&spec).expect("tiny specs compile");
        let transformed = model
            .without_notification(spec.operator_response_time)
            .unwrap();
        let n = transformed.pomdp().n_states();
        // 2 services × 2 replicas + partition tops out at 12 states,
        // keeping the horizon-2 enumeration cheap.
        prop_assert!(n <= 12, "generator produced {n} states");
        let ceiling = mdp_ceiling(&transformed, 100_000, 1e-12);
        let mut beliefs = vec![Belief::uniform(n)];
        for s in 0..n {
            beliefs.push(Belief::point(n, bpr_mdp::StateId::new(s)));
        }
        for sweeps in 0..=2usize {
            let oracle = certified_lower_bound(
                &transformed,
                &[],
                &OracleOpts { sweeps, ..OracleOpts::default() },
            );
            for belief in &beliefs {
                let lower = oracle.value(belief.probs());
                let exact = exact_value(&transformed, belief, sweeps);
                prop_assert!(
                    lower <= exact + 1e-9,
                    "{sweeps}-sweep oracle {lower} exceeds horizon-{sweeps} optimum {exact}"
                );
                let upper: f64 = belief
                    .probs()
                    .iter()
                    .zip(&ceiling)
                    .map(|(p, v)| p * v)
                    .sum();
                prop_assert!(
                    lower <= upper + 1e-9,
                    "oracle {lower} exceeds certified ceiling {upper}"
                );
            }
        }
    }
}
