//! Reachable policy-graph extraction for compiled bounded controllers.
//!
//! A compiled [`BoundedController`] induces a deterministic mapping
//! from beliefs to decisions; under the model's own dynamics the set
//! of beliefs the controller can actually hold from a given start is
//! countable, and for the recovery models here it closes into a small
//! finite graph (beliefs converge numerically and are interned under
//! quantization). This module materialises that graph: one node per
//! distinct reachable belief, carrying the frozen controller's
//! decision, the bound value it advertises there, and the
//! observation-labelled transition edges to successor nodes. The
//! BPR100-series checks in [`crate::checks`] are all graph walks over
//! this structure.
//!
//! Extraction never mutates the controller under analysis: the probe
//! is a reconstruction with online backups and startup sweeps
//! disabled, so the bound set (and therefore every decision) is frozen
//! for the duration of the walk.

use std::collections::{HashMap, VecDeque};

use bpr_core::{BoundedConfig, BoundedController, Error, RecoveryController, Step};
use bpr_pomdp::{Belief, ObservationId};

use crate::VerifyConfig;

/// One reachable node of a compiled policy: a belief the controller
/// can actually hold, the decision it makes there, and the advertised
/// bound backing that decision.
#[derive(Debug, Clone)]
pub struct PolicyNode {
    /// The belief over the *transformed* state space (including `s_T`).
    pub belief: Belief,
    /// The decision the frozen controller makes at this belief.
    pub step: Step,
    /// The bound value the controller advertises here (the max over
    /// its hyperplane set).
    pub bound_value: f64,
    /// Index of the supporting hyperplane behind `bound_value`
    /// (parallel to `VectorSetBound::iter`), if the set is non-empty.
    pub support: Option<usize>,
    /// Outgoing `(observation, probability, node)` edges. Empty for
    /// terminate decisions and for unexpanded frontier nodes.
    pub successors: Vec<(ObservationId, f64, usize)>,
    /// Whether the node's successors were explored (`false` only when
    /// the node budget truncated extraction at this frontier node).
    pub expanded: bool,
}

/// The finite reachable belief-node graph of a compiled policy.
#[derive(Debug, Clone)]
pub struct PolicyGraph {
    /// All discovered nodes; edges index into this vector.
    pub nodes: Vec<PolicyNode>,
    /// Node indices of the extraction roots, parallel to the root
    /// beliefs handed to [`extract_policy_graph`].
    pub roots: Vec<usize>,
    /// True when the node budget was exhausted before the reachable
    /// set closed; unexpanded frontier nodes remain in `nodes`.
    pub truncated: bool,
}

impl PolicyGraph {
    /// Number of frontier nodes whose successors were not explored.
    pub fn unexpanded(&self) -> usize {
        self.nodes.iter().filter(|n| !n.expanded).count()
    }

    /// Number of nodes deciding [`Step::Terminate`].
    pub fn terminating(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.step, Step::Terminate))
            .count()
    }
}

/// Quantized belief key: probabilities rounded to multiples of
/// `quantization` so beliefs that converge numerically intern to the
/// same node.
pub(crate) fn key_of(belief: &Belief, quantization: f64) -> Vec<i64> {
    let scale = 1.0 / quantization;
    belief
        .probs()
        .iter()
        .map(|p| (p * scale).round() as i64)
        .collect()
}

/// Rebuilds `controller` with online backups, startup sweeps, and
/// root parallelism disabled, so repeated `begin`/`decide` probes are
/// side-effect-free on the bound and bit-deterministic.
///
/// # Errors
///
/// Propagates controller construction failures.
pub(crate) fn frozen_probe(controller: &BoundedController) -> Result<BoundedController, Error> {
    let config = BoundedConfig {
        backup_online: false,
        startup_vertex_sweeps: 0,
        root_threads: 1,
        ..controller.config().clone()
    };
    BoundedController::with_bound(
        controller.model().clone(),
        controller.bound().clone(),
        config,
    )
}

/// Interns `belief` (base- or transformed-space) as a graph node,
/// probing the frozen controller for its decision and advertised
/// bound; returns the existing index when the quantized belief was
/// already seen.
fn intern(
    belief: Belief,
    probe: &mut BoundedController,
    nodes: &mut Vec<PolicyNode>,
    index: &mut HashMap<Vec<i64>, usize>,
    queue: &mut VecDeque<usize>,
    quantization: f64,
) -> Result<usize, Error> {
    probe.begin(belief, None)?;
    let transformed = probe
        .transformed_belief()
        .expect("controller holds a belief after begin")
        .clone();
    let key = key_of(&transformed, quantization);
    if let Some(&i) = index.get(&key) {
        return Ok(i);
    }
    let step = probe.decide()?;
    let (support, bound_value) = match probe.bound().best_vector_quiet(transformed.probs()) {
        Some((i, v)) => (Some(i), v),
        None => (None, f64::NEG_INFINITY),
    };
    let i = nodes.len();
    nodes.push(PolicyNode {
        belief: transformed,
        step,
        bound_value,
        support,
        successors: Vec::new(),
        expanded: false,
    });
    index.insert(key, i);
    queue.push_back(i);
    Ok(i)
}

/// Extracts the reachable policy graph of `controller` from `roots`
/// (base- or transformed-space beliefs) under the model's dynamics.
///
/// Exploration is breadth-first with nodes interned under 1e-9 belief
/// quantization; it stops expanding once `cfg.max_nodes` nodes exist
/// (the graph is then marked [`PolicyGraph::truncated`] and the
/// remaining frontier stays unexpanded). Successor edges below
/// `cfg.successor_cutoff` observation probability are dropped; the
/// default cutoff of `0.0` keeps every positive-probability edge, so
/// each expanded node's edge probabilities sum to 1.
///
/// # Errors
///
/// Propagates probe-controller construction and decision failures.
pub fn extract_policy_graph(
    controller: &BoundedController,
    roots: &[Belief],
    cfg: &VerifyConfig,
) -> Result<PolicyGraph, Error> {
    let mut probe = frozen_probe(controller)?;
    let mut nodes: Vec<PolicyNode> = Vec::new();
    let mut index: HashMap<Vec<i64>, usize> = HashMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut root_ids = Vec::with_capacity(roots.len());
    for root in roots {
        root_ids.push(intern(
            root.clone(),
            &mut probe,
            &mut nodes,
            &mut index,
            &mut queue,
            cfg.quantization,
        )?);
    }
    let mut truncated = false;
    while let Some(i) = queue.pop_front() {
        match nodes[i].step {
            Step::Terminate => {
                nodes[i].expanded = true;
            }
            Step::Execute(action) => {
                if nodes.len() >= cfg.max_nodes {
                    truncated = true;
                    continue;
                }
                let belief = nodes[i].belief.clone();
                let successors =
                    belief.successors(controller.model().pomdp(), action, cfg.successor_cutoff);
                let mut edges = Vec::with_capacity(successors.len());
                for (o, gamma, next) in successors {
                    let j = intern(
                        next,
                        &mut probe,
                        &mut nodes,
                        &mut index,
                        &mut queue,
                        cfg.quantization,
                    )?;
                    edges.push((o, gamma, j));
                }
                nodes[i].successors = edges;
                nodes[i].expanded = true;
            }
        }
    }
    Ok(PolicyGraph {
        nodes,
        roots: root_ids,
        truncated,
    })
}
