//! BPR100-series policy-graph diagnostics.
//!
//! Each check here is a pure walk over an extracted [`PolicyGraph`]
//! (plus, for lump consistency, a lockstep walk driving two frozen
//! controllers through the same dynamics). Findings flow through the
//! shared `bpr-lint` [`Diagnostic`]/[`LintReport`] machinery under the
//! BPR100-series codes, so `certify` and CI consume policy findings
//! with exactly the tooling they already use for model findings.
//!
//! The soundness check (BPR102) rests on the paper's uniform
//! improvability argument: every hyperplane a healthy bound set holds
//! is the value of a concrete conditional plan, so the max-of-planes
//! bound `B` satisfies `T B ≥ B` and the greedy controller achieves at
//! least `B` from every belief. The check computes the policy's actual
//! expected cost-to-go `V_π` on the finite graph by Gauss–Seidel and
//! flags any reachable node where `V_π < B − tol` — which is exactly
//! what a corrupted (too-high) hyperplane produces.

use std::collections::{HashSet, VecDeque};

use bpr_core::{BoundedController, Error, LumpedController, RecoveryController, Step};
use bpr_lint::{Diagnostic, LintCode, LintReport, Severity};
use bpr_mdp::ActionId;
use bpr_pomdp::{Belief, Pomdp};

use crate::graph::{frozen_probe, key_of, PolicyGraph};
use crate::VerifyConfig;

/// Per-node flags: can the policy reach a terminate (or unexplored
/// frontier) node from here? Computed by reverse BFS; on a finite
/// graph whose expanded nodes carry their full positive-probability
/// edge set, reachability of termination from every node is equivalent
/// to absorption with probability 1 (no livelock).
pub fn reaches_termination(graph: &PolicyGraph) -> Vec<bool> {
    let n = graph.nodes.len();
    let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut ok = vec![false; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        // Unexpanded frontier nodes are unknowns, not livelocks: give
        // them the benefit of the doubt (BPR100 already flags the
        // truncation itself).
        if matches!(node.step, Step::Terminate) || !node.expanded {
            ok[i] = true;
            queue.push_back(i);
        }
        for &(_, _, j) in &node.successors {
            reverse[j].push(i);
        }
    }
    while let Some(j) = queue.pop_front() {
        for &i in &reverse[j] {
            if !ok[i] {
                ok[i] = true;
                queue.push_back(i);
            }
        }
    }
    ok
}

/// The policy's expected cost-to-go `V_π` per graph node, by
/// Gauss–Seidel value determination on the finite graph.
///
/// Terminate nodes are exact (`r(b, a_T)`); unexpanded frontier nodes
/// are *assumed* to meet their advertised bound (the BPR100 warning
/// covers the caveat); nodes that cannot reach termination are left at
/// `-inf` (their true cost diverges — BPR101 flags them, and BPR102
/// skips them). Edge mass lost to a successor cutoff is likewise
/// credited the node's own advertised bound.
pub fn policy_values(
    graph: &PolicyGraph,
    pomdp: &Pomdp,
    terminate_action: ActionId,
    absorbed: &[bool],
    cfg: &VerifyConfig,
) -> Vec<f64> {
    let n = graph.nodes.len();
    let mut values = vec![0.0; n];
    let mut rewards = vec![0.0; n];
    let mut solve: Vec<usize> = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        match node.step {
            Step::Terminate => values[i] = node.belief.expected_reward(pomdp, terminate_action),
            Step::Execute(a) => {
                if !node.expanded {
                    values[i] = node.bound_value;
                } else if !absorbed[i] {
                    values[i] = f64::NEG_INFINITY;
                } else {
                    rewards[i] = node.belief.expected_reward(pomdp, a);
                    values[i] = node.bound_value;
                    solve.push(i);
                }
            }
        }
    }
    for _ in 0..cfg.value_sweeps {
        let mut delta: f64 = 0.0;
        for &i in solve.iter().rev() {
            let node = &graph.nodes[i];
            let mut value = rewards[i];
            let mut mass = 0.0;
            for &(_, gamma, j) in &node.successors {
                value += gamma * values[j];
                mass += gamma;
            }
            // Cutoff-dropped edge mass is assumed to meet the bound.
            value += (1.0 - mass).max(0.0) * node.bound_value;
            delta = delta.max((value - values[i]).abs());
            values[i] = value;
        }
        if delta < 1e-12 {
            break;
        }
    }
    values
}

fn most_likely_states(graph: &PolicyGraph, nodes: &[usize], cap: usize) -> Vec<bpr_mdp::StateId> {
    let mut seen = HashSet::new();
    let mut states = Vec::new();
    for &i in nodes.iter().take(cap * 4) {
        let s = graph.nodes[i].belief.most_likely().0;
        if seen.insert(s) {
            states.push(s);
            if states.len() >= cap {
                break;
            }
        }
    }
    states
}

/// Runs every per-graph BPR100-series check and returns the raw
/// diagnostics (callers wrap them in a [`LintReport`]).
pub fn check_policy_graph(
    graph: &PolicyGraph,
    controller: &BoundedController,
    cfg: &VerifyConfig,
) -> Vec<Diagnostic> {
    let model = controller.model();
    let pomdp = model.pomdp();
    let mut diagnostics = Vec::new();

    // BPR100 — truncated extraction.
    if graph.truncated {
        diagnostics.push(Diagnostic::new(
            LintCode::PolicyGraphTruncated,
            Severity::Warn,
            format!(
                "policy-graph extraction hit the {}-node budget ({} nodes, {} unexpanded); \
                 livelock/bound/dead-action verdicts cover only the explored prefix",
                cfg.max_nodes,
                graph.nodes.len(),
                graph.unexpanded()
            ),
        ));
    }

    // BPR101 — reachable nodes that cannot reach termination.
    let absorbed = reaches_termination(graph);
    let livelocked: Vec<usize> = (0..graph.nodes.len()).filter(|&i| !absorbed[i]).collect();
    if !livelocked.is_empty() {
        diagnostics.push(
            Diagnostic::new(
                LintCode::PolicyLivelock,
                Severity::Error,
                format!(
                    "{} of {} reachable policy nodes can never reach termination \
                     (absorbing non-terminal component; first at node {})",
                    livelocked.len(),
                    graph.nodes.len(),
                    livelocked[0]
                ),
            )
            .with_states(
                pomdp,
                &most_likely_states(graph, &livelocked, cfg.max_listed),
            ),
        );
    }

    // BPR102 — advertised bound not achieved by the policy itself.
    let values = policy_values(graph, pomdp, model.terminate_action(), &absorbed, cfg);
    let mut violations: Vec<usize> = Vec::new();
    let mut worst_gap = 0.0_f64;
    for (i, node) in graph.nodes.iter().enumerate() {
        if !absorbed[i] || !node.expanded {
            continue;
        }
        let tolerance = cfg.tolerance * (1.0 + node.bound_value.abs());
        let gap = node.bound_value - values[i];
        if gap > tolerance {
            violations.push(i);
            worst_gap = worst_gap.max(gap);
        }
    }
    if !violations.is_empty() {
        diagnostics.push(
            Diagnostic::new(
                LintCode::PolicyBoundViolation,
                Severity::Error,
                format!(
                    "{} reachable nodes advertise a bound above the policy's own \
                     cost-to-go (worst overclaim {:.6}; first at node {}: bound {:.6} \
                     vs achieved {:.6})",
                    violations.len(),
                    worst_gap,
                    violations[0],
                    graph.nodes[violations[0]].bound_value,
                    values[violations[0]],
                ),
            )
            .with_states(
                pomdp,
                &most_likely_states(graph, &violations, cfg.max_listed),
            ),
        );
    }

    // BPR103 — base actions the policy never selects.
    let selected: HashSet<ActionId> = graph
        .nodes
        .iter()
        .filter_map(|n| match n.step {
            Step::Execute(a) => Some(a),
            Step::Terminate => None,
        })
        .collect();
    let dead: Vec<ActionId> = (0..pomdp.n_actions())
        .map(ActionId::new)
        .filter(|&a| model.is_base_action(a) && !selected.contains(&a))
        .collect();
    if !dead.is_empty() {
        let listed: Vec<ActionId> = dead.iter().copied().take(cfg.max_listed).collect();
        diagnostics.push(
            Diagnostic::new(
                LintCode::PolicyDeadAction,
                Severity::Info,
                format!(
                    "{} of {} base actions are never selected at any reachable policy node",
                    dead.len(),
                    pomdp.n_actions() - 1
                ),
            )
            .with_actions(pomdp, &listed),
        );
    }

    // BPR104 — hyperplanes that never support a reachable node belief.
    let supporting: HashSet<usize> = graph.nodes.iter().filter_map(|n| n.support).collect();
    let unused: Vec<usize> = (0..controller.bound().len())
        .filter(|i| !supporting.contains(i))
        .collect();
    if !unused.is_empty() {
        let mut listed: String = unused
            .iter()
            .take(cfg.max_listed)
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        if unused.len() > cfg.max_listed {
            listed.push_str(", ...");
        }
        diagnostics.push(Diagnostic::new(
            LintCode::PolicyUnusedVector,
            Severity::Info,
            format!(
                "{} of {} bound hyperplanes never support a reachable node belief \
                 (eviction candidates: [{listed}])",
                unused.len(),
                controller.bound().len()
            ),
        ));
    }

    diagnostics
}

/// Lockstep lump-consistency check (BPR105): drives the full-space
/// controller and the quotient controller through the same reachable
/// belief walk — quotient beliefs obtained by projecting the full
/// belief through the certificate — and flags any node where the two
/// decisions diverge. With a valid strong-lumping certificate the
/// projected policy graph and the quotient policy graph are
/// decision-identical, so any divergence falsifies the certificate on
/// a realized trajectory.
///
/// # Errors
///
/// Propagates probe construction, projection, and decision failures.
pub fn check_lump_consistency(
    full: &BoundedController,
    lumped: &LumpedController<BoundedController>,
    roots: &[Belief],
    cfg: &VerifyConfig,
) -> Result<Vec<Diagnostic>, Error> {
    let certificate = lumped.certificate();
    let mut probe_full = frozen_probe(full)?;
    let mut probe_quotient = frozen_probe(lumped.inner())?;
    let pomdp = full.model().pomdp();
    let mut diagnostics = Vec::new();
    let mut seen: HashSet<Vec<i64>> = HashSet::new();
    let mut queue: VecDeque<Belief> = VecDeque::new();
    for root in roots {
        probe_full.begin(root.clone(), None)?;
        let transformed = probe_full
            .transformed_belief()
            .expect("controller holds a belief after begin")
            .clone();
        if seen.insert(key_of(&transformed, cfg.quantization)) {
            queue.push_back(transformed);
        }
    }
    let mut visited = 0usize;
    while let Some(belief) = queue.pop_front() {
        if visited >= cfg.max_nodes {
            diagnostics.push(Diagnostic::new(
                LintCode::PolicyGraphTruncated,
                Severity::Warn,
                format!(
                    "lump-consistency walk hit the {}-node budget; later nodes unchecked",
                    cfg.max_nodes
                ),
            ));
            break;
        }
        visited += 1;
        probe_full.begin(belief.clone(), None)?;
        let step_full = probe_full.decide()?;
        let projected = Belief::from_probs(certificate.project_weights(belief.probs()))
            .map_err(Error::Pomdp)?;
        probe_quotient.begin(projected, None)?;
        let step_quotient = probe_quotient.decide()?;
        if step_full != step_quotient {
            diagnostics.push(
                Diagnostic::new(
                    LintCode::PolicyLumpDivergence,
                    Severity::Error,
                    format!(
                        "full-space policy decides {step_full:?} but the quotient policy \
                         decides {step_quotient:?} at a reachable belief (walk node {visited})",
                    ),
                )
                .with_states(pomdp, &[belief.most_likely().0]),
            );
            if diagnostics.len() >= cfg.max_listed {
                break;
            }
            continue;
        }
        if let Step::Execute(action) = step_full {
            for (_, _, next) in belief.successors(pomdp, action, cfg.successor_cutoff) {
                if seen.insert(key_of(&next, cfg.quantization)) {
                    queue.push_back(next);
                }
            }
        }
    }
    Ok(diagnostics)
}

/// Wraps graph diagnostics in a named [`LintReport`] (the shared
/// severity-then-code ordering applies).
pub fn report(name: &str, diagnostics: Vec<Diagnostic>) -> LintReport {
    LintReport::new(format!("{name} (policy)"), diagnostics)
}
