#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `bpr-verify` — static analysis for compiled recovery policies and
//! certified value approximations for the bounds behind them.
//!
//! Where `bpr-lint` (BPR001–BPR019) validates *models*, this crate
//! validates what the planner builds **from** them:
//!
//! 1. **Policy-graph analyzer** ([`extract_policy_graph`] +
//!    [`checks`]): materialise the finite reachable belief-node graph
//!    of a compiled [`BoundedController`] under the model's own
//!    dynamics, then run the BPR100-series diagnostics through the
//!    shared `bpr-lint` report machinery — livelock (BPR101), bound
//!    soundness against the policy's own cost-to-go (BPR102), dead
//!    actions (BPR103), eviction-eligible hyperplanes (BPR104), and
//!    lump-quotient decision consistency (BPR105).
//! 2. **Certified oracle** ([`oracle`]): a belief-discretization
//!    under-approximation of the achievable value plus a
//!    fully-observable upper ceiling, both independent of the
//!    planning kernel, bracketing every bound the kernel advertises.
//!
//! `bench --bin certify` drives both against the registry scenarios
//! and gates CI on the result.

pub mod checks;
pub mod graph;
pub mod oracle;

use bpr_core::scenario::Scenario;
use bpr_core::{BoundedConfig, BoundedController, Error, LumpedController};
use bpr_lint::LintReport;
use bpr_pomdp::Belief;

pub use checks::{check_lump_consistency, check_policy_graph, policy_values, reaches_termination};
pub use graph::{extract_policy_graph, PolicyGraph, PolicyNode};
pub use oracle::{certified_lower_bound, exact_value, mdp_ceiling, Oracle, OracleOpts};

/// Tunables for policy-graph extraction and the BPR100-series checks.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Node budget for the reachable-belief walk; exhausting it marks
    /// the graph truncated (BPR100) and leaves the frontier unexpanded.
    pub max_nodes: usize,
    /// Observation-probability cutoff below which successor edges are
    /// dropped. The default `0.0` keeps every positive-probability
    /// edge, making livelock and cost-to-go analysis exact on the
    /// explored graph.
    pub successor_cutoff: f64,
    /// Belief-quantization granularity for node interning: beliefs
    /// whose probabilities round to the same multiple of this merge
    /// into one node. Coarser grids close the reachable set sooner
    /// but perturb successor beliefs by up to this much per
    /// coordinate — keep `tolerance` comfortably above the induced
    /// value error.
    pub quantization: f64,
    /// Relative tolerance for the BPR102 bound-achievement comparison
    /// (must absorb quantization-induced cost-to-go error; corruption
    /// below this slips through to certify's ceiling check instead).
    pub tolerance: f64,
    /// Cap on Gauss–Seidel sweeps when solving the policy's
    /// cost-to-go (early exit at 1e-12 residual).
    pub value_sweeps: usize,
    /// Cap on states/actions/vector indices listed per diagnostic.
    pub max_listed: usize,
}

impl Default for VerifyConfig {
    fn default() -> VerifyConfig {
        VerifyConfig {
            max_nodes: 4096,
            successor_cutoff: 0.0,
            quantization: 1e-4,
            tolerance: 1e-3,
            value_sweeps: 100_000,
            max_listed: 12,
        }
    }
}

/// Everything one policy-graph verification produces: the graph, the
/// policy's cost-to-go per node, and the structured findings.
#[derive(Debug, Clone)]
pub struct VerifyOutcome {
    /// The extracted reachable policy graph.
    pub graph: PolicyGraph,
    /// The policy's expected cost-to-go per graph node (see
    /// [`policy_values`] for frontier/livelock conventions).
    pub values: Vec<f64>,
    /// BPR100-series findings as a standard lint report.
    pub report: LintReport,
}

impl VerifyOutcome {
    /// True when no error-severity finding survived.
    pub fn is_sound(&self) -> bool {
        !self.report.has_errors()
    }
}

/// Extracts the policy graph of `controller` from `roots` (base- or
/// transformed-space beliefs) and runs every per-graph BPR100-series
/// check; `name` labels the report.
///
/// # Errors
///
/// Propagates probe-controller construction and decision failures.
pub fn verify_controller(
    name: &str,
    controller: &BoundedController,
    roots: &[Belief],
    cfg: &VerifyConfig,
) -> Result<VerifyOutcome, Error> {
    let graph = extract_policy_graph(controller, roots, cfg)?;
    let diagnostics = check_policy_graph(&graph, controller, cfg);
    let absorbed = reaches_termination(&graph);
    let values = policy_values(
        &graph,
        controller.model().pomdp(),
        controller.model().terminate_action(),
        &absorbed,
        cfg,
    );
    Ok(VerifyOutcome {
        graph,
        values,
        report: checks::report(name, diagnostics),
    })
}

/// Runs the lump-consistency analysis (BPR105) between a full-space
/// controller and its lumped counterpart, walking the reachable
/// belief set from `roots`.
///
/// # Errors
///
/// Propagates probe construction, projection, and decision failures.
pub fn verify_lumped(
    name: &str,
    full: &BoundedController,
    lumped: &LumpedController<BoundedController>,
    roots: &[Belief],
    cfg: &VerifyConfig,
) -> Result<LintReport, Error> {
    let diagnostics = check_lump_consistency(full, lumped, roots, cfg)?;
    Ok(LintReport::new(
        format!("{name} (lump policy)"),
        diagnostics,
    ))
}

/// Scenario-level entry point: builds the scenario's model, applies
/// the §3.1 transform with the scenario's operator response time,
/// compiles a default bounded controller, and verifies its policy
/// graph from the scenario's probe beliefs.
///
/// # Errors
///
/// Propagates build, transform, controller, and verification failures.
pub fn verify_scenario(
    scenario: &dyn Scenario,
    cfg: &VerifyConfig,
) -> Result<VerifyOutcome, Error> {
    let model = scenario.build()?;
    let transformed = model.without_notification(scenario.operator_response_time())?;
    let controller = BoundedController::new(transformed, BoundedConfig::default())?;
    let roots = scenario.probe_beliefs(&model);
    verify_controller(scenario.name(), &controller, &roots, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpr_core::{RecoveryController, Step};
    use bpr_lint::LintCode;
    use bpr_pomdp::StateId;

    fn two_server() -> bpr_core::RecoveryModel {
        bpr_emn::two_server::model(&bpr_emn::two_server::TwoServerConfig::default()).unwrap()
    }

    fn default_controller(model: &bpr_core::RecoveryModel) -> BoundedController {
        let transformed = model.without_notification(10.0).unwrap();
        BoundedController::new(transformed, BoundedConfig::default()).unwrap()
    }

    #[test]
    fn two_server_policy_graph_is_clean_and_closes() {
        let model = two_server();
        let controller = default_controller(&model);
        let roots = vec![Belief::uniform(3), Belief::point(3, StateId::new(1))];
        let outcome =
            verify_controller("two-server", &controller, &roots, &VerifyConfig::default()).unwrap();
        assert!(!outcome.graph.truncated);
        assert!(outcome.graph.terminating() > 0, "policy never terminates");
        assert!(
            outcome.is_sound(),
            "unexpected findings:\n{}",
            outcome.report.render()
        );
        // Every node's achieved value meets its advertised bound.
        for (node, &value) in outcome.graph.nodes.iter().zip(&outcome.values) {
            assert!(
                value >= node.bound_value - 1e-6 * (1.0 + node.bound_value.abs()),
                "bound {} not achieved ({})",
                node.bound_value,
                value
            );
        }
    }

    #[test]
    fn corrupted_hyperplane_is_flagged_as_bound_violation() {
        let model = two_server();
        let mut controller = default_controller(&model);
        // A near-zero hyperplane claims recovery is almost free from
        // every state — strictly above the true optimum at any fault
        // belief. Dominance pruning accepts it (it is too HIGH, not
        // too low), which is exactly the corruption mode to catch.
        let n = controller.model().pomdp().n_states();
        controller.bound_mut().add_vector(vec![-1e-9; n]).unwrap();
        let roots = vec![Belief::uniform(3), Belief::point(3, StateId::new(1))];
        let outcome =
            verify_controller("two-server", &controller, &roots, &VerifyConfig::default()).unwrap();
        assert!(!outcome.is_sound(), "corrupted bound passed verification");
        assert!(
            outcome
                .report
                .diagnostics()
                .iter()
                .any(|d| d.code == LintCode::PolicyBoundViolation),
            "expected BPR102:\n{}",
            outcome.report.render()
        );
    }

    #[test]
    fn oracle_brackets_the_two_server_bound() {
        let model = two_server();
        let transformed = model.without_notification(10.0).unwrap();
        let mut controller =
            BoundedController::new(transformed.clone(), BoundedConfig::default()).unwrap();
        let mut probe = Belief::uniform(3).probs().to_vec();
        probe.push(0.0);
        let probes = vec![Belief::from_probs(probe.clone()).unwrap()];
        let oracle = certified_lower_bound(&transformed, &probes, &OracleOpts::default());
        let ceiling = mdp_ceiling(&transformed, 10_000, 1e-12);
        let lower = oracle.value(&probe);
        let upper: f64 = probe.iter().zip(&ceiling).map(|(p, v)| p * v).sum();
        let raw = controller
            .bound()
            .best_vector_quiet(&probe)
            .map(|(_, v)| v)
            .unwrap();
        // Refine at the probe through the production path (online
        // backups are on by default), then re-read. The *raw* startup
        // bound only backs up at vertices, so it may sit below a
        // probe-targeted oracle; after the kernel's own backup at the
        // probe it must dominate any certified plan value there.
        controller
            .begin(Belief::from_probs(probe.clone()).unwrap(), None)
            .unwrap();
        let _ = controller.decide().unwrap();
        let advertised = controller
            .bound()
            .best_vector_quiet(&probe)
            .map(|(_, v)| v)
            .unwrap();
        assert!(
            lower <= upper + 1e-9,
            "oracle {lower} above ceiling {upper}"
        );
        assert!(
            advertised >= raw - 1e-12,
            "online backup lowered the bound ({raw} -> {advertised})"
        );
        assert!(
            advertised <= upper + 1e-9,
            "bound {advertised} above certified ceiling {upper}"
        );
        assert!(
            advertised >= lower - 1e-9,
            "refined bound {advertised} below certified floor {lower}"
        );
    }

    #[test]
    fn oracle_never_exceeds_brute_force_on_two_server() {
        let model = two_server();
        let transformed = model.without_notification(10.0).unwrap();
        let opts = OracleOpts {
            sweeps: 2,
            ..OracleOpts::default()
        };
        let oracle = certified_lower_bound(&transformed, &[], &opts);
        for belief in [
            Belief::uniform(4),
            Belief::point(4, StateId::new(1)),
            Belief::point(4, StateId::new(2)),
        ] {
            let exact = exact_value(&transformed, &belief, opts.sweeps);
            let approx = oracle.value(belief.probs());
            assert!(
                approx <= exact + 1e-9,
                "oracle {approx} exceeds exact horizon-{} value {exact}",
                opts.sweeps
            );
        }
    }

    #[test]
    fn lumped_two_server_policy_is_consistent() {
        let model = two_server();
        let transformed = model.without_notification(10.0).unwrap();
        let (quotient, certificate) = transformed.lump().unwrap();
        let full = BoundedController::new(transformed, BoundedConfig::default()).unwrap();
        let inner = BoundedController::new(quotient, BoundedConfig::default()).unwrap();
        let lumped = LumpedController::new(inner, certificate);
        let roots = vec![Belief::uniform(3)];
        let report = verify_lumped(
            "two-server",
            &full,
            &lumped,
            &roots,
            &VerifyConfig::default(),
        )
        .unwrap();
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn truncation_is_reported_and_downgrades_nothing_else_to_error() {
        let model = two_server();
        let controller = default_controller(&model);
        let cfg = VerifyConfig {
            max_nodes: 2,
            ..VerifyConfig::default()
        };
        let roots = vec![Belief::uniform(3)];
        let outcome = verify_controller("two-server", &controller, &roots, &cfg).unwrap();
        assert!(outcome.graph.truncated);
        assert!(outcome
            .report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::PolicyGraphTruncated));
        assert!(outcome.is_sound(), "{}", outcome.report.render());
    }

    #[test]
    fn decide_probes_leave_the_analyzed_controller_untouched() {
        let model = two_server();
        let controller = default_controller(&model);
        let generation = controller.bound().generation();
        let len = controller.bound().len();
        let roots = vec![Belief::uniform(3)];
        verify_controller("two-server", &controller, &roots, &VerifyConfig::default()).unwrap();
        assert_eq!(controller.bound().generation(), generation);
        assert_eq!(controller.bound().len(), len);
    }

    #[test]
    fn expanded_nodes_carry_full_edge_mass_and_exact_terminate_values() {
        let model = two_server();
        let controller = default_controller(&model);
        let roots = vec![Belief::uniform(3)];
        let outcome =
            verify_controller("two-server", &controller, &roots, &VerifyConfig::default()).unwrap();
        let pomdp = controller.model().pomdp();
        let a_t = controller.model().terminate_action();
        for (node, &value) in outcome.graph.nodes.iter().zip(&outcome.values) {
            match node.step {
                Step::Execute(_) if node.expanded => {
                    let mass: f64 = node.successors.iter().map(|&(_, g, _)| g).sum();
                    assert!((mass - 1.0).abs() < 1e-9, "edge mass {mass}");
                }
                Step::Terminate => {
                    let exact = node.belief.expected_reward(pomdp, a_t);
                    assert!((value - exact).abs() < 1e-12);
                }
                _ => {}
            }
        }
    }
}
