//! Kernel-independent certified value approximations.
//!
//! Two deliberately simple constructions bracket the optimal value
//! `V*` of a transformed (`§3.1`) recovery POMDP, sharing **no** code
//! with the planning kernel (`bpr_pomdp::backup`, the fused τ
//! operators, the transposition cache) so that a bug there cannot
//! also blind the check:
//!
//! * [`certified_lower_bound`] — a belief-discretization
//!   under-approximation. Starting from the immediate-termination
//!   hyperplane `α_T(s) = r(s, a_T)` (a concrete plan: hand off to the
//!   operator now), each sweep performs one exact α-vector point-based
//!   backup at every point of a clamped belief grid. Every vector the
//!   oracle ever holds is, by construction, the exact value of some
//!   conditional plan, so `max_α ⟨α, b⟩ ≤ V*(b)` at **every** belief
//!   `b` — not just grid points. Grid clamping only controls
//!   *tightness*, never soundness (Bork/Katoen/Quatmann-style
//!   under-approximation of expected total rewards).
//! * [`mdp_ceiling`] — certified upper bounds from fully-observable
//!   value iteration started at `V₀ = 0`. Rewards are non-positive, so
//!   `V₀ ≥ V*_MDP` and the monotone Bellman operator keeps **every**
//!   iterate a certified upper bound on `V*_MDP(s)`; mixing under a
//!   belief (`⟨b, V⟩ ≥ V*(b)`) bounds the POMDP value since partial
//!   observability can only hurt. A bound hyperplane claiming more
//!   than this ceiling is definitively corrupt.
//!
//! [`exact_value`] is the brute-force finite-horizon optimum used by
//! the proptest soundness suite to sandwich the oracle on tiny models.

use bpr_core::TerminatedModel;
use bpr_mdp::{ActionId, StateId};
use bpr_pomdp::{Belief, Pomdp};

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Options controlling the oracle's belief grid and effort.
#[derive(Debug, Clone)]
pub struct OracleOpts {
    /// Point-based backup sweeps over the grid (each sweep deepens the
    /// certified conditional plans by one action).
    pub sweeps: usize,
    /// Simplex-grid subdivision (compositions of this many mass units
    /// across states); only applied when the state count is at most
    /// [`OracleOpts::grid_max_states`].
    pub grid_resolution: usize,
    /// State-count ceiling for the full simplex grid; larger models
    /// fall back to corners + uniform + caller probes.
    pub grid_max_states: usize,
    /// Hard cap on grid points (drops grid overflow; soundness is
    /// unaffected, only tightness).
    pub max_points: usize,
}

impl Default for OracleOpts {
    fn default() -> OracleOpts {
        OracleOpts {
            sweeps: 3,
            grid_resolution: 2,
            grid_max_states: 10,
            max_points: 512,
        }
    }
}

/// A certified lower bound on the achievable value: a set of
/// hyperplanes, each the exact value of a concrete conditional plan.
#[derive(Debug, Clone)]
pub struct Oracle {
    vectors: Vec<Vec<f64>>,
    sweeps: usize,
    points: usize,
}

impl Oracle {
    /// The certified lower bound at a belief over the transformed
    /// state space: `max_α ⟨α, weights⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` mismatches the transformed state count.
    pub fn value(&self, weights: &[f64]) -> f64 {
        self.vectors
            .iter()
            .map(|v| {
                assert_eq!(v.len(), weights.len(), "oracle weight length mismatch");
                dot(v, weights)
            })
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Number of certified hyperplanes held.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when no hyperplane is held (never after construction).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Backup sweeps that were run.
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// Grid points backed up per sweep.
    pub fn points(&self) -> usize {
        self.points
    }
}

/// Enumerates compositions of `resolution` mass units over `n` states
/// into `out` (the clamped simplex grid).
fn compositions(n: usize, resolution: usize, max_points: usize, out: &mut Vec<Vec<f64>>) {
    let mut current = vec![0usize; n];
    fn recurse(
        current: &mut Vec<usize>,
        slot: usize,
        left: usize,
        resolution: usize,
        max_points: usize,
        out: &mut Vec<Vec<f64>>,
    ) {
        if out.len() >= max_points {
            return;
        }
        if slot + 1 == current.len() {
            current[slot] = left;
            out.push(
                current
                    .iter()
                    .map(|&u| u as f64 / resolution as f64)
                    .collect(),
            );
            return;
        }
        for units in 0..=left {
            current[slot] = units;
            recurse(current, slot + 1, left - units, resolution, max_points, out);
        }
        current[slot] = 0;
    }
    recurse(&mut current, 0, resolution, resolution, max_points, out);
}

/// The clamped belief grid: state corners, the uniform belief, the
/// caller's probe beliefs, and (on small models) the full simplex grid
/// at the configured resolution.
fn belief_points(pomdp: &Pomdp, probes: &[Belief], opts: &OracleOpts) -> Vec<Vec<f64>> {
    let n = pomdp.n_states();
    let mut points: Vec<Vec<f64>> = Vec::new();
    for s in 0..n {
        points.push(Belief::point(n, StateId::new(s)).probs().to_vec());
    }
    points.push(Belief::uniform(n).probs().to_vec());
    for probe in probes {
        assert_eq!(
            probe.n_states(),
            n,
            "oracle probes must cover the transformed state space"
        );
        points.push(probe.probs().to_vec());
    }
    if n <= opts.grid_max_states && opts.grid_resolution >= 2 {
        compositions(n, opts.grid_resolution, opts.max_points, &mut points);
    }
    points.truncate(opts.max_points.max(n + 1));
    points
}

/// One exact α-vector point-based backup at belief weights `w`: for
/// the best action, compose the per-observation argmax plans from
/// `gamma` into a new conditional plan and return its exact value
/// vector.
fn backup_point(pomdp: &Pomdp, gamma: &[Vec<f64>], w: &[f64]) -> Vec<f64> {
    let n = pomdp.n_states();
    let n_obs = pomdp.n_observations();
    let mut best: Option<(f64, Vec<f64>)> = None;
    for a in (0..pomdp.n_actions()).map(ActionId::new) {
        let transitions = pomdp.mdp().transition_matrix(a);
        // pred(s') = Σ_s w(s) P_a(s, s').
        let mut pred = vec![0.0; n];
        for (s, &ws) in w.iter().enumerate() {
            if ws == 0.0 {
                continue;
            }
            for (sp, p) in transitions.row(s) {
                pred[sp] += ws * p;
            }
        }
        // Per observation, the plan from `gamma` maximising
        // Σ_{s'} pred(s') q(o|s', a) α(s'). Any choice yields a valid
        // plan, so observations impossible under `pred` are harmless.
        let mut choice = vec![0usize; n_obs];
        let mut score = vec![f64::NEG_INFINITY; n_obs];
        for (ai, alpha) in gamma.iter().enumerate() {
            let mut scores = vec![0.0; n_obs];
            for (sp, &mass) in pred.iter().enumerate() {
                if mass == 0.0 {
                    continue;
                }
                let weighted = mass * alpha[sp];
                for (o, q) in pomdp.observation_matrix(a).row(sp) {
                    scores[o] += weighted * q;
                }
            }
            for o in 0..n_obs {
                if scores[o] > score[o] {
                    score[o] = scores[o];
                    choice[o] = ai;
                }
            }
        }
        // h(s') = Σ_o q(o|s', a) α_{choice(o)}(s'); the new plan's
        // value is α_a(s) = r(s, a) + Σ_{s'} P_a(s, s') h(s').
        let mut h = vec![0.0; n];
        for (sp, slot) in h.iter_mut().enumerate() {
            for (o, q) in pomdp.observation_matrix(a).row(sp) {
                *slot += q * gamma[choice[o]][sp];
            }
        }
        let rewards = pomdp.mdp().reward_vector(a);
        let mut alpha_a = vec![0.0; n];
        for (s, slot) in alpha_a.iter_mut().enumerate() {
            let mut acc = rewards[s];
            for (sp, p) in transitions.row(s) {
                acc += p * h[sp];
            }
            *slot = acc;
        }
        let value = dot(&alpha_a, w);
        if best.as_ref().is_none_or(|(bv, _)| value > *bv) {
            best = Some((value, alpha_a));
        }
    }
    best.expect("models have at least one action").1
}

/// Builds the belief-discretization under-approximation oracle for a
/// transformed model (see the module docs for the soundness argument).
///
/// `probes` are transformed-space beliefs the caller wants the bound
/// tight at (they join the backup grid); pass the beliefs `certify`
/// will evaluate.
pub fn certified_lower_bound(
    model: &TerminatedModel,
    probes: &[Belief],
    opts: &OracleOpts,
) -> Oracle {
    let pomdp = model.pomdp();
    let n = pomdp.n_states();
    let a_t = model.terminate_action();
    let term: Vec<f64> = (0..n).map(|s| pomdp.mdp().reward(s, a_t)).collect();
    let points = belief_points(pomdp, probes, opts);
    let mut gamma: Vec<Vec<f64>> = vec![term.clone()];
    for _ in 0..opts.sweeps {
        // Fresh sweep set: each backed-up vector embeds the previous
        // sweep's plans as subplans, so older vectors are dominated at
        // their own points and can be dropped (keeps |Γ| = points + 1).
        let mut next: Vec<Vec<f64>> = vec![term.clone()];
        for w in &points {
            next.push(backup_point(pomdp, &gamma, w));
        }
        gamma = next;
    }
    Oracle {
        vectors: gamma,
        sweeps: opts.sweeps,
        points: points.len(),
    }
}

/// Certified per-state upper bounds on `V*_MDP` (hence on any POMDP
/// value mixed under a belief) by Gauss–Seidel value iteration from
/// `V₀ = 0`; see the module docs for why every iterate certifies.
///
/// Stops after `max_sweeps` or when the sweep delta drops below
/// `tolerance` — early stopping only loosens (raises) the ceiling.
pub fn mdp_ceiling(model: &TerminatedModel, max_sweeps: usize, tolerance: f64) -> Vec<f64> {
    let mdp = model.pomdp().mdp();
    let n = mdp.n_states();
    let mut values = vec![0.0; n];
    for _ in 0..max_sweeps {
        let mut delta: f64 = 0.0;
        for s in 0..n {
            let mut best = f64::NEG_INFINITY;
            for a in (0..mdp.n_actions()).map(ActionId::new) {
                let mut acc = mdp.reward(StateId::new(s), a);
                for (sp, p) in mdp.transition_matrix(a).row(s) {
                    acc += p * values[sp];
                }
                best = best.max(acc);
            }
            delta = delta.max((values[s] - best).abs());
            values[s] = best;
        }
        if delta < tolerance {
            break;
        }
    }
    values
}

/// The exact optimal value of the transformed model at `belief` when
/// play must terminate within `horizon` base actions (the plan space
/// the oracle's depth-`horizon` vectors live in), by brute-force
/// belief enumeration. Exponential in `horizon` — test-sized models
/// only.
pub fn exact_value(model: &TerminatedModel, belief: &Belief, horizon: usize) -> f64 {
    let pomdp = model.pomdp();
    let a_t = model.terminate_action();
    let mut best = belief.expected_reward(pomdp, a_t);
    if horizon == 0 {
        return best;
    }
    for a in (0..pomdp.n_actions()).map(ActionId::new) {
        if a == a_t {
            continue; // already covered: s_T is absorbing and free.
        }
        let mut acc = belief.expected_reward(pomdp, a);
        for (_, gamma, next) in belief.successors(pomdp, a, 0.0) {
            acc += gamma * exact_value(model, &next, horizon - 1);
        }
        best = best.max(acc);
    }
    best
}
