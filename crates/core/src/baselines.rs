//! The baseline controllers of the paper's evaluation (§5): the
//! *most-likely* diagnoser, the *heuristic* finite-depth controller from
//! the authors' earlier SRDS'05 work, and the unattainable *Oracle*.
//!
//! Unlike the [`crate::BoundedController`], the most-likely and
//! heuristic controllers cannot reason about the cost of stopping; they
//! terminate when the belief mass on the null-fault states exceeds an
//! externally supplied *termination probability* (0.9999 in the paper's
//! experiments).

use crate::{Error, RecoveryController, RecoveryModel, Step};
use bpr_mdp::{ActionId, StateId};
use bpr_pomdp::bounds::ValueBound;
use bpr_pomdp::{tree, Belief, ObservationId};

fn validated_p_term(p_term: f64) -> Result<f64, Error> {
    if !(0.0..=1.0).contains(&p_term) || !p_term.is_finite() {
        return Err(Error::InvalidInput {
            detail: format!("termination probability must be in [0, 1], got {p_term}"),
        });
    }
    Ok(p_term)
}

/// The "most likely" baseline: Bayes diagnosis plus the cheapest
/// recovery action for the most likely fault.
#[derive(Debug, Clone)]
pub struct MostLikelyController {
    model: RecoveryModel,
    p_term: f64,
    belief: Option<Belief>,
    terminated: bool,
}

impl MostLikelyController {
    /// Creates the controller with the given termination probability.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] for a termination probability outside
    /// `[0, 1]`.
    pub fn new(model: RecoveryModel, p_term: f64) -> Result<MostLikelyController, Error> {
        Ok(MostLikelyController {
            model,
            p_term: validated_p_term(p_term)?,
            belief: None,
            terminated: false,
        })
    }

    /// The most likely *fault* state under the current belief, or
    /// `None` for a (degenerate) model without fault states.
    fn most_likely_fault(&self, belief: &Belief) -> Option<StateId> {
        let mut best: Option<(StateId, f64)> = None;
        for s in self.model.fault_states() {
            let p = belief.prob(s);
            match best {
                Some((_, bp)) if bp >= p => {}
                _ => best = Some((s, p)),
            }
        }
        best.map(|(s, _)| s)
    }
}

impl RecoveryController for MostLikelyController {
    fn name(&self) -> &str {
        "most-likely"
    }

    fn begin(&mut self, initial: Belief, _true_fault: Option<StateId>) -> Result<(), Error> {
        if initial.n_states() != self.model.base().n_states() {
            return Err(Error::InvalidInput {
                detail: "initial belief dimension mismatch".into(),
            });
        }
        self.belief = Some(initial);
        self.terminated = false;
        Ok(())
    }

    fn decide(&mut self) -> Result<Step, Error> {
        if self.terminated {
            return Err(Error::AlreadyTerminated);
        }
        let belief = self.belief.as_ref().ok_or(Error::NotStarted)?;
        if belief.prob_in(self.model.null_states()) >= self.p_term {
            self.terminated = true;
            return Ok(Step::Terminate);
        }
        let fault = self.most_likely_fault(belief).ok_or(Error::InvalidInput {
            detail: "recovery model has no fault states".into(),
        })?;
        let action = self
            .model
            .cheapest_recovery_action(fault)
            .or_else(|| self.model.observe_actions().first().copied())
            .unwrap_or(ActionId::new(0));
        Ok(Step::Execute(action))
    }

    fn observe(&mut self, action: ActionId, o: ObservationId) -> Result<(), Error> {
        let belief = self.belief.as_ref().ok_or(Error::NotStarted)?;
        let (next, _) = belief
            .update(self.model.base(), action, o)
            .map_err(Error::Pomdp)?;
        self.belief = Some(next);
        Ok(())
    }

    fn belief(&self) -> Option<Belief> {
        self.belief.clone()
    }
}

/// The heuristic leaf value of the authors' earlier SRDS'05 controller (restated in §5): the probability the
/// system has not recovered times the most expensive single-step cost.
#[derive(Debug, Clone)]
pub struct HeuristicLeaf {
    null_states: Vec<StateId>,
    worst_reward: f64,
}

impl HeuristicLeaf {
    /// Builds the leaf heuristic for a recovery model.
    pub fn new(model: &RecoveryModel) -> HeuristicLeaf {
        HeuristicLeaf {
            null_states: model.null_states().to_vec(),
            worst_reward: model.base().mdp().worst_reward(),
        }
    }
}

impl ValueBound for HeuristicLeaf {
    fn value(&self, belief: &Belief) -> f64 {
        (1.0 - belief.prob_in(&self.null_states)) * self.worst_reward
    }
}

/// The heuristic baseline of the SRDS'05 predecessor paper: finite-depth Max-Avg expansion with
/// [`HeuristicLeaf`] at the leaves and a termination probability instead
/// of a terminate action.
#[derive(Debug, Clone)]
pub struct HeuristicController {
    model: RecoveryModel,
    leaf: HeuristicLeaf,
    depth: usize,
    p_term: f64,
    gamma_cutoff: f64,
    belief: Option<Belief>,
    terminated: bool,
    nodes_expanded: usize,
}

impl HeuristicController {
    /// Creates the controller with the given tree depth and termination
    /// probability.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] for a zero depth or a termination
    /// probability outside `[0, 1]`.
    pub fn new(
        model: RecoveryModel,
        depth: usize,
        p_term: f64,
    ) -> Result<HeuristicController, Error> {
        if depth == 0 {
            return Err(Error::InvalidInput {
                detail: "tree depth must be at least 1".into(),
            });
        }
        let leaf = HeuristicLeaf::new(&model);
        Ok(HeuristicController {
            model,
            leaf,
            depth,
            p_term: validated_p_term(p_term)?,
            gamma_cutoff: 1e-6,
            belief: None,
            terminated: false,
            nodes_expanded: 0,
        })
    }

    /// Sets the observation-probability cutoff for tree expansion
    /// (branches at or below it are pruned). Returns `self` for
    /// chaining.
    pub fn with_gamma_cutoff(mut self, gamma_cutoff: f64) -> HeuristicController {
        self.gamma_cutoff = gamma_cutoff;
        self
    }

    /// Total belief nodes expanded so far.
    pub fn nodes_expanded(&self) -> usize {
        self.nodes_expanded
    }

    /// The controller's tree depth.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl RecoveryController for HeuristicController {
    fn name(&self) -> &str {
        "heuristic"
    }

    fn begin(&mut self, initial: Belief, _true_fault: Option<StateId>) -> Result<(), Error> {
        if initial.n_states() != self.model.base().n_states() {
            return Err(Error::InvalidInput {
                detail: "initial belief dimension mismatch".into(),
            });
        }
        self.belief = Some(initial);
        self.terminated = false;
        Ok(())
    }

    fn decide(&mut self) -> Result<Step, Error> {
        if self.terminated {
            return Err(Error::AlreadyTerminated);
        }
        let belief = self.belief.as_ref().ok_or(Error::NotStarted)?;
        if belief.prob_in(self.model.null_states()) >= self.p_term {
            self.terminated = true;
            return Ok(Step::Terminate);
        }
        let decision = tree::expand_with_cutoff(
            self.model.base(),
            belief,
            self.depth,
            &self.leaf,
            1.0,
            self.gamma_cutoff,
        )
        .map_err(Error::Pomdp)?;
        self.nodes_expanded += decision.nodes_expanded;
        Ok(Step::Execute(decision.action))
    }

    fn observe(&mut self, action: ActionId, o: ObservationId) -> Result<(), Error> {
        let belief = self.belief.as_ref().ok_or(Error::NotStarted)?;
        let (next, _) = belief
            .update(self.model.base(), action, o)
            .map_err(Error::Pomdp)?;
        self.belief = Some(next);
        Ok(())
    }

    fn belief(&self) -> Option<Belief> {
        self.belief.clone()
    }
}

/// A diagnose-then-fix baseline (an extension beyond the paper's
/// Table 1): passively observes until the most likely fault is
/// credible enough, then applies its cheapest recovery action; repeats
/// until the belief mass on `S_φ` crosses the termination probability.
///
/// Sits between [`MostLikelyController`] (which never observes
/// passively) and the tree-based controllers (which weigh observing
/// against acting decision-theoretically).
#[derive(Debug, Clone)]
pub struct DiagnoseThenFixController {
    model: RecoveryModel,
    p_term: f64,
    diagnosis_threshold: f64,
    belief: Option<Belief>,
    terminated: bool,
}

impl DiagnoseThenFixController {
    /// Creates the controller.
    ///
    /// `diagnosis_threshold` is the posterior probability the leading
    /// fault hypothesis must reach before the controller stops
    /// observing and acts.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] for probabilities outside `[0, 1]`.
    pub fn new(
        model: RecoveryModel,
        diagnosis_threshold: f64,
        p_term: f64,
    ) -> Result<DiagnoseThenFixController, Error> {
        if !(0.0..=1.0).contains(&diagnosis_threshold) || !diagnosis_threshold.is_finite() {
            return Err(Error::InvalidInput {
                detail: format!("diagnosis threshold must be in [0, 1], got {diagnosis_threshold}"),
            });
        }
        Ok(DiagnoseThenFixController {
            model,
            p_term: validated_p_term(p_term)?,
            diagnosis_threshold,
            belief: None,
            terminated: false,
        })
    }
}

impl RecoveryController for DiagnoseThenFixController {
    fn name(&self) -> &str {
        "diagnose-fix"
    }

    fn begin(&mut self, initial: Belief, _true_fault: Option<StateId>) -> Result<(), Error> {
        if initial.n_states() != self.model.base().n_states() {
            return Err(Error::InvalidInput {
                detail: "initial belief dimension mismatch".into(),
            });
        }
        self.belief = Some(initial);
        self.terminated = false;
        Ok(())
    }

    fn decide(&mut self) -> Result<Step, Error> {
        if self.terminated {
            return Err(Error::AlreadyTerminated);
        }
        let belief = self.belief.as_ref().ok_or(Error::NotStarted)?;
        if belief.prob_in(self.model.null_states()) >= self.p_term {
            self.terminated = true;
            return Ok(Step::Terminate);
        }
        // Leading fault hypothesis, renormalised over the fault states.
        let fault_mass: f64 = self
            .model
            .fault_states()
            .iter()
            .map(|s| belief.prob(*s))
            .sum();
        let (leader, leader_p) = self
            .model
            .fault_states()
            .into_iter()
            .map(|s| (s, belief.prob(s)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .ok_or(Error::InvalidInput {
                detail: "recovery model has no fault states".into(),
            })?;
        let confident = fault_mass > 0.0 && leader_p / fault_mass >= self.diagnosis_threshold;
        if !confident {
            if let Some(observe) = self.model.observe_actions().first() {
                return Ok(Step::Execute(*observe));
            }
        }
        let action = self
            .model
            .cheapest_recovery_action(leader)
            .or_else(|| self.model.observe_actions().first().copied())
            .unwrap_or(ActionId::new(0));
        Ok(Step::Execute(action))
    }

    fn observe(&mut self, action: ActionId, o: ObservationId) -> Result<(), Error> {
        let belief = self.belief.as_ref().ok_or(Error::NotStarted)?;
        let (next, _) = belief
            .update(self.model.base(), action, o)
            .map_err(Error::Pomdp)?;
        self.belief = Some(next);
        Ok(())
    }

    fn belief(&self) -> Option<Belief> {
        self.belief.clone()
    }
}

/// The hypothetical Oracle (§5): knows the injected fault and recovers
/// with the single matching action. Represents the unattainable ideal;
/// never consults monitors.
#[derive(Debug, Clone)]
pub struct OracleController {
    model: RecoveryModel,
    fault: Option<StateId>,
    acted: bool,
    terminated: bool,
}

impl OracleController {
    /// Creates the oracle for a recovery model.
    pub fn new(model: RecoveryModel) -> OracleController {
        OracleController {
            model,
            fault: None,
            acted: false,
            terminated: false,
        }
    }
}

impl RecoveryController for OracleController {
    fn name(&self) -> &str {
        "oracle"
    }

    fn begin(&mut self, _initial: Belief, true_fault: Option<StateId>) -> Result<(), Error> {
        let fault = true_fault.ok_or_else(|| Error::InvalidInput {
            detail: "oracle controller requires the true fault".into(),
        })?;
        if fault.index() >= self.model.base().n_states() {
            return Err(Error::InvalidInput {
                detail: format!("true fault {fault} is out of bounds"),
            });
        }
        self.fault = Some(fault);
        self.acted = false;
        self.terminated = false;
        Ok(())
    }

    fn decide(&mut self) -> Result<Step, Error> {
        if self.terminated {
            return Err(Error::AlreadyTerminated);
        }
        let fault = self.fault.ok_or(Error::NotStarted)?;
        if self.acted || self.model.is_null(fault) {
            self.terminated = true;
            return Ok(Step::Terminate);
        }
        self.acted = true;
        let action =
            self.model
                .cheapest_recovery_action(fault)
                .ok_or_else(|| Error::InvalidInput {
                    detail: format!("no recovery action exists for fault {fault}"),
                })?;
        Ok(Step::Execute(action))
    }

    fn observe(&mut self, _action: ActionId, _o: ObservationId) -> Result<(), Error> {
        Ok(()) // The oracle does not listen.
    }

    fn belief(&self) -> Option<Belief> {
        None
    }

    fn uses_monitors(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::two_server_model;

    #[test]
    fn most_likely_picks_matching_restart() {
        let mut c = MostLikelyController::new(two_server_model(), 0.99).unwrap();
        c.begin(Belief::from_probs(vec![0.7, 0.25, 0.05]).unwrap(), None)
            .unwrap();
        assert_eq!(c.decide().unwrap(), Step::Execute(ActionId::new(0)));
        // After observing "b appears failed" strongly, diagnosis flips.
        c.observe(ActionId::new(0), ObservationId::new(1)).unwrap();
        c.observe(ActionId::new(0), ObservationId::new(1)).unwrap();
        assert_eq!(c.decide().unwrap(), Step::Execute(ActionId::new(1)));
    }

    #[test]
    fn most_likely_terminates_at_threshold() {
        let mut c = MostLikelyController::new(two_server_model(), 0.9).unwrap();
        c.begin(Belief::from_probs(vec![0.02, 0.03, 0.95]).unwrap(), None)
            .unwrap();
        assert_eq!(c.decide().unwrap(), Step::Terminate);
        assert!(matches!(c.decide(), Err(Error::AlreadyTerminated)));
    }

    #[test]
    fn invalid_p_term_is_rejected() {
        assert!(MostLikelyController::new(two_server_model(), 1.5).is_err());
        assert!(MostLikelyController::new(two_server_model(), -0.1).is_err());
        assert!(HeuristicController::new(two_server_model(), 1, f64::NAN).is_err());
    }

    #[test]
    fn heuristic_leaf_scales_with_unrecovered_mass() {
        let model = two_server_model();
        let leaf = HeuristicLeaf::new(&model);
        // worst reward is -1.
        assert_eq!(leaf.value(&Belief::point(3, StateId::new(2))), 0.0);
        assert_eq!(leaf.value(&Belief::point(3, StateId::new(0))), -1.0);
        let half = Belief::from_probs(vec![0.25, 0.25, 0.5]).unwrap();
        assert_eq!(leaf.value(&half), -0.5);
    }

    #[test]
    fn heuristic_controller_recovers_certain_fault() {
        let mut c = HeuristicController::new(two_server_model(), 1, 0.9999).unwrap();
        c.begin(Belief::point(3, StateId::new(1)), None).unwrap();
        assert_eq!(c.decide().unwrap(), Step::Execute(ActionId::new(1)));
        assert!(c.nodes_expanded() > 0);
        assert_eq!(c.depth(), 1);
    }

    #[test]
    fn heuristic_zero_depth_is_rejected() {
        assert!(HeuristicController::new(two_server_model(), 0, 0.99).is_err());
    }

    #[test]
    fn diagnose_then_fix_observes_when_unsure_then_acts() {
        let mut c = DiagnoseThenFixController::new(two_server_model(), 0.8, 0.9999).unwrap();
        // 50/50 between the two faults: must observe first.
        c.begin(Belief::from_probs(vec![0.45, 0.45, 0.1]).unwrap(), None)
            .unwrap();
        assert_eq!(c.decide().unwrap(), Step::Execute(ActionId::new(2)));
        // Strong evidence for Fault(b): now it acts.
        c.observe(ActionId::new(2), ObservationId::new(1)).unwrap();
        c.observe(ActionId::new(2), ObservationId::new(1)).unwrap();
        assert_eq!(c.decide().unwrap(), Step::Execute(ActionId::new(1)));
    }

    #[test]
    fn diagnose_then_fix_terminates_and_validates() {
        assert!(DiagnoseThenFixController::new(two_server_model(), 1.2, 0.9).is_err());
        assert!(DiagnoseThenFixController::new(two_server_model(), 0.8, 1.2).is_err());
        let mut c = DiagnoseThenFixController::new(two_server_model(), 0.8, 0.9).unwrap();
        c.begin(Belief::from_probs(vec![0.01, 0.01, 0.98]).unwrap(), None)
            .unwrap();
        assert_eq!(c.decide().unwrap(), Step::Terminate);
        assert_eq!(c.name(), "diagnose-fix");
    }

    #[test]
    fn oracle_fixes_and_stops() {
        let mut c = OracleController::new(two_server_model());
        c.begin(Belief::uniform(3), Some(StateId::new(1))).unwrap();
        assert_eq!(c.decide().unwrap(), Step::Execute(ActionId::new(1)));
        assert_eq!(c.decide().unwrap(), Step::Terminate);
        assert!(!c.uses_monitors());
        assert!(c.belief().is_none());
    }

    #[test]
    fn oracle_requires_ground_truth() {
        let mut c = OracleController::new(two_server_model());
        assert!(c.begin(Belief::uniform(3), None).is_err());
        assert!(matches!(c.decide(), Err(Error::NotStarted)));
    }

    #[test]
    fn oracle_with_null_fault_terminates_immediately() {
        let mut c = OracleController::new(two_server_model());
        c.begin(Belief::uniform(3), Some(StateId::new(2))).unwrap();
        assert_eq!(c.decide().unwrap(), Step::Terminate);
    }

    #[test]
    fn controllers_report_names() {
        assert_eq!(
            MostLikelyController::new(two_server_model(), 0.5)
                .unwrap()
                .name(),
            "most-likely"
        );
        assert_eq!(
            HeuristicController::new(two_server_model(), 2, 0.5)
                .unwrap()
                .name(),
            "heuristic"
        );
        assert_eq!(OracleController::new(two_server_model()).name(), "oracle");
    }
}
