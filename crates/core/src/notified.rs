//! The bounded controller for systems *with* recovery notification
//! (paper §3.1, Fig. 2(a)).
//!
//! When monitors can definitively report that the system has reached a
//! null-fault state, no terminate action is needed: the model transform
//! makes `S_φ` absorbing and free, the RA-Bound converges, and the
//! controller simply stops once the belief collapses onto `S_φ`.

use crate::{Error, RecoveryController, RecoveryModel, Step};
use bpr_mdp::chain::SolveOpts;
use bpr_mdp::{ActionId, StateId};
use bpr_pomdp::backup::incremental_backup;
use bpr_pomdp::bounds::{ra_bound, VectorSetBound};
use bpr_pomdp::{tree, Belief, ObservationId, Pomdp};

/// Configuration of a [`NotifiedBoundedController`].
#[derive(Debug, Clone, PartialEq)]
pub struct NotifiedConfig {
    /// Depth of the Max-Avg expansion.
    pub depth: usize,
    /// Refine the bound at visited beliefs.
    pub backup_online: bool,
    /// Belief mass on `S_φ` at which recovery is considered notified.
    /// With genuinely definitive monitors the belief reaches 1 exactly;
    /// the default leaves room for floating-point dust.
    pub notification_threshold: f64,
    /// Observation-branch pruning cutoff.
    pub gamma_cutoff: f64,
}

impl Default for NotifiedConfig {
    fn default() -> NotifiedConfig {
        NotifiedConfig {
            depth: 1,
            backup_online: true,
            notification_threshold: 1.0 - 1e-9,
            gamma_cutoff: 1e-6,
        }
    }
}

/// Bounded recovery controller for systems with recovery notification:
/// runs on the [`RecoveryModel::with_notification`] transform and
/// terminates exactly when the (certain) recovery notification arrives.
#[derive(Debug, Clone)]
pub struct NotifiedBoundedController {
    transformed: Pomdp,
    null_states: Vec<StateId>,
    bound: VectorSetBound,
    config: NotifiedConfig,
    belief: Option<Belief>,
    terminated: bool,
}

impl NotifiedBoundedController {
    /// Creates the controller: applies the transform and computes the
    /// RA-Bound (which provably converges on the transformed model).
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidInput`] for a zero depth or a threshold
    ///   outside `(0, 1]`.
    /// * Propagates transform and bound-solve failures.
    pub fn new(
        model: &RecoveryModel,
        config: NotifiedConfig,
    ) -> Result<NotifiedBoundedController, Error> {
        if config.depth == 0 {
            return Err(Error::InvalidInput {
                detail: "tree depth must be at least 1".into(),
            });
        }
        if !(0.0..=1.0).contains(&config.notification_threshold)
            || config.notification_threshold == 0.0
        {
            return Err(Error::InvalidInput {
                detail: "notification threshold must be in (0, 1]".into(),
            });
        }
        let transformed = model.with_notification()?;
        let bound = ra_bound(&transformed, &SolveOpts::default()).map_err(Error::Pomdp)?;
        Ok(NotifiedBoundedController {
            transformed,
            null_states: model.null_states().to_vec(),
            bound,
            config,
            belief: None,
            terminated: false,
        })
    }

    /// The current bound set.
    pub fn bound(&self) -> &VectorSetBound {
        &self.bound
    }

    /// The transformed (null-absorbing) POMDP the controller reasons on.
    pub fn transformed(&self) -> &Pomdp {
        &self.transformed
    }
}

impl RecoveryController for NotifiedBoundedController {
    fn name(&self) -> &str {
        "bounded-notified"
    }

    fn begin(&mut self, initial: Belief, _true_fault: Option<StateId>) -> Result<(), Error> {
        if initial.n_states() != self.transformed.n_states() {
            return Err(Error::InvalidInput {
                detail: "initial belief dimension mismatch".into(),
            });
        }
        self.belief = Some(initial);
        self.terminated = false;
        Ok(())
    }

    fn decide(&mut self) -> Result<Step, Error> {
        if self.terminated {
            return Err(Error::AlreadyTerminated);
        }
        let belief = self.belief.clone().ok_or(Error::NotStarted)?;
        if belief.prob_in(&self.null_states) >= self.config.notification_threshold {
            self.terminated = true;
            return Ok(Step::Terminate);
        }
        if self.config.backup_online {
            incremental_backup(&self.transformed, &mut self.bound, &belief, 1.0)
                .map_err(Error::Pomdp)?;
        }
        let decision = tree::expand_with_cutoff(
            &self.transformed,
            &belief,
            self.config.depth,
            &self.bound,
            1.0,
            self.config.gamma_cutoff,
        )
        .map_err(Error::Pomdp)?;
        Ok(Step::Execute(decision.action))
    }

    fn observe(&mut self, action: ActionId, o: ObservationId) -> Result<(), Error> {
        let belief = self.belief.as_ref().ok_or(Error::NotStarted)?;
        let (next, _) = belief
            .update(&self.transformed, action, o)
            .map_err(Error::Pomdp)?;
        self.belief = Some(next);
        Ok(())
    }

    fn belief(&self) -> Option<Belief> {
        self.belief.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpr_mdp::MdpBuilder;
    use bpr_pomdp::PomdpBuilder;

    /// A two-fault model with *definitive* recovery notification: the
    /// "all clear" observation is emitted iff the system is in Null.
    fn notified_model() -> RecoveryModel {
        let mut mb = MdpBuilder::new(3, 3);
        mb.state_label(0, "Fault(a)")
            .state_label(1, "Fault(b)")
            .state_label(2, "Null");
        mb.transition(0, 0, 2, 1.0).reward(0, 0, -0.5);
        mb.transition(1, 0, 1, 1.0).reward(1, 0, -1.0);
        mb.transition(2, 0, 2, 1.0).reward(2, 0, -0.5);
        mb.transition(0, 1, 0, 1.0).reward(0, 1, -1.0);
        mb.transition(1, 1, 2, 1.0).reward(1, 1, -0.5);
        mb.transition(2, 1, 2, 1.0).reward(2, 1, -0.5);
        mb.transition(0, 2, 0, 1.0).reward(0, 2, -0.25);
        mb.transition(1, 2, 1, 1.0).reward(1, 2, -0.25);
        mb.transition(2, 2, 2, 1.0).reward(2, 2, 0.0);
        let mut pb = PomdpBuilder::new(mb.build().unwrap(), 3);
        for a in 0..3 {
            // Faults are confusable with each other but never with Null.
            pb.observation(0, a, 0, 0.7).observation(0, a, 1, 0.3);
            pb.observation(1, a, 0, 0.3).observation(1, a, 1, 0.7);
            pb.observation(2, a, 2, 1.0);
        }
        RecoveryModel::new(
            pb.build().unwrap(),
            vec![StateId::new(2)],
            vec![-1.0, -1.0, 0.0],
            vec![ActionId::new(2)],
        )
        .unwrap()
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let model = notified_model();
        assert!(NotifiedBoundedController::new(
            &model,
            NotifiedConfig {
                depth: 0,
                ..NotifiedConfig::default()
            }
        )
        .is_err());
        assert!(NotifiedBoundedController::new(
            &model,
            NotifiedConfig {
                notification_threshold: 0.0,
                ..NotifiedConfig::default()
            }
        )
        .is_err());
        assert!(NotifiedBoundedController::new(
            &model,
            NotifiedConfig {
                notification_threshold: 1.5,
                ..NotifiedConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn lifecycle_errors() {
        let model = notified_model();
        let mut c = NotifiedBoundedController::new(&model, NotifiedConfig::default()).unwrap();
        assert!(matches!(c.decide(), Err(Error::NotStarted)));
        assert!(c.begin(Belief::uniform(5), None).is_err());
    }

    #[test]
    fn terminates_immediately_on_notification() {
        let model = notified_model();
        let mut c = NotifiedBoundedController::new(&model, NotifiedConfig::default()).unwrap();
        c.begin(Belief::point(3, StateId::new(2)), None).unwrap();
        assert_eq!(c.decide().unwrap(), Step::Terminate);
        assert!(matches!(c.decide(), Err(Error::AlreadyTerminated)));
    }

    #[test]
    fn recovers_and_stops_exactly_at_notification() {
        let model = notified_model();
        let mut c = NotifiedBoundedController::new(&model, NotifiedConfig::default()).unwrap();
        c.begin(
            Belief::uniform_over(3, &[StateId::new(0), StateId::new(1)]),
            None,
        )
        .unwrap();
        // World: Fault(a). Observation "a appears failed" each step until
        // fixed, then the definitive all-clear.
        let mut world = 0usize;
        let mut steps = 0;
        loop {
            steps += 1;
            assert!(steps < 30, "did not terminate");
            match c.decide().unwrap() {
                Step::Terminate => break,
                Step::Execute(a) => {
                    if a.index() == 0 && world == 0 {
                        world = 2;
                    }
                    if a.index() == 1 && world == 1 {
                        world = 2;
                    }
                    let obs = if world == 2 { 2 } else { 0 };
                    c.observe(a, ObservationId::new(obs)).unwrap();
                }
            }
        }
        assert_eq!(world, 2, "terminated before recovery");
        // With definitive notification, termination happens on the very
        // next decision after the all-clear: belief is a point on Null.
        let b = c.belief().unwrap();
        assert!((b.prob(StateId::new(2)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn accessors_and_traits() {
        let model = notified_model();
        let c = NotifiedBoundedController::new(&model, NotifiedConfig::default()).unwrap();
        assert_eq!(c.name(), "bounded-notified");
        assert!(c.uses_monitors());
        assert!(!c.bound().is_empty());
        assert_eq!(c.transformed().n_states(), 3);
    }
}
