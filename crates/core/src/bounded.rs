//! The paper's bounded recovery controller (§4).

use crate::{Error, RecoveryController, Step, TerminatedModel};
use bpr_mdp::chain::SolveOpts;
use bpr_mdp::{ActionId, StateId};
use bpr_par::WorkPool;
use bpr_pomdp::backup::incremental_backup;
use bpr_pomdp::bounds::{ra_bound, VectorSetBound};
use bpr_pomdp::{tree, Belief, CacheEpoch, ObservationId, PlanStats, PlanWorkspace};

/// Configuration of a [`BoundedController`].
#[derive(Debug, Clone, PartialEq)]
pub struct BoundedConfig {
    /// Depth of the Max-Avg expansion (the paper's controller uses 1).
    pub depth: usize,
    /// Refine the bound with an incremental backup at each belief the
    /// controller visits during recovery (paper §4.1: beliefs "naturally
    /// generated during the course of system recovery").
    pub backup_online: bool,
    /// Optional cap on the number of bound hyperplanes; least-used
    /// vectors are evicted past the cap (paper §4.3's finite-storage
    /// suggestion). `None` disables eviction.
    pub vector_cap: Option<usize>,
    /// Discount factor (the recovery criterion is undiscounted: 1.0).
    pub beta: f64,
    /// Prefer terminating when `a_T` ties with the best action. Breaking
    /// ties toward `a_T` removes a pathological non-termination case
    /// when free actions exist inside `S_φ`.
    pub prefer_terminate_on_tie: bool,
    /// Observation branches with probability at or below this are
    /// pruned during tree expansion. Essential for models with large
    /// observation spaces (the EMN model has 2⁷ monitor masks).
    pub gamma_cutoff: f64,
    /// Use branch-and-bound expansion with a QMDP upper bound (the
    /// paper's future-work extension). Produces identical decisions to
    /// the plain Max-Avg expansion while expanding fewer nodes; costs
    /// one MDP solve at construction.
    pub branch_and_bound: bool,
    /// Incremental-backup sweeps over the state-vertex beliefs run at
    /// construction. The raw RA-Bound is loose near `S_φ` (it prices in
    /// random restarts even when the system is healthy), which can make
    /// an un-bootstrapped controller terminate too eagerly; a couple of
    /// vertex sweeps repair exactly that region. Set to 0 to disable.
    pub startup_vertex_sweeps: usize,
    /// Worker threads for root-level parallel expansion. `1` (the
    /// default) plans sequentially in the controller's reusable
    /// workspace; larger values expand the root actions concurrently
    /// over a [`WorkPool`], producing **bit-identical decisions** at
    /// every width. Ignored when `branch_and_bound` is set — incumbent
    /// pruning is inherently sequential.
    pub root_threads: usize,
}

impl Default for BoundedConfig {
    fn default() -> BoundedConfig {
        BoundedConfig {
            depth: 1,
            backup_online: true,
            vector_cap: None,
            beta: 1.0,
            prefer_terminate_on_tie: true,
            gamma_cutoff: 1e-6,
            branch_and_bound: false,
            startup_vertex_sweeps: 2,
            root_threads: 1,
        }
    }
}

/// Cumulative statistics of a [`BoundedController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BoundedStats {
    /// Number of `decide()` calls served.
    pub decisions: usize,
    /// Incremental backups performed (online refinement).
    pub backups: usize,
    /// Total belief nodes expanded across all decisions.
    pub nodes_expanded: usize,
    /// Bound vectors evicted by the cap.
    pub vectors_evicted: usize,
}

/// The recovery controller of paper §4: finite-depth Max-Avg tree
/// expansion with a provable lower bound at the leaves, on a model
/// transformed for systems without recovery notification.
///
/// Termination is *endogenous*: recovery stops exactly when the
/// expansion prefers the terminate action `a_T`, whose value encodes the
/// operator-response-time risk — no external termination-probability
/// threshold is needed (contrast with [`crate::baselines`]).
///
/// # Examples
///
/// Construction requires a [`TerminatedModel`]; see
/// `examples/quickstart.rs` for the full loop.
#[derive(Debug, Clone)]
pub struct BoundedController {
    model: TerminatedModel,
    bound: VectorSetBound,
    upper: Option<VectorSetBound>,
    config: BoundedConfig,
    belief: Option<Belief>,
    terminated: bool,
    stats: BoundedStats,
    workspace: PlanWorkspace,
}

impl BoundedController {
    /// Creates a controller, computing the RA-Bound of the transformed
    /// model as the initial (single-hyperplane) leaf bound.
    ///
    /// # Errors
    ///
    /// * Propagates RA-Bound divergence (impossible for models built by
    ///   [`crate::RecoveryModel::without_notification`]) and solver
    ///   failures.
    /// * [`Error::InvalidInput`] for a zero tree depth.
    pub fn new(model: TerminatedModel, config: BoundedConfig) -> Result<BoundedController, Error> {
        let bound = ra_bound(model.pomdp(), &SolveOpts::default()).map_err(Error::Pomdp)?;
        BoundedController::with_bound(model, bound, config)
    }

    /// Creates a controller around an existing (e.g. bootstrapped)
    /// bound set.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] if the bound dimension mismatches the
    /// model or the configured depth is zero.
    pub fn with_bound(
        model: TerminatedModel,
        bound: VectorSetBound,
        config: BoundedConfig,
    ) -> Result<BoundedController, Error> {
        if config.depth == 0 {
            return Err(Error::InvalidInput {
                detail: "tree depth must be at least 1".into(),
            });
        }
        if config.root_threads == 0 {
            return Err(Error::InvalidInput {
                detail: "root_threads must be at least 1".into(),
            });
        }
        if bound.n_states() != model.pomdp().n_states() {
            return Err(Error::InvalidInput {
                detail: format!(
                    "bound covers {} states, model has {}",
                    bound.n_states(),
                    model.pomdp().n_states()
                ),
            });
        }
        let upper = if config.branch_and_bound {
            Some(
                bpr_pomdp::bounds::qmdp_bound(
                    model.pomdp(),
                    bpr_mdp::value_iteration::Discount::Undiscounted,
                )
                .map_err(Error::Pomdp)?,
            )
        } else {
            None
        };
        let mut bound = bound;
        // Seed the termination hyperplane b(s) = r(s, a_T): the value of
        // the blind terminate policy, a provable lower bound that keeps
        // the set tight near S_φ where the raw RA-Bound is loose.
        let a_t = model.terminate_action();
        let termination_plane: Vec<f64> = (0..model.pomdp().n_states())
            .map(|s| model.pomdp().mdp().reward(s, a_t))
            .collect();
        bound.add_vector(termination_plane).map_err(Error::Pomdp)?;
        for _ in 0..config.startup_vertex_sweeps {
            for s in 0..model.pomdp().n_states() {
                let vertex = Belief::point(model.pomdp().n_states(), bpr_mdp::StateId::new(s));
                incremental_backup(model.pomdp(), &mut bound, &vertex, config.beta)
                    .map_err(Error::Pomdp)?;
            }
        }
        Ok(BoundedController {
            model,
            bound,
            upper,
            config,
            belief: None,
            terminated: false,
            stats: BoundedStats::default(),
            workspace: PlanWorkspace::new(),
        })
    }

    /// The transformed model the controller runs on.
    pub fn model(&self) -> &TerminatedModel {
        &self.model
    }

    /// The current bound set.
    pub fn bound(&self) -> &VectorSetBound {
        &self.bound
    }

    /// The configuration the controller was built with (so analyzers
    /// can reconstruct an equivalent controller, e.g. with online
    /// backups frozen, for side-effect-free policy extraction).
    pub fn config(&self) -> &BoundedConfig {
        &self.config
    }

    /// Mutable access to the bound set (for external bootstrapping).
    pub fn bound_mut(&mut self) -> &mut VectorSetBound {
        &mut self.bound
    }

    /// Controller statistics accumulated so far.
    pub fn stats(&self) -> BoundedStats {
        self.stats
    }

    /// Planning-kernel statistics of the controller's workspace
    /// (transposition-cache hits/misses, scratch buffers built).
    ///
    /// Covers the sequential workspace paths only; with
    /// `root_threads > 1` the parallel expansion uses short-lived
    /// per-worker workspaces that are not aggregated here.
    pub fn plan_stats(&self) -> &PlanStats {
        self.workspace.stats()
    }

    /// The belief over the *transformed* state space (including `s_T`).
    pub fn transformed_belief(&self) -> Option<&Belief> {
        self.belief.as_ref()
    }
}

impl RecoveryController for BoundedController {
    fn name(&self) -> &str {
        "bounded"
    }

    fn begin(&mut self, initial: Belief, _true_fault: Option<StateId>) -> Result<(), Error> {
        // Accept either a base-space belief (lift it) or a
        // transformed-space belief.
        let lifted = if initial.n_states() + 1 == self.model.pomdp().n_states() {
            self.model.extend_belief(&initial)?
        } else if initial.n_states() == self.model.pomdp().n_states() {
            initial
        } else {
            return Err(Error::InvalidInput {
                detail: format!(
                    "initial belief covers {} states, expected {} or {}",
                    initial.n_states(),
                    self.model.pomdp().n_states() - 1,
                    self.model.pomdp().n_states()
                ),
            });
        };
        self.belief = Some(lifted);
        self.terminated = false;
        Ok(())
    }

    fn decide(&mut self) -> Result<Step, Error> {
        if self.terminated {
            return Err(Error::AlreadyTerminated);
        }
        let belief = self.belief.clone().ok_or(Error::NotStarted)?;
        if self.config.backup_online {
            incremental_backup(
                self.model.pomdp(),
                &mut self.bound,
                &belief,
                self.config.beta,
            )
            .map_err(Error::Pomdp)?;
            self.stats.backups += 1;
            if let Some(cap) = self.config.vector_cap {
                self.stats.vectors_evicted += self.bound.evict_to(cap);
            }
        }
        let a_t = self.model.terminate_action();
        let (action, value, q_at_terminate, nodes_expanded) = match &self.upper {
            Some(upper) => {
                tree::expand_branch_and_bound_with_workspace(
                    self.model.pomdp(),
                    &belief,
                    self.config.depth,
                    &self.bound,
                    upper,
                    self.config.beta,
                    self.config.gamma_cutoff,
                    &mut self.workspace,
                )
                .map_err(Error::Pomdp)?;
                let d = self.workspace.decision();
                (d.action, d.value, d.q_values[a_t.index()], d.nodes_expanded)
            }
            None if self.config.root_threads > 1 => {
                let pool = WorkPool::new(self.config.root_threads)
                    .expect("root_threads validated at construction");
                let d = tree::expand_par(
                    self.model.pomdp(),
                    &belief,
                    self.config.depth,
                    &self.bound,
                    self.config.beta,
                    self.config.gamma_cutoff,
                    &pool,
                )
                .map_err(Error::Pomdp)?;
                (d.action, d.value, d.q_values[a_t.index()], d.nodes_expanded)
            }
            None => {
                // Epoch-keyed cache: while the model, the bound's
                // hyperplanes, and the planning parameters are
                // unchanged, subtree values persist across decisions
                // (an online backup that actually changes the bound
                // bumps its generation and invalidates everything).
                let epoch = CacheEpoch {
                    model_fingerprint: self.model.pomdp().fingerprint(),
                    bound_generation: self.bound.generation(),
                    beta_bits: self.config.beta.to_bits(),
                    cutoff_bits: self.config.gamma_cutoff.to_bits(),
                };
                tree::expand_with_workspace_epoch(
                    self.model.pomdp(),
                    &belief,
                    self.config.depth,
                    &self.bound,
                    self.config.beta,
                    self.config.gamma_cutoff,
                    epoch,
                    &mut self.workspace,
                )
                .map_err(Error::Pomdp)?;
                let d = self.workspace.decision();
                (d.action, d.value, d.q_values[a_t.index()], d.nodes_expanded)
            }
        };
        self.stats.decisions += 1;
        self.stats.nodes_expanded += nodes_expanded;

        let terminate = action == a_t
            || (self.config.prefer_terminate_on_tie && q_at_terminate >= value - 1e-12);
        if terminate {
            self.terminated = true;
            return Ok(Step::Terminate);
        }
        Ok(Step::Execute(action))
    }

    fn observe(&mut self, action: ActionId, o: ObservationId) -> Result<(), Error> {
        let belief = self.belief.as_ref().ok_or(Error::NotStarted)?;
        if !self.model.is_base_action(action) {
            return Err(Error::InvalidInput {
                detail: "cannot observe after the terminate action".into(),
            });
        }
        let (next, _gamma) = belief
            .update(self.model.pomdp(), action, o)
            .map_err(Error::Pomdp)?;
        self.belief = Some(next);
        Ok(())
    }

    fn belief(&self) -> Option<Belief> {
        self.belief.as_ref().and_then(|b| {
            let base: Vec<f64> = b.probs()[..b.n_states() - 1].to_vec();
            // Mass on s_T is zero until termination, so renormalising is
            // a no-op in practice; it guards the corner case anyway.
            let sum: f64 = base.iter().sum();
            let probs = if sum > 0.0 {
                base.iter().map(|p| p / sum).collect()
            } else {
                base
            };
            // A degenerate projection (all mass on s_T) has no base
            // belief to report.
            Belief::from_probs(probs).ok()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::two_server_model;

    fn controller(top: f64, depth: usize) -> BoundedController {
        let model = two_server_model().without_notification(top).unwrap();
        BoundedController::new(
            model,
            BoundedConfig {
                depth,
                ..BoundedConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn decide_before_begin_is_an_error() {
        let mut c = controller(10.0, 1);
        assert!(matches!(c.decide(), Err(Error::NotStarted)));
        assert!(matches!(
            c.observe(ActionId::new(0), ObservationId::new(0)),
            Err(Error::NotStarted)
        ));
        assert!(c.belief().is_none());
    }

    #[test]
    fn zero_depth_is_rejected() {
        let model = two_server_model().without_notification(10.0).unwrap();
        assert!(BoundedController::new(
            model,
            BoundedConfig {
                depth: 0,
                ..BoundedConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn certain_fault_triggers_matching_restart() {
        let mut c = controller(10.0, 1);
        c.begin(Belief::point(3, StateId::new(0)), None).unwrap();
        match c.decide().unwrap() {
            Step::Execute(a) => assert_eq!(a.index(), 0),
            Step::Terminate => panic!("terminated with a certain fault"),
        }
    }

    #[test]
    fn belief_in_null_terminates() {
        let mut c = controller(10.0, 1);
        c.begin(Belief::point(3, StateId::new(2)), None).unwrap();
        assert_eq!(c.decide().unwrap(), Step::Terminate);
        assert!(matches!(c.decide(), Err(Error::AlreadyTerminated)));
    }

    #[test]
    fn full_episode_recovers_and_terminates() {
        let mut c = controller(10.0, 2);
        // Start unsure between the two faults.
        c.begin(
            Belief::uniform_over(3, &[StateId::new(0), StateId::new(1)]),
            None,
        )
        .unwrap();
        // Simulate the world: true fault is Fault(b) (state 1); the
        // matching restart fixes it.
        let mut world = 1usize;
        let mut steps = 0;
        loop {
            steps += 1;
            assert!(steps < 50, "controller failed to terminate");
            match c.decide().unwrap() {
                Step::Terminate => break,
                Step::Execute(a) => {
                    // Deterministic dynamics of the two-server model.
                    if a.index() == 1 && world == 1 {
                        world = 2;
                    }
                    if a.index() == 0 && world == 0 {
                        world = 2;
                    }
                    // Deterministic-ish observation: the most likely one.
                    let o = match world {
                        0 => 0,
                        1 => 1,
                        _ => 2,
                    };
                    c.observe(a, ObservationId::new(o)).unwrap();
                }
            }
        }
        // The world must actually be recovered when we terminate.
        assert_eq!(world, 2, "terminated before recovery completed");
        let stats = c.stats();
        assert!(stats.decisions >= 2);
        assert!(stats.nodes_expanded > 0);
        assert!(stats.backups >= 1);
    }

    #[test]
    fn projected_belief_hides_terminate_state() {
        let mut c = controller(10.0, 1);
        c.begin(Belief::uniform(3), None).unwrap();
        let b = c.belief().unwrap();
        assert_eq!(b.n_states(), 3);
        assert!((b.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let tb = c.transformed_belief().unwrap();
        assert_eq!(tb.n_states(), 4);
        assert_eq!(tb.prob(StateId::new(3)), 0.0);
    }

    #[test]
    fn wrong_dimension_belief_is_rejected() {
        let mut c = controller(10.0, 1);
        assert!(c.begin(Belief::uniform(7), None).is_err());
    }

    #[test]
    fn vector_cap_limits_bound_growth() {
        let model = two_server_model().without_notification(10.0).unwrap();
        let mut c = BoundedController::new(
            model,
            BoundedConfig {
                depth: 1,
                vector_cap: Some(3),
                ..BoundedConfig::default()
            },
        )
        .unwrap();
        for i in 0..20 {
            let w = (i as f64) / 20.0;
            let b = Belief::from_probs(vec![w * 0.9, (1.0 - w) * 0.9, 0.1]).unwrap();
            c.begin(b, None).unwrap();
            let _ = c.decide().unwrap();
        }
        assert!(c.bound().len() <= 3);
    }

    #[test]
    fn startup_seeds_the_termination_hyperplane() {
        use bpr_pomdp::bounds::ValueBound;
        let model = two_server_model().without_notification(100.0).unwrap();
        let c = BoundedController::new(model.clone(), BoundedConfig::default()).unwrap();
        // At the null vertex the seeded/refined bound must be far above
        // the raw RA value (which prices in random restarts forever) —
        // terminating there is free.
        let null_vertex = Belief::point(4, StateId::new(2));
        assert!(
            c.bound().value(&null_vertex) > -1e-9,
            "bound at Null should be ~0, got {}",
            c.bound().value(&null_vertex)
        );
        // And at fault vertices the termination plane keeps it >= the
        // blind-terminate value r(s, a_T) = -100.
        for s in [0usize, 1] {
            let v = c.bound().value(&Belief::point(4, StateId::new(s)));
            assert!(v >= -100.0 - 1e-9, "state {s}: {v}");
        }
        // Disabling the sweeps still seeds the plane.
        let c2 = BoundedController::new(
            model,
            BoundedConfig {
                startup_vertex_sweeps: 0,
                ..BoundedConfig::default()
            },
        )
        .unwrap();
        assert!(c2.bound().len() >= 2);
    }

    #[test]
    fn unbootstrapped_controller_still_recovers_before_quitting() {
        let model = two_server_model().without_notification(100.0).unwrap();
        let mut c = BoundedController::new(model, BoundedConfig::default()).unwrap();
        // Belief leaning toward "probably fine" but the fault is real.
        c.begin(Belief::from_probs(vec![0.25, 0.15, 0.6]).unwrap(), None)
            .unwrap();
        let mut world = 0usize; // Fault(a)
        for _ in 0..50 {
            match c.decide().unwrap() {
                Step::Terminate => break,
                Step::Execute(a) => {
                    if a.index() == 0 && world == 0 {
                        world = 2;
                    }
                    if a.index() == 1 && world == 1 {
                        world = 2;
                    }
                    let o = match world {
                        0 => 0,
                        1 => 1,
                        _ => 2,
                    };
                    c.observe(a, ObservationId::new(o)).unwrap();
                }
            }
        }
        assert_eq!(world, 2, "quit before recovering the fault");
    }

    #[test]
    fn branch_and_bound_agrees_with_plain_expansion() {
        let model = two_server_model().without_notification(10.0).unwrap();
        let mut plain = BoundedController::new(
            model.clone(),
            BoundedConfig {
                depth: 2,
                backup_online: false,
                ..BoundedConfig::default()
            },
        )
        .unwrap();
        let mut bb = BoundedController::new(
            model,
            BoundedConfig {
                depth: 2,
                backup_online: false,
                branch_and_bound: true,
                ..BoundedConfig::default()
            },
        )
        .unwrap();
        for probs in [
            vec![0.8, 0.1, 0.1],
            vec![0.1, 0.8, 0.1],
            vec![0.34, 0.33, 0.33],
        ] {
            let b = Belief::from_probs(probs).unwrap();
            plain.begin(b.clone(), None).unwrap();
            bb.begin(b, None).unwrap();
            assert_eq!(plain.decide().unwrap(), bb.decide().unwrap());
        }
    }

    #[test]
    fn zero_root_threads_is_rejected() {
        let model = two_server_model().without_notification(10.0).unwrap();
        assert!(BoundedController::new(
            model,
            BoundedConfig {
                root_threads: 0,
                ..BoundedConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn parallel_roots_reproduce_the_sequential_episode() {
        // Same model, same belief trajectory: every decision must agree
        // bit-for-bit whatever the root width. Online backups mutate the
        // bound, so the controllers must see identical belief sequences.
        let model = two_server_model().without_notification(10.0).unwrap();
        let mut controllers: Vec<BoundedController> = [1usize, 2, 4]
            .into_iter()
            .map(|root_threads| {
                BoundedController::new(
                    model.clone(),
                    BoundedConfig {
                        depth: 2,
                        root_threads,
                        ..BoundedConfig::default()
                    },
                )
                .unwrap()
            })
            .collect();
        for c in &mut controllers {
            c.begin(
                Belief::uniform_over(3, &[StateId::new(0), StateId::new(1)]),
                None,
            )
            .unwrap();
        }
        for _ in 0..10 {
            let steps: Vec<Step> = controllers
                .iter_mut()
                .map(|c| c.decide().unwrap())
                .collect();
            assert!(steps.iter().all(|s| *s == steps[0]), "diverged: {steps:?}");
            match steps[0] {
                Step::Terminate => break,
                Step::Execute(a) => {
                    for c in &mut controllers {
                        c.observe(a, ObservationId::new(1)).unwrap();
                    }
                }
            }
        }
        let stats: Vec<_> = controllers.iter().map(|c| c.stats()).collect();
        assert!(stats.iter().all(|s| *s == stats[0]), "stats diverged");
    }

    #[test]
    fn workspace_reuse_reports_cache_activity() {
        let mut c = controller(10.0, 3);
        c.begin(Belief::uniform(3), None).unwrap();
        let _ = c.decide().unwrap();
        let stats = c.plan_stats();
        assert!(stats.cache_hits + stats.cache_misses > 0);
    }

    #[test]
    fn low_operator_response_time_terminates_eagerly() {
        // With a tiny t_op, giving up is almost free, so from a very
        // uncertain belief the controller should terminate immediately.
        let mut c = controller(0.25, 1);
        c.begin(Belief::uniform(3), None).unwrap();
        assert_eq!(c.decide().unwrap(), Step::Terminate);
    }

    #[test]
    fn high_operator_response_time_keeps_recovering() {
        let mut c = controller(1000.0, 1);
        c.begin(Belief::uniform(3), None).unwrap();
        assert!(matches!(c.decide().unwrap(), Step::Execute(_)));
    }
}
