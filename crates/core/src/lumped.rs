//! Adapter running any controller on a lumped (state-aggregated)
//! model while speaking the full model's belief vocabulary.
//!
//! Harnesses and daemons hand controllers base-space beliefs and read
//! base-space beliefs back; a controller built on a quotient from
//! [`TerminatedModel::lump`](crate::TerminatedModel::lump) speaks the
//! quotient vocabulary instead. [`LumpedController`] sits between the
//! two: initial beliefs and ground-truth fault states are projected
//! through the [`LumpCertificate`] on the way in, reported beliefs are
//! lifted on the way out, and actions/observations pass through
//! untouched (lumping never merges actions or observations). The
//! lumping soundness argument (`bpr_pomdp::lump`) is exactly the
//! statement that this wrapper's decision sequence matches the same
//! controller running unlumped on the full model — the equivalence
//! proptests drive both against identical campaigns.

use crate::{Error, RecoveryController, ResilienceStats, Step};
use bpr_mdp::{ActionId, StateId};
use bpr_pomdp::{Belief, LumpCertificate, ObservationId};

/// Runs `inner` (built on the lumped model) behind the full model's
/// belief interface. See the module docs.
#[derive(Debug, Clone)]
pub struct LumpedController<C> {
    inner: C,
    certificate: LumpCertificate,
    name: String,
}

impl<C: RecoveryController> LumpedController<C> {
    /// Wraps a quotient-model controller with the certificate that
    /// produced its model (the second half of
    /// [`TerminatedModel::lump`](crate::TerminatedModel::lump)'s
    /// return value).
    pub fn new(inner: C, certificate: LumpCertificate) -> LumpedController<C> {
        let name = format!("{}+lump", inner.name());
        LumpedController {
            inner,
            certificate,
            name,
        }
    }

    /// The wrapped controller.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Mutable access to the wrapped controller (e.g. to read stats).
    pub fn inner_mut(&mut self) -> &mut C {
        &mut self.inner
    }

    /// The certificate beliefs are projected/lifted through.
    pub fn certificate(&self) -> &LumpCertificate {
        &self.certificate
    }

    /// Full transformed-space states (the certificate's domain).
    fn n_full(&self) -> usize {
        self.certificate.n_full()
    }
}

impl<C: RecoveryController> RecoveryController for LumpedController<C> {
    fn name(&self) -> &str {
        &self.name
    }

    fn begin(&mut self, initial: Belief, true_fault: Option<StateId>) -> Result<(), Error> {
        // The harness speaks the *base* space (no s_T); the certificate
        // covers the transformed space. Extend with zero terminate
        // mass, project per class, and hand the inner controller a
        // transformed-space quotient belief.
        if initial.n_states() != self.n_full() - 1 {
            return Err(Error::InvalidInput {
                detail: format!(
                    "initial belief covers {} states, lumped full model has {} base states",
                    initial.n_states(),
                    self.n_full() - 1
                ),
            });
        }
        let mut extended = initial.probs().to_vec();
        extended.push(0.0);
        let projected = self.certificate.project_weights(&extended);
        let quotient = Belief::from_probs(projected).map_err(Error::Pomdp)?;
        let fault = true_fault.map(|s| self.certificate.class_of(s));
        self.inner.begin(quotient, fault)
    }

    fn decide(&mut self) -> Result<Step, Error> {
        self.inner.decide()
    }

    fn observe(&mut self, action: ActionId, o: ObservationId) -> Result<(), Error> {
        self.inner.observe(action, o)
    }

    fn belief(&self) -> Option<Belief> {
        // The inner controller reports its *base-of-quotient* belief
        // (terminate class stripped, which is the last class). Restore
        // the terminate slot, lift class mass onto representatives,
        // and strip s_T (the last full state) again.
        let inner = self.inner.belief()?;
        let nq = self.certificate.n_quotient();
        if inner.n_states() != nq - 1 {
            return None;
        }
        let mut quotient = inner.probs().to_vec();
        quotient.push(0.0);
        let lifted = self.certificate.lift(&Belief::from_probs(quotient).ok()?);
        let base: Vec<f64> = lifted.probs()[..self.n_full() - 1].to_vec();
        Belief::from_probs(base).ok()
    }

    fn on_unobserved(&mut self, action: ActionId) -> Result<(), Error> {
        self.inner.on_unobserved(action)
    }

    fn resilience_stats(&self) -> Option<ResilienceStats> {
        self.inner.resilience_stats()
    }

    fn uses_monitors(&self) -> bool {
        self.inner.uses_monitors()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::two_server_model;
    use crate::{BoundedConfig, BoundedController};

    fn plain_config() -> BoundedConfig {
        BoundedConfig {
            backup_online: false,
            startup_vertex_sweeps: 0,
            ..BoundedConfig::default()
        }
    }

    #[test]
    fn lumped_bounded_controller_matches_full_on_two_server() {
        let model = two_server_model().without_notification(10.0).unwrap();
        let (qmodel, cert) = model.lump().unwrap();
        // Null purity: the quotient's null set projects the original's.
        assert_eq!(qmodel.null_states().len(), 1);
        let mut full = BoundedController::new(model, plain_config()).unwrap();
        let inner = BoundedController::new(qmodel, plain_config()).unwrap();
        let mut lumped = LumpedController::new(inner, cert);
        assert_eq!(lumped.name(), "bounded+lump");
        for start in [
            Belief::uniform(3),
            Belief::point(3, StateId::new(0)),
            Belief::point(3, StateId::new(2)),
        ] {
            full.begin(start.clone(), None).unwrap();
            lumped.begin(start.clone(), None).unwrap();
            // Drive both through the same episode skeleton.
            for _ in 0..4 {
                let sf = full.decide().unwrap();
                let sl = lumped.decide().unwrap();
                assert_eq!(sf, sl, "decision drift from {:?}", start.probs());
                let bf = full.belief().unwrap();
                let bl = lumped.belief().unwrap();
                let masses_match = bf
                    .probs()
                    .iter()
                    .zip(bl.probs())
                    .all(|(x, y)| (x - y).abs() < 1e-12);
                assert!(masses_match, "belief drift: {bf:?} vs {bl:?}");
                match sf {
                    Step::Terminate => break,
                    Step::Execute(a) => {
                        // Feed the most likely observation for the action.
                        let o = ObservationId::new(0);
                        let rf = full.observe(a, o);
                        let rl = lumped.observe(a, o);
                        assert_eq!(rf.is_ok(), rl.is_ok());
                        if rf.is_err() {
                            break;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn wrong_dimension_belief_is_rejected() {
        let model = two_server_model().without_notification(10.0).unwrap();
        let (qmodel, cert) = model.lump().unwrap();
        let inner = BoundedController::new(qmodel, plain_config()).unwrap();
        let mut lumped = LumpedController::new(inner, cert);
        assert!(lumped.begin(Belief::uniform(7), None).is_err());
    }
}
