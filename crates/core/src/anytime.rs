//! Deadline-aware (anytime) Max-Avg planning.
//!
//! Point-based POMDP methods are explicitly anytime algorithms: cutting
//! refinement short still leaves a sound lower bound, so a decision
//! built on the partial result is safe, just less informed. This module
//! applies that property to the online controller: the Max-Avg tree is
//! expanded by **iterative deepening under a per-decision node budget**,
//! and whatever depth completed last is the decision. When even depth 1
//! is unaffordable the planner degrades to the depth-0 *bound-greedy*
//! choice — `argmax_a [ r(π, a) + β · V_B(pred(π, a)) ]` — which costs
//! one bound evaluation per action and is always affordable.
//!
//! [`AnytimeController`] packages the budgeted planner behind the
//! [`RecoveryController`] interface so [`crate::ResilientController`]
//! can use it as a dedicated escalation rung: when full-depth planning
//! fails or stalls, decisions keep flowing at bounded cost instead of
//! jumping straight to the belief-argmax heuristic.

use crate::{Error, RecoveryController, Step, TerminatedModel};
use bpr_mdp::chain::SolveOpts;
use bpr_mdp::{ActionId, StateId};
use bpr_pomdp::backup::incremental_backup;
use bpr_pomdp::bounds::{ra_bound, ValueBound, VectorSetBound};
use bpr_pomdp::{tree, Belief, ObservationId, PlanWorkspace, Pomdp};

/// Configuration of an [`AnytimeController`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnytimeConfig {
    /// Per-decision cap on belief nodes evaluated across all deepening
    /// passes. The depth-0 greedy fallback is not counted (it touches
    /// no tree nodes) so a decision is always produced.
    pub node_budget: usize,
    /// Deepest expansion attempted when the budget allows.
    pub max_depth: usize,
    /// Discount factor (the recovery criterion is undiscounted: 1.0).
    pub beta: f64,
    /// Observation branches with probability at or below this are
    /// pruned during tree expansion.
    pub gamma_cutoff: f64,
    /// Prefer terminating when `a_T` ties with the best action.
    pub prefer_terminate_on_tie: bool,
    /// Refine the bound with an incremental backup at each belief the
    /// controller visits.
    pub backup_online: bool,
    /// Optional cap on the number of bound hyperplanes.
    pub vector_cap: Option<usize>,
}

impl Default for AnytimeConfig {
    fn default() -> AnytimeConfig {
        AnytimeConfig {
            node_budget: 2000,
            max_depth: 3,
            beta: 1.0,
            gamma_cutoff: 1e-6,
            prefer_terminate_on_tie: true,
            backup_online: false,
            vector_cap: None,
        }
    }
}

impl AnytimeConfig {
    /// Checks the numeric invariants.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] for a zero budget or depth, a `beta`
    /// outside `(0, 1]`, a negative or non-finite `gamma_cutoff`, or a
    /// zero `vector_cap`.
    pub fn validate(&self) -> Result<(), Error> {
        if self.node_budget == 0 {
            return Err(Error::InvalidInput {
                detail: "anytime node budget must be at least 1".into(),
            });
        }
        if self.max_depth == 0 {
            return Err(Error::InvalidInput {
                detail: "anytime max depth must be at least 1".into(),
            });
        }
        if !(self.beta.is_finite() && self.beta > 0.0 && self.beta <= 1.0) {
            return Err(Error::InvalidInput {
                detail: format!("anytime beta must be in (0, 1], got {}", self.beta),
            });
        }
        if !self.gamma_cutoff.is_finite() || self.gamma_cutoff < 0.0 {
            return Err(Error::InvalidInput {
                detail: format!(
                    "anytime gamma cutoff must be finite and non-negative, got {}",
                    self.gamma_cutoff
                ),
            });
        }
        if self.vector_cap == Some(0) {
            return Err(Error::InvalidInput {
                detail: "anytime vector cap of 0 would evict every hyperplane".into(),
            });
        }
        Ok(())
    }
}

/// The decision produced by a budgeted expansion.
#[derive(Debug, Clone, PartialEq)]
pub struct AnytimeDecision {
    /// The maximising action at the deepest completed pass.
    pub action: ActionId,
    /// Root value of that pass.
    pub value: f64,
    /// Per-action root values of that pass.
    pub q_values: Vec<f64>,
    /// The deepest fully completed expansion depth; `0` means only the
    /// bound-greedy fallback fit in the budget.
    pub completed_depth: usize,
    /// Belief nodes evaluated across all passes, including the aborted
    /// one (whose probe node can push this to `node_budget + 1`).
    pub nodes_expanded: usize,
    /// Whether a deepening pass was cut short by the budget.
    pub budget_exhausted: bool,
}

/// Last-maximiser argmax — the tie-breaking rule of
/// [`bpr_pomdp::tree::expand_with_cutoff`] (its `max_by` keeps the last
/// maximal element), replicated so a generous budget reproduces the
/// unbudgeted expansion bit-for-bit.
fn argmax_last(q_values: &[f64]) -> (ActionId, f64) {
    let mut best = 0usize;
    for (i, q) in q_values.iter().enumerate().skip(1) {
        if *q >= q_values[best] {
            best = i;
        }
    }
    (ActionId::new(best), q_values[best])
}

/// Iterative-deepening Max-Avg expansion under a node budget.
///
/// Depths `1..=max_depth` are attempted in order, each against the
/// budget *remaining* after the previous passes; the decision of the
/// deepest pass that ran to completion is returned, and a pass cut
/// short mid-expansion is discarded (its partial q-values would mix
/// depths). When no pass completes, the decision is the depth-0
/// bound-greedy choice. With a budget large enough for `max_depth` the
/// result — action, value, q-values, and per-pass node count — is
/// bit-identical to [`bpr_pomdp::tree::expand_with_cutoff`] at
/// `max_depth`.
///
/// # Errors
///
/// * [`Error::InvalidInput`] if `max_depth == 0`.
/// * Propagates belief-arithmetic failures from the greedy fallback.
pub fn anytime_expand(
    pomdp: &Pomdp,
    belief: &Belief,
    leaf: &dyn ValueBound,
    max_depth: usize,
    node_budget: usize,
    beta: f64,
    gamma_cutoff: f64,
) -> Result<AnytimeDecision, Error> {
    let mut ws = PlanWorkspace::new();
    anytime_expand_with_workspace(
        pomdp,
        belief,
        leaf,
        max_depth,
        node_budget,
        beta,
        gamma_cutoff,
        &mut ws,
    )
}

/// [`anytime_expand`] running against a reusable [`PlanWorkspace`]: the
/// deepening passes run on the fused planning kernel
/// ([`bpr_pomdp::tree::expand_budgeted`]) with all tree scratch drawn
/// from the workspace, so a controller holding its workspace across
/// decisions pays no per-node allocations. The transposition cache is
/// not used (budgeted passes must abort at literal expansion order),
/// and the returned decision is identical to the pre-fusion
/// implementation: same values, same abort points, same node counts.
///
/// # Errors
///
/// Same as [`anytime_expand`].
#[allow(clippy::too_many_arguments)]
pub fn anytime_expand_with_workspace(
    pomdp: &Pomdp,
    belief: &Belief,
    leaf: &dyn ValueBound,
    max_depth: usize,
    node_budget: usize,
    beta: f64,
    gamma_cutoff: f64,
    ws: &mut PlanWorkspace,
) -> Result<AnytimeDecision, Error> {
    if max_depth == 0 {
        return Err(Error::InvalidInput {
            detail: "anytime expansion depth must be at least 1".into(),
        });
    }
    // Depth-0 bound-greedy fallback: reward plus the bound at the
    // *predicted* (pre-observation) belief. One bound evaluation per
    // action, no tree nodes — the floor the planner can always afford.
    // Inlines `Belief::from_probs(belief.predict(..))` against workspace
    // scratch: same validation, same renormalisation, no temporaries.
    let mut greedy = Vec::with_capacity(pomdp.n_actions());
    let mut pred = ws.checkout(pomdp.n_states());
    let mut invalid: Option<&'static str> = None;
    for a in 0..pomdp.n_actions() {
        let action = ActionId::new(a);
        pomdp
            .mdp()
            .transition_matrix(action)
            .matvec_transpose_into(belief.probs(), &mut pred)
            .expect("belief length matches model");
        if pred.iter().any(|p| !p.is_finite() || *p < 0.0) {
            invalid = Some("entries must be finite and non-negative");
            break;
        }
        let sum: f64 = pred.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            invalid = Some("entries must sum to 1");
            break;
        }
        if sum != 0.0 && sum.is_finite() {
            for v in pred.iter_mut() {
                *v /= sum;
            }
        }
        greedy.push(belief.expected_reward(pomdp, action) + beta * leaf.value_weights(&pred));
    }
    ws.release(pred);
    if let Some(reason) = invalid {
        return Err(Error::Pomdp(bpr_pomdp::Error::InvalidBelief { reason }));
    }
    let (action, value) = argmax_last(&greedy);
    let mut decision = AnytimeDecision {
        action,
        value,
        q_values: greedy,
        completed_depth: 0,
        nodes_expanded: 0,
        budget_exhausted: false,
    };

    for depth in 1..=max_depth {
        let remaining = node_budget.saturating_sub(decision.nodes_expanded);
        if remaining == 0 {
            decision.budget_exhausted = true;
            break;
        }
        let pass = tree::expand_budgeted(
            pomdp,
            belief,
            depth,
            leaf,
            beta,
            gamma_cutoff,
            remaining,
            ws,
        )
        .map_err(Error::Pomdp)?;
        decision.nodes_expanded += pass.nodes_spent;
        if pass.completed {
            let (action, value) = argmax_last(ws.q_scratch());
            decision.action = action;
            decision.value = value;
            decision.q_values.clear();
            decision.q_values.extend_from_slice(ws.q_scratch());
            decision.completed_depth = depth;
        } else {
            decision.budget_exhausted = true;
            break;
        }
    }
    Ok(decision)
}

/// Cumulative statistics of an [`AnytimeController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnytimeStats {
    /// Number of `decide()` calls served.
    pub decisions: usize,
    /// Belief nodes evaluated across all decisions.
    pub nodes_expanded: usize,
    /// Decisions in which a deepening pass was cut short by the budget.
    pub budget_exhaustions: usize,
    /// Deepest expansion any decision completed.
    pub deepest_completed: usize,
    /// Incremental backups performed (online refinement).
    pub backups: usize,
}

/// A deadline-aware recovery controller: [`anytime_expand`] behind the
/// [`RecoveryController`] interface.
///
/// Semantically a [`crate::BoundedController`] whose per-decision cost
/// is hard-capped: same model transform, same termination rule, same
/// lower-bound leaves — but planning depth adapts to the budget instead
/// of being fixed, and the depth-0 bound-greedy choice is the worst
/// case rather than an error.
#[derive(Debug, Clone)]
pub struct AnytimeController {
    model: TerminatedModel,
    bound: VectorSetBound,
    config: AnytimeConfig,
    belief: Option<Belief>,
    terminated: bool,
    stats: AnytimeStats,
    workspace: PlanWorkspace,
}

impl AnytimeController {
    /// Creates a controller, computing the RA-Bound of the transformed
    /// model as the initial leaf bound.
    ///
    /// # Errors
    ///
    /// Propagates RA-Bound failures, plus everything
    /// [`AnytimeController::with_bound`] rejects.
    pub fn new(model: TerminatedModel, config: AnytimeConfig) -> Result<AnytimeController, Error> {
        let bound = ra_bound(model.pomdp(), &SolveOpts::default()).map_err(Error::Pomdp)?;
        AnytimeController::with_bound(model, bound, config)
    }

    /// Creates a controller around an existing (e.g. bootstrapped)
    /// bound set.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] if the bound dimension mismatches the
    /// model or the config is invalid.
    pub fn with_bound(
        model: TerminatedModel,
        bound: VectorSetBound,
        config: AnytimeConfig,
    ) -> Result<AnytimeController, Error> {
        config.validate()?;
        if bound.n_states() != model.pomdp().n_states() {
            return Err(Error::InvalidInput {
                detail: format!(
                    "bound covers {} states, model has {}",
                    bound.n_states(),
                    model.pomdp().n_states()
                ),
            });
        }
        let mut bound = bound;
        // Seed the termination hyperplane b(s) = r(s, a_T), as the
        // bounded controller does; no startup vertex sweeps — this
        // controller's contract is bounded per-call cost from the start.
        let a_t = model.terminate_action();
        let termination_plane: Vec<f64> = (0..model.pomdp().n_states())
            .map(|s| model.pomdp().mdp().reward(s, a_t))
            .collect();
        bound.add_vector(termination_plane).map_err(Error::Pomdp)?;
        Ok(AnytimeController {
            model,
            bound,
            config,
            belief: None,
            terminated: false,
            stats: AnytimeStats::default(),
            workspace: PlanWorkspace::new(),
        })
    }

    /// The transformed model the controller runs on.
    pub fn model(&self) -> &TerminatedModel {
        &self.model
    }

    /// The current bound set.
    pub fn bound(&self) -> &VectorSetBound {
        &self.bound
    }

    /// Mutable access to the bound set (for external bootstrapping).
    pub fn bound_mut(&mut self) -> &mut VectorSetBound {
        &mut self.bound
    }

    /// Controller statistics accumulated so far.
    pub fn stats(&self) -> AnytimeStats {
        self.stats
    }

    /// The belief over the *transformed* state space (including `s_T`).
    pub fn transformed_belief(&self) -> Option<&Belief> {
        self.belief.as_ref()
    }
}

impl RecoveryController for AnytimeController {
    fn name(&self) -> &str {
        "anytime"
    }

    fn begin(&mut self, initial: Belief, _true_fault: Option<StateId>) -> Result<(), Error> {
        let lifted = if initial.n_states() + 1 == self.model.pomdp().n_states() {
            self.model.extend_belief(&initial)?
        } else if initial.n_states() == self.model.pomdp().n_states() {
            initial
        } else {
            return Err(Error::InvalidInput {
                detail: format!(
                    "initial belief covers {} states, expected {} or {}",
                    initial.n_states(),
                    self.model.pomdp().n_states() - 1,
                    self.model.pomdp().n_states()
                ),
            });
        };
        self.belief = Some(lifted);
        self.terminated = false;
        Ok(())
    }

    fn decide(&mut self) -> Result<Step, Error> {
        if self.terminated {
            return Err(Error::AlreadyTerminated);
        }
        let belief = self.belief.clone().ok_or(Error::NotStarted)?;
        if self.config.backup_online {
            incremental_backup(
                self.model.pomdp(),
                &mut self.bound,
                &belief,
                self.config.beta,
            )
            .map_err(Error::Pomdp)?;
            self.stats.backups += 1;
            if let Some(cap) = self.config.vector_cap {
                self.bound.evict_to(cap);
            }
        }
        let decision = anytime_expand_with_workspace(
            self.model.pomdp(),
            &belief,
            &self.bound,
            self.config.max_depth,
            self.config.node_budget,
            self.config.beta,
            self.config.gamma_cutoff,
            &mut self.workspace,
        )?;
        self.stats.decisions += 1;
        self.stats.nodes_expanded += decision.nodes_expanded;
        self.stats.budget_exhaustions += usize::from(decision.budget_exhausted);
        self.stats.deepest_completed = self.stats.deepest_completed.max(decision.completed_depth);

        let a_t = self.model.terminate_action();
        let terminate = decision.action == a_t
            || (self.config.prefer_terminate_on_tie
                && decision.q_values[a_t.index()] >= decision.value - 1e-12);
        if terminate {
            self.terminated = true;
            return Ok(Step::Terminate);
        }
        Ok(Step::Execute(decision.action))
    }

    fn observe(&mut self, action: ActionId, o: ObservationId) -> Result<(), Error> {
        let belief = self.belief.as_ref().ok_or(Error::NotStarted)?;
        if !self.model.is_base_action(action) {
            return Err(Error::InvalidInput {
                detail: "cannot observe after the terminate action".into(),
            });
        }
        let (next, _gamma) = belief
            .update(self.model.pomdp(), action, o)
            .map_err(Error::Pomdp)?;
        self.belief = Some(next);
        Ok(())
    }

    fn belief(&self) -> Option<Belief> {
        self.belief.as_ref().and_then(|b| {
            let base: Vec<f64> = b.probs()[..b.n_states() - 1].to_vec();
            let sum: f64 = base.iter().sum();
            let probs = if sum > 0.0 {
                base.iter().map(|p| p / sum).collect()
            } else {
                base
            };
            Belief::from_probs(probs).ok()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::two_server_model;
    use bpr_pomdp::tree;

    fn setup() -> (TerminatedModel, VectorSetBound) {
        let model = two_server_model().without_notification(10.0).unwrap();
        let bound = ra_bound(model.pomdp(), &SolveOpts::default()).unwrap();
        (model, bound)
    }

    #[test]
    fn generous_budget_reproduces_the_unbudgeted_expansion() {
        let (model, bound) = setup();
        let pomdp = model.pomdp();
        for probs in [
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.5, 0.5, 0.0, 0.0],
            vec![0.3, 0.3, 0.4, 0.0],
            vec![0.05, 0.9, 0.05, 0.0],
        ] {
            let b = Belief::from_probs(probs).unwrap();
            for depth in 1..=3 {
                let plain = tree::expand_with_cutoff(pomdp, &b, depth, &bound, 1.0, 0.0).unwrap();
                let any = anytime_expand(pomdp, &b, &bound, depth, usize::MAX, 1.0, 0.0).unwrap();
                assert_eq!(any.action, plain.action, "depth {depth}");
                assert_eq!(any.value, plain.value, "depth {depth}");
                assert_eq!(any.q_values, plain.q_values, "depth {depth}");
                assert_eq!(any.completed_depth, depth);
                assert!(!any.budget_exhausted);
                // The final pass must cost exactly what the unbudgeted
                // expansion reports; earlier passes add their own nodes.
                assert!(any.nodes_expanded >= plain.nodes_expanded, "depth {depth}");
                let shallower: usize = (1..depth)
                    .map(|d| {
                        tree::expand_with_cutoff(pomdp, &b, d, &bound, 1.0, 0.0)
                            .unwrap()
                            .nodes_expanded
                    })
                    .sum();
                assert_eq!(any.nodes_expanded, plain.nodes_expanded + shallower);
            }
        }
    }

    #[test]
    fn zero_remaining_budget_degrades_to_the_greedy_choice() {
        let (model, bound) = setup();
        let pomdp = model.pomdp();
        let b = Belief::uniform(4);
        let d = anytime_expand(pomdp, &b, &bound, 3, 1, 1.0, 0.0).unwrap();
        assert_eq!(d.completed_depth, 0);
        assert!(d.budget_exhausted);
        assert_eq!(d.q_values.len(), pomdp.n_actions());
        assert!(d.q_values.iter().all(|q| q.is_finite()));
        // The greedy choice is the argmax of its own q-values.
        let max = d.q_values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(d.value, max);
    }

    #[test]
    fn partial_passes_keep_the_best_completed_depth() {
        let (model, bound) = setup();
        let pomdp = model.pomdp();
        let b = Belief::uniform(4);
        let d1 = tree::expand_with_cutoff(pomdp, &b, 1, &bound, 1.0, 0.0).unwrap();
        // Enough for depth 1 but (with the depth-1 spend subtracted)
        // not for depth 2.
        let budget = d1.nodes_expanded + 1;
        let d = anytime_expand(pomdp, &b, &bound, 3, budget, 1.0, 0.0).unwrap();
        assert_eq!(d.completed_depth, 1);
        assert!(d.budget_exhausted);
        assert_eq!(d.action, d1.action);
        assert_eq!(d.value, d1.value);
        assert_eq!(d.q_values, d1.q_values);
        // The aborted pass's probe node may overshoot by exactly one.
        assert!(d.nodes_expanded <= budget + 1);
    }

    #[test]
    fn zero_depth_is_rejected() {
        let (model, bound) = setup();
        assert!(
            anytime_expand(model.pomdp(), &Belief::uniform(4), &bound, 0, 100, 1.0, 0.0).is_err()
        );
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let ok = AnytimeConfig::default();
        assert!(ok.validate().is_ok());
        for bad in [
            AnytimeConfig {
                node_budget: 0,
                ..ok.clone()
            },
            AnytimeConfig {
                max_depth: 0,
                ..ok.clone()
            },
            AnytimeConfig {
                beta: 0.0,
                ..ok.clone()
            },
            AnytimeConfig {
                beta: f64::NAN,
                ..ok.clone()
            },
            AnytimeConfig {
                gamma_cutoff: -1.0,
                ..ok.clone()
            },
            AnytimeConfig {
                vector_cap: Some(0),
                ..ok.clone()
            },
        ] {
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn controller_lifecycle_matches_the_bounded_contract() {
        let (model, _) = setup();
        let mut c = AnytimeController::new(model, AnytimeConfig::default()).unwrap();
        assert_eq!(c.name(), "anytime");
        assert!(matches!(c.decide(), Err(Error::NotStarted)));
        c.begin(Belief::point(3, StateId::new(2)), None).unwrap();
        // Null belief: terminating is free.
        assert_eq!(c.decide().unwrap(), Step::Terminate);
        assert!(matches!(c.decide(), Err(Error::AlreadyTerminated)));
        assert_eq!(c.stats().decisions, 1);
    }

    #[test]
    fn controller_recovers_a_certain_fault() {
        let (model, _) = setup();
        let mut c = AnytimeController::new(model, AnytimeConfig::default()).unwrap();
        c.begin(Belief::point(3, StateId::new(1)), None).unwrap();
        let mut world = 1usize;
        for _ in 0..50 {
            match c.decide().unwrap() {
                Step::Terminate => break,
                Step::Execute(a) => {
                    if a.index() == 1 && world == 1 {
                        world = 2;
                    }
                    if a.index() == 0 && world == 0 {
                        world = 2;
                    }
                    let o = match world {
                        0 => 0,
                        1 => 1,
                        _ => 2,
                    };
                    c.observe(a, ObservationId::new(o)).unwrap();
                }
            }
        }
        assert_eq!(world, 2, "anytime controller quit before recovering");
        assert!(c.stats().deepest_completed >= 1);
        assert_eq!(c.stats().budget_exhaustions, 0);
    }

    #[test]
    fn starved_controller_still_recovers_via_the_greedy_floor() {
        let (model, _) = setup();
        let mut c = AnytimeController::new(
            model,
            AnytimeConfig {
                node_budget: 1,
                ..AnytimeConfig::default()
            },
        )
        .unwrap();
        c.begin(Belief::point(3, StateId::new(0)), None).unwrap();
        let mut world = 0usize;
        for _ in 0..50 {
            match c.decide().unwrap() {
                Step::Terminate => break,
                Step::Execute(a) => {
                    if a.index() == 0 && world == 0 {
                        world = 2;
                    }
                    if a.index() == 1 && world == 1 {
                        world = 2;
                    }
                    let o = match world {
                        0 => 0,
                        1 => 1,
                        _ => 2,
                    };
                    c.observe(a, ObservationId::new(o)).unwrap();
                }
            }
        }
        assert_eq!(world, 2, "greedy floor failed to recover a certain fault");
        let stats = c.stats();
        assert!(stats.budget_exhaustions >= 1);
        assert_eq!(stats.deepest_completed, 0);
    }

    #[test]
    fn projected_belief_hides_terminate_state() {
        let (model, _) = setup();
        let mut c = AnytimeController::new(model, AnytimeConfig::default()).unwrap();
        c.begin(Belief::uniform(3), None).unwrap();
        let b = c.belief().unwrap();
        assert_eq!(b.n_states(), 3);
        assert!((b.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(c.transformed_belief().unwrap().n_states(), 4);
    }

    #[test]
    fn mismatched_bound_dimension_is_rejected() {
        let (model, _) = setup();
        let bound = VectorSetBound::from_vector(vec![0.0, 0.0]).unwrap();
        assert!(AnytimeController::with_bound(model, bound, AnytimeConfig::default()).is_err());
    }
}
