//! Durable, checksummed snapshots of long-running recovery state.
//!
//! A recovery service accumulates two kinds of expensive state: the
//! bootstrapped bound vectors (hours of simulated episodes) and the
//! progress of a fault-injection campaign. This module gives both a
//! crash-safe home:
//!
//! * **Container format** — every snapshot is a single file with a
//!   one-line header `bpr-snapshot 1 <kind> <payload-bytes> <fnv64>`
//!   followed by the payload. The FNV-1a checksum covers the payload,
//!   so truncation, bit flips, and partially written files are all
//!   detected and reported as a typed [`SnapshotError`] instead of
//!   garbage state or a panic.
//! * **Atomic writes** — [`write_snapshot`] writes a temporary sibling
//!   file and renames it into place, so a kill mid-write leaves either
//!   the old snapshot or the new one, never a torn file.
//! * **Exact round-trips** — floating-point fields are serialised with
//!   Rust's `{:?}` formatting, which round-trips every finite `f64`
//!   bit-for-bit. Resuming from a snapshot therefore reproduces the
//!   uninterrupted run exactly (see
//!   [`crate::bootstrap::bootstrap_par_durable`]).
//!
//! Callers that hold seed state (e.g. the RA-Bound a bootstrap run
//! started from) treat every [`SnapshotError`] as "start fresh from the
//! seed": corruption degrades availability of the *checkpoint*, never
//! of the service.

use crate::bootstrap::IterationRecord;
use crate::Error;
use bpr_pomdp::bounds::VectorSetBound;
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Magic tag of the container header.
const MAGIC: &str = "bpr-snapshot";
/// Current container version.
const VERSION: &str = "1";

/// Why a snapshot could not be read (or written).
///
/// Every variant is recoverable by design: durable runners fall back to
/// their seed state and surface the error in their report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The underlying filesystem operation failed.
    Io {
        /// Stringified OS error.
        detail: String,
    },
    /// The file ends before the payload the header promised.
    Truncated {
        /// Payload bytes the header declared.
        expected: usize,
        /// Payload bytes actually present.
        actual: usize,
    },
    /// The payload checksum does not match the header (bit flip or
    /// concurrent mutation).
    ChecksumMismatch {
        /// Checksum the header declared.
        expected: u64,
        /// Checksum of the payload as read.
        actual: u64,
    },
    /// The header declares a container version this build cannot read.
    VersionMismatch {
        /// The version string found in the header.
        found: String,
    },
    /// The file is a valid snapshot of a different kind (e.g. a
    /// campaign snapshot passed to a bootstrap resume).
    WrongKind {
        /// Kind the caller expected.
        expected: String,
        /// Kind the header declared.
        found: String,
    },
    /// The snapshot parsed but belongs to a different session
    /// (mismatched seed, config, or model shape).
    Incompatible {
        /// What differed.
        detail: String,
    },
    /// The header or payload is structurally malformed.
    Malformed {
        /// What failed to parse.
        detail: String,
    },
    /// Every attempt of a retried write failed with a transient IO
    /// error (see [`write_snapshot_retrying`]).
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: usize,
        /// Stringified OS error of the final attempt.
        detail: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { detail } => write!(f, "snapshot io failure: {detail}"),
            SnapshotError::Truncated { expected, actual } => write!(
                f,
                "snapshot truncated: header promised {expected} payload bytes, found {actual}"
            ),
            SnapshotError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: header says {expected:#018x}, payload hashes to {actual:#018x}"
            ),
            SnapshotError::VersionMismatch { found } => {
                write!(f, "snapshot version {found:?} is not readable by this build")
            }
            SnapshotError::WrongKind { expected, found } => {
                write!(f, "snapshot kind {found:?} where {expected:?} was expected")
            }
            SnapshotError::Incompatible { detail } => {
                write!(f, "snapshot belongs to a different session: {detail}")
            }
            SnapshotError::Malformed { detail } => write!(f, "snapshot malformed: {detail}"),
            SnapshotError::RetriesExhausted { attempts, detail } => write!(
                f,
                "snapshot write failed after {attempts} attempts; last error: {detail}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit hash — the payload checksum of the container format.
///
/// Dependency-free and byte-order independent; collision resistance is
/// not a goal (the threat model is corruption, not an adversary).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Writes a snapshot atomically: the header + payload go to a `.tmp`
/// sibling first, which is then renamed over `path`.
///
/// # Errors
///
/// [`SnapshotError::Io`] if the temporary file cannot be written or
/// renamed.
pub fn write_snapshot(path: &Path, kind: &str, payload: &str) -> Result<(), SnapshotError> {
    let header = format!(
        "{MAGIC} {VERSION} {kind} {} {:016x}\n",
        payload.len(),
        fnv1a64(payload.as_bytes())
    );
    let mut bytes = Vec::with_capacity(header.len() + payload.len());
    bytes.extend_from_slice(header.as_bytes());
    bytes.extend_from_slice(payload.as_bytes());
    let tmp = tmp_sibling(path);
    std::fs::write(&tmp, &bytes).map_err(|e| SnapshotError::Io {
        detail: format!("writing {}: {e}", tmp.display()),
    })?;
    std::fs::rename(&tmp, path).map_err(|e| SnapshotError::Io {
        detail: format!("renaming {} into place: {e}", tmp.display()),
    })
}

/// Reads and verifies a snapshot of the given kind.
///
/// Returns `Ok(None)` when the file does not exist — a missing
/// checkpoint is the normal first-run state, not an error.
///
/// # Errors
///
/// Any [`SnapshotError`] variant describing why the file cannot be
/// trusted; callers fall back to their seed state.
pub fn read_snapshot(path: &Path, kind: &str) -> Result<Option<String>, SnapshotError> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(SnapshotError::Io {
                detail: format!("reading {}: {e}", path.display()),
            })
        }
    };
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or(SnapshotError::Malformed {
            detail: "no header line".into(),
        })?;
    let header = std::str::from_utf8(&bytes[..newline]).map_err(|_| SnapshotError::Malformed {
        detail: "header is not UTF-8".into(),
    })?;
    let fields: Vec<&str> = header.split(' ').collect();
    if fields.len() != 5 || fields[0] != MAGIC {
        return Err(SnapshotError::Malformed {
            detail: format!("unrecognised header {header:?}"),
        });
    }
    if fields[1] != VERSION {
        return Err(SnapshotError::VersionMismatch {
            found: fields[1].to_string(),
        });
    }
    if fields[2] != kind {
        return Err(SnapshotError::WrongKind {
            expected: kind.to_string(),
            found: fields[2].to_string(),
        });
    }
    let expected_len: usize = fields[3].parse().map_err(|_| SnapshotError::Malformed {
        detail: format!("unparseable payload length {:?}", fields[3]),
    })?;
    let expected_sum =
        u64::from_str_radix(fields[4], 16).map_err(|_| SnapshotError::Malformed {
            detail: format!("unparseable checksum {:?}", fields[4]),
        })?;
    let payload = &bytes[newline + 1..];
    if payload.len() < expected_len {
        return Err(SnapshotError::Truncated {
            expected: expected_len,
            actual: payload.len(),
        });
    }
    if payload.len() > expected_len {
        return Err(SnapshotError::Malformed {
            detail: format!(
                "trailing garbage: {} payload bytes where the header promised {}",
                payload.len(),
                expected_len
            ),
        });
    }
    let actual_sum = fnv1a64(payload);
    if actual_sum != expected_sum {
        return Err(SnapshotError::ChecksumMismatch {
            expected: expected_sum,
            actual: actual_sum,
        });
    }
    let payload = String::from_utf8(payload.to_vec()).map_err(|_| SnapshotError::Malformed {
        detail: "payload is not UTF-8".into(),
    })?;
    Ok(Some(payload))
}

/// The file a named partition of a multi-file snapshot lives in: the
/// base snapshot path with `.{label}` appended (`serve.snap` →
/// `serve.snap.p3`). Partitions are siblings of the manifest so a
/// single directory holds the whole checkpoint.
pub fn partition_path(base: &Path, label: &str) -> PathBuf {
    let mut name = base.file_name().map_or_else(
        || std::ffi::OsString::from("snapshot"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".");
    name.push(label);
    base.with_file_name(name)
}

/// Chain-line prefix tying a partition file to its manifest.
const CHAIN_KEY: &str = "chain";

/// Atomically writes one partition of a multi-file snapshot.
///
/// The payload is prefixed with a **chain line**
/// `chain <fingerprint> <generation> <label>` before going through
/// [`write_snapshot`], so a partition can only be read back by the
/// session and checkpoint generation that wrote it — a stale partition
/// left over from an earlier run (or copied from a different session)
/// is rejected as [`SnapshotError::Incompatible`] instead of being
/// silently mixed into a resume.
///
/// # Errors
///
/// [`SnapshotError::Io`] from the underlying write.
pub fn write_partition(
    base: &Path,
    label: &str,
    kind: &str,
    fingerprint: u64,
    generation: u64,
    payload: &str,
) -> Result<(), SnapshotError> {
    let chained = format!("{CHAIN_KEY} {fingerprint:016x} {generation} {label}\n{payload}");
    write_snapshot(&partition_path(base, label), kind, &chained)
}

/// Reads and verifies one partition of a multi-file snapshot.
///
/// Beyond the container checks of [`read_snapshot`], the chain line
/// must match the `(fingerprint, generation, label)` the caller's
/// manifest recorded. Returns the payload with the chain line
/// stripped, or `Ok(None)` when the partition file does not exist.
///
/// # Errors
///
/// * [`SnapshotError::Incompatible`] for a chain mismatch (wrong
///   session, wrong generation, or a file renamed across labels).
/// * Any other [`SnapshotError`] from the container layer.
pub fn read_partition(
    base: &Path,
    label: &str,
    kind: &str,
    fingerprint: u64,
    generation: u64,
) -> Result<Option<String>, SnapshotError> {
    let Some(chained) = read_snapshot(&partition_path(base, label), kind)? else {
        return Ok(None);
    };
    let (chain, payload) = chained.split_once('\n').ok_or(SnapshotError::Malformed {
        detail: "partition has no chain line".into(),
    })?;
    let expected = format!("{CHAIN_KEY} {fingerprint:016x} {generation} {label}");
    if chain != expected {
        return Err(SnapshotError::Incompatible {
            detail: format!("partition chain {chain:?} where {expected:?} was expected"),
        });
    }
    Ok(Some(payload.to_string()))
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("snapshot"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".tmp");
    path.with_file_name(name)
}

/// Where and how often a durable runner writes its snapshot.
///
/// Two triggers compose (whichever fires first wins):
///
/// * a **count** trigger — every [`CheckpointPolicy::every`] work
///   units (bootstrap rounds, campaign episodes, serve ticks), and
/// * an optional **wall-clock** trigger —
///   [`CheckpointPolicy::every_duration`] since the last snapshot,
///   for runners whose work units have wildly uneven durations (a
///   quiet serve daemon still checkpoints its counters on time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Snapshot file location (a `.tmp` sibling is used during writes).
    pub path: PathBuf,
    /// Work units (bootstrap rounds, campaign episodes) between
    /// snapshots. Must be at least 1.
    pub every: usize,
    /// Optional wall-clock interval between snapshots; `None` leaves
    /// the count trigger alone. Must be non-zero when present.
    pub every_duration: Option<Duration>,
}

impl CheckpointPolicy {
    /// A policy snapshotting every `every` work units to `path`, with
    /// no wall-clock trigger.
    pub fn new(path: impl Into<PathBuf>, every: usize) -> CheckpointPolicy {
        CheckpointPolicy {
            path: path.into(),
            every,
            every_duration: None,
        }
    }

    /// Adds a wall-clock trigger: a snapshot is also due whenever
    /// `interval` has elapsed since the last one.
    pub fn with_every_duration(mut self, interval: Duration) -> CheckpointPolicy {
        self.every_duration = Some(interval);
        self
    }

    /// Rejects degenerate intervals.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] when `every` is zero or a present
    /// `every_duration` is zero.
    pub fn validate(&self) -> Result<(), Error> {
        if self.every == 0 {
            return Err(Error::InvalidInput {
                detail: "checkpoint interval must be at least 1".into(),
            });
        }
        if self.every_duration == Some(Duration::ZERO) {
            return Err(Error::InvalidInput {
                detail: "checkpoint wall-clock interval must be non-zero".into(),
            });
        }
        Ok(())
    }

    /// Whether a snapshot is due, given the work units completed and
    /// the wall-clock time elapsed since the last snapshot.
    ///
    /// The wall-clock trigger only ever *adds* snapshots; callers that
    /// feed `Duration::ZERO` (or built the policy without a duration)
    /// get the pure count behaviour, which is what determinism checks
    /// compare.
    pub fn due(&self, units_since_last: usize, elapsed_since_last: Duration) -> bool {
        if units_since_last >= self.every {
            return true;
        }
        match self.every_duration {
            Some(interval) => units_since_last > 0 && elapsed_since_last >= interval,
            None => false,
        }
    }
}

/// Backoff schedule of [`write_snapshot_retrying`]: transient IO
/// errors are retried with capped exponential backoff; all other
/// snapshot errors surface immediately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Must be at least 1.
    pub max_attempts: usize,
    /// Sleep before the second attempt; doubles per retry.
    pub initial_backoff: Duration,
    /// Ceiling on any single sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// The sleep preceding `attempt` (1-based: attempt 1 is the first
    /// retry): `initial_backoff << (attempt - 1)`, capped at
    /// `max_backoff`.
    pub fn backoff(&self, attempt: usize) -> Duration {
        let doublings = u32::try_from(attempt.saturating_sub(1)).unwrap_or(u32::MAX);
        let grown = self
            .initial_backoff
            .checked_mul(2u32.checked_pow(doublings).unwrap_or(u32::MAX))
            .unwrap_or(self.max_backoff);
        grown.min(self.max_backoff)
    }

    /// Rejects a policy that could never attempt anything.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] when `max_attempts` is zero.
    pub fn validate(&self) -> Result<(), Error> {
        if self.max_attempts == 0 {
            return Err(Error::InvalidInput {
                detail: "retry policy must allow at least one attempt".into(),
            });
        }
        Ok(())
    }
}

/// Runs `op` under `retry`, sleeping via `sleep` between attempts.
///
/// Only [`SnapshotError::Io`] is treated as transient; any other error
/// returns immediately (a checksum mismatch or malformed file will not
/// heal by waiting). `op` receives the 0-based attempt index — test
/// fakes use it to fail the first *k* attempts.
///
/// The `sleep` parameter is injected rather than hard-wired so unit
/// tests can assert the backoff schedule without actually sleeping;
/// production callers use [`write_snapshot_retrying`].
///
/// # Errors
///
/// The non-IO error `op` returned, or
/// [`SnapshotError::RetriesExhausted`] after `max_attempts` IO
/// failures.
pub fn retry_with_backoff<T>(
    retry: &RetryPolicy,
    mut op: impl FnMut(usize) -> Result<T, SnapshotError>,
    mut sleep: impl FnMut(Duration),
) -> Result<T, SnapshotError> {
    let attempts = retry.max_attempts.max(1);
    let mut last_io = String::new();
    for attempt in 0..attempts {
        if attempt > 0 {
            sleep(retry.backoff(attempt));
        }
        match op(attempt) {
            Ok(value) => return Ok(value),
            Err(SnapshotError::Io { detail }) => last_io = detail,
            Err(other) => return Err(other),
        }
    }
    Err(SnapshotError::RetriesExhausted {
        attempts,
        detail: last_io,
    })
}

/// [`write_snapshot`] with capped exponential-backoff retry on
/// transient IO errors (per `retry`), sleeping on the calling thread.
///
/// # Errors
///
/// [`SnapshotError::RetriesExhausted`] when every attempt failed with
/// an IO error.
pub fn write_snapshot_retrying(
    path: &Path,
    kind: &str,
    payload: &str,
    retry: &RetryPolicy,
) -> Result<(), SnapshotError> {
    retry_with_backoff(
        retry,
        |_| write_snapshot(path, kind, payload),
        std::thread::sleep,
    )
}

/// The persisted state of a [`crate::bootstrap::bootstrap_par_durable`]
/// run: everything needed to continue the round loop bit-identically.
///
/// The bound's hyperplanes **and their usage counters** are both
/// persisted — eviction under a vector cap depends on usage, so
/// dropping the counters would make a resumed run diverge from the
/// uninterrupted one.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapCheckpoint {
    /// Hash of the session parameters (seed, batch, config, model
    /// shape); a resume with different parameters is rejected as
    /// [`SnapshotError::Incompatible`].
    pub fingerprint: u64,
    /// First episode index the resumed run must execute.
    pub next_episode: usize,
    /// Backups performed so far.
    pub total_backups: usize,
    /// Per-iteration records accumulated so far.
    pub records: Vec<IterationRecord>,
    /// State-space dimension of the bound.
    pub n_states: usize,
    /// The bound hyperplanes, in insertion order
    /// ([`VectorSetBound::to_tsv`] format).
    pub bound_tsv: String,
    /// Per-hyperplane usage counters, parallel to the TSV rows.
    pub usage: Vec<u64>,
}

/// Container kind tag of bootstrap checkpoints.
pub const BOOTSTRAP_KIND: &str = "bootstrap";

impl BootstrapCheckpoint {
    /// Captures the live bootstrap state.
    pub fn capture(
        fingerprint: u64,
        next_episode: usize,
        total_backups: usize,
        records: &[IterationRecord],
        bound: &VectorSetBound,
    ) -> BootstrapCheckpoint {
        BootstrapCheckpoint {
            fingerprint,
            next_episode,
            total_backups,
            records: records.to_vec(),
            n_states: bound.n_states(),
            bound_tsv: bound.to_tsv(),
            usage: bound.usage_counts().to_vec(),
        }
    }

    /// Rebuilds the bound this checkpoint captured, usage counters
    /// included.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] when the TSV or the usage counters
    /// do not describe a valid bound.
    pub fn restore_bound(&self) -> Result<VectorSetBound, SnapshotError> {
        let mut bound = VectorSetBound::from_tsv(self.n_states, &self.bound_tsv).map_err(|e| {
            SnapshotError::Malformed {
                detail: format!("bound vectors: {e}"),
            }
        })?;
        bound
            .set_usage_counts(&self.usage)
            .map_err(|e| SnapshotError::Malformed {
                detail: format!("usage counters: {e}"),
            })?;
        Ok(bound)
    }

    /// Serialises the checkpoint payload (container header excluded).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        out.push_str(&format!("next {}\n", self.next_episode));
        out.push_str(&format!("backups {}\n", self.total_backups));
        out.push_str(&format!("n_states {}\n", self.n_states));
        for r in &self.records {
            out.push_str(&format!(
                "record {}\t{:?}\t{}\n",
                r.iteration, r.bound_at_uniform, r.n_vectors
            ));
        }
        let usage: Vec<String> = self.usage.iter().map(u64::to_string).collect();
        out.push_str(&format!("usage {}\n", usage.join(" ")));
        out.push_str("bound\n");
        out.push_str(&self.bound_tsv);
        out
    }

    /// Parses a payload produced by [`BootstrapCheckpoint::encode`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] for any structural deviation.
    pub fn decode(payload: &str) -> Result<BootstrapCheckpoint, SnapshotError> {
        let malformed = |detail: String| SnapshotError::Malformed { detail };
        let mut fingerprint = None;
        let mut next_episode = None;
        let mut total_backups = None;
        let mut n_states = None;
        let mut records = Vec::new();
        let mut usage = None;
        let mut lines = payload.lines();
        for line in lines.by_ref() {
            if line == "bound" {
                break;
            }
            let (key, rest) = line
                .split_once(' ')
                .ok_or_else(|| malformed(format!("keyless line {line:?}")))?;
            match key {
                "fingerprint" => {
                    fingerprint = Some(
                        u64::from_str_radix(rest, 16)
                            .map_err(|_| malformed(format!("fingerprint {rest:?}")))?,
                    );
                }
                "next" => {
                    next_episode = Some(
                        rest.parse()
                            .map_err(|_| malformed(format!("next {rest:?}")))?,
                    );
                }
                "backups" => {
                    total_backups = Some(
                        rest.parse()
                            .map_err(|_| malformed(format!("backups {rest:?}")))?,
                    );
                }
                "n_states" => {
                    n_states = Some(
                        rest.parse()
                            .map_err(|_| malformed(format!("n_states {rest:?}")))?,
                    );
                }
                "record" => {
                    let fields: Vec<&str> = rest.split('\t').collect();
                    if fields.len() != 3 {
                        return Err(malformed(format!("record {rest:?}")));
                    }
                    records.push(IterationRecord {
                        iteration: fields[0]
                            .parse()
                            .map_err(|_| malformed(format!("record iteration {rest:?}")))?,
                        bound_at_uniform: fields[1]
                            .parse()
                            .map_err(|_| malformed(format!("record bound {rest:?}")))?,
                        n_vectors: fields[2]
                            .parse()
                            .map_err(|_| malformed(format!("record vectors {rest:?}")))?,
                    });
                }
                "usage" => {
                    let counts: Result<Vec<u64>, _> = rest
                        .split(' ')
                        .filter(|t| !t.is_empty())
                        .map(str::parse)
                        .collect();
                    usage = Some(counts.map_err(|_| malformed(format!("usage {rest:?}")))?);
                }
                _ => return Err(malformed(format!("unknown key {key:?}"))),
            }
        }
        let bound_tsv: String = lines.map(|l| format!("{l}\n")).collect();
        Ok(BootstrapCheckpoint {
            fingerprint: fingerprint.ok_or_else(|| malformed("missing fingerprint".into()))?,
            next_episode: next_episode.ok_or_else(|| malformed("missing next".into()))?,
            total_backups: total_backups.ok_or_else(|| malformed("missing backups".into()))?,
            n_states: n_states.ok_or_else(|| malformed("missing n_states".into()))?,
            records,
            usage: usage.ok_or_else(|| malformed("missing usage".into()))?,
            bound_tsv,
        })
    }

    /// Atomically writes the checkpoint to `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] from the underlying write.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        write_snapshot(path, BOOTSTRAP_KIND, &self.encode())
    }

    /// Loads and verifies a checkpoint; `Ok(None)` when no snapshot
    /// exists yet.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] describing why the file cannot be trusted.
    pub fn load(path: &Path) -> Result<Option<BootstrapCheckpoint>, SnapshotError> {
        match read_snapshot(path, BOOTSTRAP_KIND)? {
            None => Ok(None),
            Some(payload) => Ok(Some(BootstrapCheckpoint::decode(&payload)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bpr_snapshot_{}_{name}", std::process::id()))
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn container_roundtrip() {
        let path = scratch("roundtrip");
        write_snapshot(&path, "demo", "hello\nworld\n").unwrap();
        assert_eq!(
            read_snapshot(&path, "demo").unwrap().as_deref(),
            Some("hello\nworld\n")
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_none_not_an_error() {
        assert_eq!(read_snapshot(&scratch("missing"), "demo").unwrap(), None);
    }

    #[test]
    fn truncation_is_detected() {
        let path = scratch("truncated");
        write_snapshot(&path, "demo", "0123456789").unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            read_snapshot(&path, "demo"),
            Err(SnapshotError::Truncated {
                expected: 10,
                actual: 7
            })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flip_is_detected() {
        let path = scratch("bitflip");
        write_snapshot(&path, "demo", "0123456789").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path, "demo"),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn version_and_kind_mismatches_are_typed() {
        let path = scratch("version");
        write_snapshot(&path, "demo", "x").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replacen("bpr-snapshot 1", "bpr-snapshot 99", 1)).unwrap();
        assert!(matches!(
            read_snapshot(&path, "demo"),
            Err(SnapshotError::VersionMismatch { .. })
        ));
        write_snapshot(&path, "other", "x").unwrap();
        assert!(matches!(
            read_snapshot(&path, "demo"),
            Err(SnapshotError::WrongKind { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_header_is_malformed() {
        let path = scratch("garbage");
        std::fs::write(&path, "not a snapshot\nat all\n").unwrap();
        assert!(matches!(
            read_snapshot(&path, "demo"),
            Err(SnapshotError::Malformed { .. })
        ));
        std::fs::write(&path, [0xFFu8, 0xFE, b'\n']).unwrap();
        assert!(matches!(
            read_snapshot(&path, "demo"),
            Err(SnapshotError::Malformed { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn partition_path_appends_the_label() {
        let base = PathBuf::from("/tmp/serve.snap");
        assert_eq!(
            partition_path(&base, "p3"),
            PathBuf::from("/tmp/serve.snap.p3")
        );
    }

    #[test]
    fn partition_roundtrips_under_its_chain() {
        let base = scratch("part_roundtrip");
        write_partition(&base, "p0", "demo-part", 0xABCD, 7, "line a\nline b\n").unwrap();
        assert_eq!(
            read_partition(&base, "p0", "demo-part", 0xABCD, 7)
                .unwrap()
                .as_deref(),
            Some("line a\nline b\n")
        );
        // An empty payload still carries its chain line.
        write_partition(&base, "p0", "demo-part", 0xABCD, 8, "").unwrap();
        assert_eq!(
            read_partition(&base, "p0", "demo-part", 0xABCD, 8)
                .unwrap()
                .as_deref(),
            Some("")
        );
        let _ = std::fs::remove_file(partition_path(&base, "p0"));
    }

    #[test]
    fn missing_partition_is_none_not_an_error() {
        let base = scratch("part_missing");
        assert_eq!(
            read_partition(&base, "p5", "demo-part", 1, 1).unwrap(),
            None
        );
    }

    #[test]
    fn partition_chain_mismatches_are_incompatible() {
        let base = scratch("part_chain");
        write_partition(&base, "p1", "demo-part", 0x1111, 3, "x\n").unwrap();
        // Wrong session fingerprint.
        assert!(matches!(
            read_partition(&base, "p1", "demo-part", 0x2222, 3),
            Err(SnapshotError::Incompatible { .. })
        ));
        // Stale generation (partition not rewritten by the checkpoint
        // the manifest describes).
        assert!(matches!(
            read_partition(&base, "p1", "demo-part", 0x1111, 4),
            Err(SnapshotError::Incompatible { .. })
        ));
        // A partition file renamed across labels is caught too.
        std::fs::rename(partition_path(&base, "p1"), partition_path(&base, "p2")).unwrap();
        assert!(matches!(
            read_partition(&base, "p2", "demo-part", 0x1111, 3),
            Err(SnapshotError::Incompatible { .. })
        ));
        let _ = std::fs::remove_file(partition_path(&base, "p2"));
    }

    #[test]
    fn corrupt_partition_surfaces_container_errors() {
        let base = scratch("part_corrupt");
        write_partition(&base, "p0", "demo-part", 9, 1, "payload\n").unwrap();
        let path = partition_path(&base, "p0");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_partition(&base, "p0", "demo-part", 9, 1),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bootstrap_checkpoint_roundtrips_exactly() {
        let mut bound = VectorSetBound::new(3);
        bound.add_vector(vec![-1.5, -2.25, 0.0]).unwrap();
        bound.add_vector(vec![-3.0, -0.125, -1e-300]).unwrap();
        bound.set_usage_counts(&[7, 0]).unwrap();
        let records = vec![IterationRecord {
            iteration: 1,
            bound_at_uniform: -0.1234567890123456,
            n_vectors: 2,
        }];
        let cp = BootstrapCheckpoint::capture(0xDEAD_BEEF, 4, 17, &records, &bound);
        let parsed = BootstrapCheckpoint::decode(&cp.encode()).unwrap();
        assert_eq!(parsed, cp);
        let restored = parsed.restore_bound().unwrap();
        assert_eq!(restored, bound);
        assert_eq!(restored.usage_counts(), bound.usage_counts());
    }

    #[test]
    fn checkpoint_policy_validates() {
        assert!(CheckpointPolicy::new("x", 0).validate().is_err());
        assert!(CheckpointPolicy::new("x", 3).validate().is_ok());
        assert!(CheckpointPolicy::new("x", 3)
            .with_every_duration(Duration::ZERO)
            .validate()
            .is_err());
        assert!(CheckpointPolicy::new("x", 3)
            .with_every_duration(Duration::from_secs(1))
            .validate()
            .is_ok());
    }

    #[test]
    fn count_trigger_fires_on_every() {
        let p = CheckpointPolicy::new("x", 3);
        assert!(!p.due(2, Duration::from_secs(3600)));
        assert!(p.due(3, Duration::ZERO));
        assert!(p.due(4, Duration::ZERO));
    }

    #[test]
    fn duration_trigger_fires_between_counts() {
        let p = CheckpointPolicy::new("x", 1000).with_every_duration(Duration::from_secs(5));
        // Not due: below both thresholds.
        assert!(!p.due(10, Duration::from_secs(4)));
        // Due: the wall clock crossed the interval.
        assert!(p.due(10, Duration::from_secs(5)));
        // Never due with zero new work — there is nothing to persist.
        assert!(!p.due(0, Duration::from_secs(3600)));
        // The count trigger still works.
        assert!(p.due(1000, Duration::ZERO));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let r = RetryPolicy {
            max_attempts: 6,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(70),
        };
        assert_eq!(r.backoff(1), Duration::from_millis(10));
        assert_eq!(r.backoff(2), Duration::from_millis(20));
        assert_eq!(r.backoff(3), Duration::from_millis(40));
        assert_eq!(r.backoff(4), Duration::from_millis(70));
        assert_eq!(r.backoff(60), Duration::from_millis(70));
        assert!(RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy::default().validate().is_ok());
    }

    /// A flaky writer: fails the first `flaky_for` attempts with a
    /// transient IO error, then succeeds.
    fn flaky_op(flaky_for: usize) -> impl FnMut(usize) -> Result<usize, SnapshotError> {
        move |attempt| {
            if attempt < flaky_for {
                Err(SnapshotError::Io {
                    detail: format!("transient failure #{attempt}"),
                })
            } else {
                Ok(attempt)
            }
        }
    }

    #[test]
    fn transient_io_errors_are_retried_with_backoff() {
        let retry = RetryPolicy {
            max_attempts: 5,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(25),
        };
        let mut slept = Vec::new();
        let got = retry_with_backoff(&retry, flaky_op(3), |d| slept.push(d)).unwrap();
        assert_eq!(got, 3, "succeeded on the fourth attempt");
        assert_eq!(
            slept,
            vec![
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(25), // capped
            ]
        );
    }

    #[test]
    fn exhausted_retries_surface_the_last_io_error() {
        let retry = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let mut sleeps = 0usize;
        let err = retry_with_backoff(&retry, flaky_op(99), |_| sleeps += 1).unwrap_err();
        assert_eq!(sleeps, 2, "two sleeps between three attempts");
        match err {
            SnapshotError::RetriesExhausted { attempts, detail } => {
                assert_eq!(attempts, 3);
                assert_eq!(detail, "transient failure #2");
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn non_transient_errors_are_not_retried() {
        let retry = RetryPolicy::default();
        let mut calls = 0usize;
        let err = retry_with_backoff::<()>(
            &retry,
            |_| {
                calls += 1;
                Err(SnapshotError::ChecksumMismatch {
                    expected: 1,
                    actual: 2,
                })
            },
            |_| panic!("must not sleep on a permanent error"),
        )
        .unwrap_err();
        assert_eq!(calls, 1);
        assert!(matches!(err, SnapshotError::ChecksumMismatch { .. }));
    }

    #[test]
    fn write_snapshot_retrying_writes_through() {
        let path = scratch("retrying");
        let retry = RetryPolicy {
            max_attempts: 2,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(1),
        };
        write_snapshot_retrying(&path, "demo", "payload", &retry).unwrap();
        assert_eq!(
            read_snapshot(&path, "demo").unwrap().as_deref(),
            Some("payload")
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn display_covers_all_variants() {
        let errs = [
            SnapshotError::Io { detail: "d".into() },
            SnapshotError::Truncated {
                expected: 2,
                actual: 1,
            },
            SnapshotError::ChecksumMismatch {
                expected: 1,
                actual: 2,
            },
            SnapshotError::VersionMismatch { found: "9".into() },
            SnapshotError::WrongKind {
                expected: "a".into(),
                found: "b".into(),
            },
            SnapshotError::Incompatible { detail: "d".into() },
            SnapshotError::Malformed { detail: "d".into() },
            SnapshotError::RetriesExhausted {
                attempts: 3,
                detail: "d".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
