//! Validation of the paper's structural conditions on recovery models.
//!
//! * **Condition 1** (§3.1): there is a non-empty set of null-fault
//!   states `S_φ`, and from every state at least one action sequence
//!   reaches `S_φ`.
//! * **Condition 2** (§3.2): all single-step rewards are non-positive
//!   (the model is a negative MDP; values are bounded above by 0).
//! * **No free actions** (Property 1(a), §4.2): every action outside
//!   the exempt states accrues strictly negative reward, which is what
//!   makes the bounded controller's termination argument go through.

use crate::Error;
use bpr_mdp::StateId;
use bpr_pomdp::Pomdp;

/// Checks Condition 1: `null_states` is non-empty, in bounds, and
/// reachable (under *some* action sequence) from every state.
///
/// Reachability is evaluated on the union graph of all actions — an
/// edge `s → s'` exists if any action moves `s` to `s'` with positive
/// probability — which is exactly "there is at least one way to
/// recover".
///
/// # Errors
///
/// Returns [`Error::Condition1Violated`] with the offending state in
/// the detail message.
pub fn check_condition1(pomdp: &Pomdp, null_states: &[StateId]) -> Result<(), Error> {
    if null_states.is_empty() {
        return Err(Error::Condition1Violated {
            detail: "the set of null-fault states is empty".into(),
        });
    }
    for s in null_states {
        if s.index() >= pomdp.n_states() {
            return Err(Error::Condition1Violated {
                detail: format!("null state {s} is out of bounds"),
            });
        }
    }
    // Union chain: average over actions preserves positive-probability
    // edges, so the uniform random chain has the union reachability.
    let chain = pomdp.mdp().uniform_random_chain();
    let targets: Vec<usize> = null_states.iter().map(|s| s.index()).collect();
    let ok = chain.can_reach(&targets);
    for (s, reachable) in ok.iter().enumerate() {
        if !reachable {
            return Err(Error::Condition1Violated {
                detail: format!(
                    "state {} ({}) cannot reach any null-fault state",
                    s,
                    pomdp.mdp().state_label(s)
                ),
            });
        }
    }
    Ok(())
}

/// Checks Condition 2: all single-step rewards are `<= 0`.
///
/// # Errors
///
/// Returns [`Error::Condition2Violated`] identifying the first positive
/// reward found.
pub fn check_condition2(pomdp: &Pomdp) -> Result<(), Error> {
    for a in 0..pomdp.n_actions() {
        for s in 0..pomdp.n_states() {
            let r = pomdp.mdp().reward(s, a);
            if r > 0.0 {
                return Err(Error::Condition2Violated {
                    state: s,
                    action: a,
                    reward: r,
                });
            }
        }
    }
    Ok(())
}

/// Checks Property 1(a): `|r(s, a)| > 0` for every action in every
/// state outside `exempt` (the null-fault states for systems with
/// recovery notification, the terminate state for systems without).
///
/// This is the strict precondition of the controller's termination
/// guarantee. Models like the paper's EMN system technically have free
/// observe actions in `S_φ`, so callers typically pass
/// `exempt = S_φ ∪ {s_T}`.
///
/// # Errors
///
/// Returns [`Error::FreeAction`] identifying the first free action.
pub fn check_no_free_actions(pomdp: &Pomdp, exempt: &[StateId]) -> Result<(), Error> {
    let exempt_mask: Vec<bool> = {
        let mut m = vec![false; pomdp.n_states()];
        for s in exempt {
            if s.index() < pomdp.n_states() {
                m[s.index()] = true;
            }
        }
        m
    };
    for (s, &is_exempt) in exempt_mask.iter().enumerate() {
        if is_exempt {
            continue;
        }
        for a in 0..pomdp.n_actions() {
            if pomdp.mdp().reward(s, a) == 0.0 {
                return Err(Error::FreeAction {
                    state: s,
                    action: a,
                });
            }
        }
    }
    Ok(())
}

/// Checks Property 1(b) at a set of probe beliefs: the bound must be
/// *uniformly improvable*, `V_B(π) ≤ (L_p V_B)(π)`, which together with
/// the no-free-actions condition yields the controller's termination
/// guarantee (§4.2).
///
/// A depth-1 Max-Avg expansion with `bound` at the leaves computes
/// exactly `(L_p V_B)(π)`. This is a sampled diagnostic, not a proof —
/// the RA-Bound satisfies the property everywhere by construction, and
/// incremental backups preserve it; use this to validate hand-built
/// bound sets.
///
/// Returns the first belief (by index) violating the property, if any.
///
/// # Errors
///
/// Propagates tree-expansion failures (e.g. an empty bound set).
pub fn check_uniform_improvability(
    pomdp: &Pomdp,
    bound: &bpr_pomdp::bounds::VectorSetBound,
    probes: &[bpr_pomdp::Belief],
    tolerance: f64,
) -> Result<Option<usize>, Error> {
    use bpr_pomdp::bounds::ValueBound;
    for (i, belief) in probes.iter().enumerate() {
        let v = bound.value(belief);
        let lp = bpr_pomdp::tree::expand(pomdp, belief, 1, bound, 1.0)
            .map_err(Error::Pomdp)?
            .value;
        if v > lp + tolerance {
            return Ok(Some(i));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpr_mdp::MdpBuilder;
    use bpr_pomdp::PomdpBuilder;

    fn pomdp_from(mb: &MdpBuilder) -> Pomdp {
        let mdp = mb.build().unwrap();
        let n = mdp.n_states();
        let mut pb = PomdpBuilder::new(mdp, 1);
        for s in 0..n {
            pb.observation_all_actions(s, 0, 1.0);
        }
        pb.build().unwrap()
    }

    #[test]
    fn condition1_accepts_recoverable_model() {
        let mut mb = MdpBuilder::new(2, 1);
        mb.transition(0, 0, 1, 1.0).reward(0, 0, -1.0);
        mb.transition(1, 0, 1, 1.0);
        let p = pomdp_from(&mb);
        assert!(check_condition1(&p, &[StateId::new(1)]).is_ok());
    }

    #[test]
    fn condition1_rejects_empty_null_set() {
        let mut mb = MdpBuilder::new(1, 1);
        mb.transition(0, 0, 0, 1.0);
        let p = pomdp_from(&mb);
        assert!(matches!(
            check_condition1(&p, &[]),
            Err(Error::Condition1Violated { .. })
        ));
    }

    #[test]
    fn condition1_rejects_unreachable_recovery() {
        // State 0 loops forever; state 1 is the null state.
        let mut mb = MdpBuilder::new(2, 1);
        mb.transition(0, 0, 0, 1.0).reward(0, 0, -1.0);
        mb.transition(1, 0, 1, 1.0);
        let p = pomdp_from(&mb);
        let err = check_condition1(&p, &[StateId::new(1)]).unwrap_err();
        match err {
            Error::Condition1Violated { detail } => assert!(detail.contains("state 0")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn condition1_rejects_out_of_bounds_null_state() {
        let mut mb = MdpBuilder::new(1, 1);
        mb.transition(0, 0, 0, 1.0);
        let p = pomdp_from(&mb);
        assert!(check_condition1(&p, &[StateId::new(5)]).is_err());
    }

    #[test]
    fn condition1_uses_union_graph_across_actions() {
        // Recovery needs two different actions in sequence: 0 -a1-> 1 -a0-> 2.
        let mut mb = MdpBuilder::new(3, 2);
        mb.transition(0, 0, 0, 1.0).reward(0, 0, -1.0);
        mb.transition(0, 1, 1, 1.0).reward(0, 1, -1.0);
        mb.transition(1, 0, 2, 1.0).reward(1, 0, -1.0);
        mb.transition(1, 1, 1, 1.0).reward(1, 1, -1.0);
        mb.transition(2, 0, 2, 1.0);
        mb.transition(2, 1, 2, 1.0);
        let p = pomdp_from(&mb);
        assert!(check_condition1(&p, &[StateId::new(2)]).is_ok());
    }

    #[test]
    fn condition2_detects_positive_reward() {
        let mut mb = MdpBuilder::new(1, 1);
        mb.transition(0, 0, 0, 1.0).reward(0, 0, 0.25);
        let p = pomdp_from(&mb);
        assert!(matches!(
            check_condition2(&p),
            Err(Error::Condition2Violated {
                state: 0,
                action: 0,
                ..
            })
        ));
    }

    #[test]
    fn condition2_accepts_costs() {
        let mut mb = MdpBuilder::new(1, 2);
        mb.transition(0, 0, 0, 1.0).reward(0, 0, -0.1);
        mb.transition(0, 1, 0, 1.0).reward(0, 1, 0.0);
        let p = pomdp_from(&mb);
        assert!(check_condition2(&p).is_ok());
    }

    #[test]
    fn uniform_improvability_accepts_ra_and_rejects_inflated_bounds() {
        use bpr_pomdp::bounds::{ra_bound, VectorSetBound};
        use bpr_pomdp::Belief;
        let model = crate::model::tests::two_server_model()
            .without_notification(10.0)
            .unwrap();
        let probes: Vec<Belief> = (0..4)
            .map(|s| Belief::point(4, StateId::new(s)))
            .chain([Belief::uniform(4)])
            .collect();
        let ra = ra_bound(model.pomdp(), &Default::default()).unwrap();
        assert_eq!(
            check_uniform_improvability(model.pomdp(), &ra, &probes, 1e-9).unwrap(),
            None
        );
        // An inflated "bound" (all zeros) claims the faulty states are
        // free, which one Bellman application refutes.
        let zero = VectorSetBound::from_vector(vec![0.0; 4]).unwrap();
        let violation = check_uniform_improvability(model.pomdp(), &zero, &probes, 1e-9).unwrap();
        assert!(violation.is_some());
    }

    #[test]
    fn free_action_check_respects_exempt_states() {
        let mut mb = MdpBuilder::new(2, 1);
        mb.transition(0, 0, 1, 1.0).reward(0, 0, -1.0);
        mb.transition(1, 0, 1, 1.0).reward(1, 0, 0.0);
        let p = pomdp_from(&mb);
        assert!(matches!(
            check_no_free_actions(&p, &[]),
            Err(Error::FreeAction { state: 1, .. })
        ));
        assert!(check_no_free_actions(&p, &[StateId::new(1)]).is_ok());
    }
}
