//! Validation of the paper's structural conditions on recovery models.
//!
//! * **Condition 1** (§3.1): there is a non-empty set of null-fault
//!   states `S_φ`, and from every state at least one action sequence
//!   reaches `S_φ`.
//! * **Condition 2** (§3.2): all single-step rewards are non-positive
//!   (the model is a negative MDP; values are bounded above by 0).
//! * **No free actions** (Property 1(a), §4.2): every action outside
//!   the exempt states accrues strictly negative reward, which is what
//!   makes the bounded controller's termination argument go through.
//!
//! These checks are built on (and subsumed by) the `bpr-lint` static
//! analyzer, re-exported here as [`lint`](crate::lint): where a
//! condition check fails fast with an [`Error`] carrying **all**
//! violations, [`lint::lint_pomdp`](bpr_lint::lint_pomdp) produces the
//! full structured report with severities and fix-it hints. Use the
//! checks for construction-time gating and the analyzer for diagnosis.

use crate::Error;
use bpr_lint::checks;
pub use bpr_lint::{
    lint_pomdp, Diagnostic, LintCode, LintContext, LintReport, Severity, Stage, Termination,
};
use bpr_mdp::StateId;
use bpr_pomdp::Pomdp;

/// Checks Condition 1: `null_states` is non-empty, in bounds, and
/// reachable (under *some* action sequence) from every state.
///
/// Reachability is evaluated on the union graph of all actions — an
/// edge `s → s'` exists if any action moves `s` to `s'` with positive
/// probability — which is exactly "there is at least one way to
/// recover".
///
/// # Errors
///
/// Returns [`Error::Condition1Violated`] naming **every** offending
/// state (not just the first) in the detail message.
pub fn check_condition1(pomdp: &Pomdp, null_states: &[StateId]) -> Result<(), Error> {
    if null_states.is_empty() {
        return Err(Error::Condition1Violated {
            detail: "the set of null-fault states is empty".into(),
        });
    }
    let oob: Vec<String> = null_states
        .iter()
        .filter(|s| s.index() >= pomdp.n_states())
        .map(|s| s.to_string())
        .collect();
    if !oob.is_empty() {
        return Err(Error::Condition1Violated {
            detail: format!("null state(s) {} out of bounds", oob.join(", ")),
        });
    }
    let ctx = LintContext::raw(null_states.to_vec());
    let stranded = checks::unrecoverable_states(pomdp, &ctx);
    if !stranded.is_empty() {
        let described: Vec<String> = stranded
            .iter()
            .map(|s| format!("{} ({})", s.index(), pomdp.mdp().state_label(*s)))
            .collect();
        return Err(Error::Condition1Violated {
            detail: format!(
                "state(s) {} cannot reach any null-fault state",
                described.join(", ")
            ),
        });
    }
    Ok(())
}

/// Checks Condition 2: all single-step rewards are `<= 0`.
///
/// # Errors
///
/// Returns [`Error::Condition2Violated`] listing **every** positive
/// `(state, action, reward)` triple.
pub fn check_condition2(pomdp: &Pomdp) -> Result<(), Error> {
    let violations = checks::positive_rewards(pomdp);
    if violations.is_empty() {
        Ok(())
    } else {
        Err(Error::Condition2Violated { violations })
    }
}

/// Checks Property 1(a): `|r(s, a)| > 0` for every action in every
/// state outside `exempt` (the null-fault states for systems with
/// recovery notification, the terminate state for systems without).
///
/// This is the strict precondition of the controller's termination
/// guarantee. Models like the paper's EMN system technically have free
/// observe actions in `S_φ`, so callers typically pass
/// `exempt = S_φ ∪ {s_T}`.
///
/// # Errors
///
/// Returns [`Error::FreeAction`] listing **every** free
/// `(state, action)` pair.
pub fn check_no_free_actions(pomdp: &Pomdp, exempt: &[StateId]) -> Result<(), Error> {
    let ctx = LintContext::raw(Vec::new()).with_exempt(exempt.to_vec());
    let violations = checks::free_action_pairs(pomdp, &ctx);
    if violations.is_empty() {
        Ok(())
    } else {
        Err(Error::FreeAction { violations })
    }
}

/// Checks Property 1(b) at a set of probe beliefs: the bound must be
/// *uniformly improvable*, `V_B(π) ≤ (L_p V_B)(π)`, which together with
/// the no-free-actions condition yields the controller's termination
/// guarantee (§4.2).
///
/// A depth-1 Max-Avg expansion with `bound` at the leaves computes
/// exactly `(L_p V_B)(π)`. This is a sampled diagnostic, not a proof —
/// the RA-Bound satisfies the property everywhere by construction, and
/// incremental backups preserve it; use this to validate hand-built
/// bound sets.
///
/// Returns the first belief (by index) violating the property, if any.
///
/// # Errors
///
/// Propagates tree-expansion failures (e.g. an empty bound set).
pub fn check_uniform_improvability(
    pomdp: &Pomdp,
    bound: &bpr_pomdp::bounds::VectorSetBound,
    probes: &[bpr_pomdp::Belief],
    tolerance: f64,
) -> Result<Option<usize>, Error> {
    use bpr_pomdp::bounds::ValueBound;
    for (i, belief) in probes.iter().enumerate() {
        let v = bound.value(belief);
        let lp = bpr_pomdp::tree::expand(pomdp, belief, 1, bound, 1.0)
            .map_err(Error::Pomdp)?
            .value;
        if v > lp + tolerance {
            return Ok(Some(i));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpr_mdp::MdpBuilder;
    use bpr_pomdp::PomdpBuilder;

    fn pomdp_from(mb: &MdpBuilder) -> Pomdp {
        let mdp = mb.build().unwrap();
        let n = mdp.n_states();
        let mut pb = PomdpBuilder::new(mdp, 1);
        for s in 0..n {
            pb.observation_all_actions(s, 0, 1.0);
        }
        pb.build().unwrap()
    }

    #[test]
    fn condition1_accepts_recoverable_model() {
        let mut mb = MdpBuilder::new(2, 1);
        mb.transition(0, 0, 1, 1.0).reward(0, 0, -1.0);
        mb.transition(1, 0, 1, 1.0);
        let p = pomdp_from(&mb);
        assert!(check_condition1(&p, &[StateId::new(1)]).is_ok());
    }

    #[test]
    fn condition1_rejects_empty_null_set() {
        let mut mb = MdpBuilder::new(1, 1);
        mb.transition(0, 0, 0, 1.0);
        let p = pomdp_from(&mb);
        assert!(matches!(
            check_condition1(&p, &[]),
            Err(Error::Condition1Violated { .. })
        ));
    }

    #[test]
    fn condition1_rejects_unreachable_recovery() {
        // State 0 loops forever; state 1 is the null state.
        let mut mb = MdpBuilder::new(2, 1);
        mb.transition(0, 0, 0, 1.0).reward(0, 0, -1.0);
        mb.transition(1, 0, 1, 1.0);
        let p = pomdp_from(&mb);
        let err = check_condition1(&p, &[StateId::new(1)]).unwrap_err();
        match err {
            Error::Condition1Violated { detail } => assert!(detail.contains("0 (s0)")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn condition1_reports_all_stranded_states() {
        // States 0 and 1 both loop forever; only state 2 is null.
        let mut mb = MdpBuilder::new(3, 1);
        mb.transition(0, 0, 0, 1.0).reward(0, 0, -1.0);
        mb.transition(1, 0, 1, 1.0).reward(1, 0, -1.0);
        mb.transition(2, 0, 2, 1.0);
        let p = pomdp_from(&mb);
        let err = check_condition1(&p, &[StateId::new(2)]).unwrap_err();
        match err {
            Error::Condition1Violated { detail } => {
                assert!(detail.contains("0 (s0)"), "{detail}");
                assert!(detail.contains("1 (s1)"), "{detail}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn condition1_rejects_out_of_bounds_null_state() {
        let mut mb = MdpBuilder::new(1, 1);
        mb.transition(0, 0, 0, 1.0);
        let p = pomdp_from(&mb);
        let err = check_condition1(&p, &[StateId::new(5)]).unwrap_err();
        match err {
            Error::Condition1Violated { detail } => assert!(detail.contains("s5")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn condition1_uses_union_graph_across_actions() {
        // Recovery needs two different actions in sequence: 0 -a1-> 1 -a0-> 2.
        let mut mb = MdpBuilder::new(3, 2);
        mb.transition(0, 0, 0, 1.0).reward(0, 0, -1.0);
        mb.transition(0, 1, 1, 1.0).reward(0, 1, -1.0);
        mb.transition(1, 0, 2, 1.0).reward(1, 0, -1.0);
        mb.transition(1, 1, 1, 1.0).reward(1, 1, -1.0);
        mb.transition(2, 0, 2, 1.0);
        mb.transition(2, 1, 2, 1.0);
        let p = pomdp_from(&mb);
        assert!(check_condition1(&p, &[StateId::new(2)]).is_ok());
    }

    #[test]
    fn condition2_reports_all_positive_rewards() {
        let mut mb = MdpBuilder::new(2, 1);
        mb.transition(0, 0, 0, 1.0).reward(0, 0, 0.25);
        mb.transition(1, 0, 1, 1.0).reward(1, 0, 0.75);
        let p = pomdp_from(&mb);
        match check_condition2(&p).unwrap_err() {
            Error::Condition2Violated { violations } => {
                assert_eq!(violations, vec![(0, 0, 0.25), (1, 0, 0.75)]);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn condition2_accepts_costs() {
        let mut mb = MdpBuilder::new(1, 2);
        mb.transition(0, 0, 0, 1.0).reward(0, 0, -0.1);
        mb.transition(0, 1, 0, 1.0).reward(0, 1, 0.0);
        let p = pomdp_from(&mb);
        assert!(check_condition2(&p).is_ok());
    }

    #[test]
    fn uniform_improvability_accepts_ra_and_rejects_inflated_bounds() {
        use bpr_pomdp::bounds::{ra_bound, VectorSetBound};
        use bpr_pomdp::Belief;
        let model = crate::model::tests::two_server_model()
            .without_notification(10.0)
            .unwrap();
        let probes: Vec<Belief> = (0..4)
            .map(|s| Belief::point(4, StateId::new(s)))
            .chain([Belief::uniform(4)])
            .collect();
        let ra = ra_bound(model.pomdp(), &Default::default()).unwrap();
        assert_eq!(
            check_uniform_improvability(model.pomdp(), &ra, &probes, 1e-9).unwrap(),
            None
        );
        // An inflated "bound" (all zeros) claims the faulty states are
        // free, which one Bellman application refutes.
        let zero = VectorSetBound::from_vector(vec![0.0; 4]).unwrap();
        let violation = check_uniform_improvability(model.pomdp(), &zero, &probes, 1e-9).unwrap();
        assert!(violation.is_some());
    }

    #[test]
    fn free_action_check_reports_all_pairs_with_actions() {
        let mut mb = MdpBuilder::new(2, 2);
        mb.transition(0, 0, 1, 1.0).reward(0, 0, -1.0);
        mb.transition(0, 1, 0, 1.0).reward(0, 1, 0.0);
        mb.transition(1, 0, 1, 1.0).reward(1, 0, 0.0);
        mb.transition(1, 1, 1, 1.0).reward(1, 1, 0.0);
        let p = pomdp_from(&mb);
        match check_no_free_actions(&p, &[]).unwrap_err() {
            Error::FreeAction { violations } => {
                assert_eq!(violations, vec![(0, 1), (1, 0), (1, 1)]);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(matches!(
            check_no_free_actions(&p, &[StateId::new(1)]).unwrap_err(),
            Error::FreeAction { violations } if violations == vec![(0, 1)]
        ));
    }

    #[test]
    fn condition_checks_agree_with_lint_analyzer() {
        // The fast-fail checks and the full analyzer are built on the
        // same primitives: a model failing a check must lint dirty, and
        // the clean two-server model must pass both.
        let model = crate::model::tests::two_server_model();
        assert!(check_condition1(model.base(), model.null_states()).is_ok());
        assert!(check_condition2(model.base()).is_ok());
        let report = lint_pomdp(
            model.base(),
            &LintContext::raw(model.null_states().to_vec()).full(),
        );
        assert!(!report.has_errors(), "{}", report.render());

        let mut mb = MdpBuilder::new(2, 1);
        mb.transition(0, 0, 0, 1.0).reward(0, 0, 0.5);
        mb.transition(1, 0, 1, 1.0);
        let bad = pomdp_from(&mb);
        assert!(check_condition1(&bad, &[StateId::new(1)]).is_err());
        assert!(check_condition2(&bad).is_err());
        let report = lint_pomdp(&bad, &LintContext::raw(vec![StateId::new(1)]));
        assert!(report.has_errors());
        let codes: Vec<&str> = report
            .diagnostics()
            .iter()
            .map(|d| d.code.as_str())
            .collect();
        assert!(codes.contains(&LintCode::UnrecoverableState.as_str()));
        assert!(codes.contains(&LintCode::PositiveReward.as_str()));
    }
}
