//! The bootstrapping phase of the recovery controller (paper §4.1):
//! off-line iterative improvement of the lower bound by simulating
//! monitor outputs and backing up at the visited belief states.

use crate::snapshot::{fnv1a64, BootstrapCheckpoint, CheckpointPolicy, SnapshotError};
use crate::{Error, TerminatedModel};
use bpr_mdp::ActionId;
use bpr_par::WorkPool;
use bpr_pomdp::backup::incremental_backup;
use bpr_pomdp::bounds::{ValueBound, VectorSetBound};
use bpr_pomdp::{tree, Belief};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How bootstrap episodes choose their initial belief (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootstrapVariant {
    /// "Random": a fault is drawn uniformly, an observation is sampled
    /// from the monitors, and the episode starts from the belief
    /// conditioned on that observation.
    Random,
    /// "Average": the episode starts from the belief in which all
    /// faults are equally likely.
    Average,
}

/// Configuration of the bootstrap procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapConfig {
    /// Initial-belief scheme.
    pub variant: BootstrapVariant,
    /// Number of simulated recovery episodes.
    pub iterations: usize,
    /// Tree depth used for action selection inside the episodes.
    pub depth: usize,
    /// Safety cap on steps per episode.
    pub max_steps: usize,
    /// Discount factor (1.0 for the recovery criterion).
    pub beta: f64,
    /// Optional cap on stored bound vectors (least-used eviction).
    pub vector_cap: Option<usize>,
    /// The action used to condition the initial belief in the
    /// [`BootstrapVariant::Random`] scheme — typically the monitor
    /// (observe) action of the model.
    pub conditioning_action: ActionId,
    /// Observation branches with probability at or below this are
    /// pruned during the in-episode tree expansions.
    pub gamma_cutoff: f64,
}

impl Default for BootstrapConfig {
    fn default() -> BootstrapConfig {
        BootstrapConfig {
            variant: BootstrapVariant::Average,
            iterations: 10,
            depth: 2,
            max_steps: 50,
            beta: 1.0,
            vector_cap: None,
            conditioning_action: ActionId::new(0),
            gamma_cutoff: 1e-4,
        }
    }
}

impl BootstrapConfig {
    /// Starts a validated builder pre-loaded with the defaults.
    pub fn builder() -> BootstrapConfigBuilder {
        BootstrapConfigBuilder {
            config: BootstrapConfig::default(),
        }
    }

    /// Checks the numeric invariants every bootstrap entry point needs.
    ///
    /// Deliberately more lenient than [`BootstrapConfigBuilder::build`]:
    /// zero `iterations` (a no-op run) and zero `max_steps` stay legal
    /// here so hand-built configs keep working, while the builder
    /// rejects them as almost-certainly-unintended.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] for a zero tree depth, a `beta` outside
    /// `(0, 1]` or non-finite, a negative or non-finite `gamma_cutoff`,
    /// or a zero `vector_cap`.
    pub fn validate(&self) -> Result<(), Error> {
        if self.depth == 0 {
            return Err(Error::InvalidInput {
                detail: "bootstrap tree depth must be at least 1".into(),
            });
        }
        if !(self.beta.is_finite() && self.beta > 0.0 && self.beta <= 1.0) {
            return Err(Error::InvalidInput {
                detail: format!("bootstrap beta must be in (0, 1], got {}", self.beta),
            });
        }
        if !self.gamma_cutoff.is_finite() || self.gamma_cutoff < 0.0 {
            return Err(Error::InvalidInput {
                detail: format!(
                    "bootstrap gamma cutoff must be finite and non-negative, got {}",
                    self.gamma_cutoff
                ),
            });
        }
        if self.vector_cap == Some(0) {
            return Err(Error::InvalidInput {
                detail: "bootstrap vector cap of 0 would evict every hyperplane".into(),
            });
        }
        Ok(())
    }
}

/// Validated builder for [`BootstrapConfig`]: [`BootstrapConfigBuilder::build`]
/// returns `Err` on nonsense instead of letting a zero-iteration or
/// NaN-threshold config silently produce an empty or diverging run.
#[derive(Debug, Clone)]
pub struct BootstrapConfigBuilder {
    config: BootstrapConfig,
}

impl BootstrapConfigBuilder {
    /// Sets the initial-belief scheme.
    pub fn variant(mut self, variant: BootstrapVariant) -> BootstrapConfigBuilder {
        self.config.variant = variant;
        self
    }

    /// Sets the number of simulated recovery episodes.
    pub fn iterations(mut self, iterations: usize) -> BootstrapConfigBuilder {
        self.config.iterations = iterations;
        self
    }

    /// Sets the tree depth used for in-episode action selection.
    pub fn depth(mut self, depth: usize) -> BootstrapConfigBuilder {
        self.config.depth = depth;
        self
    }

    /// Sets the per-episode step cap.
    pub fn max_steps(mut self, max_steps: usize) -> BootstrapConfigBuilder {
        self.config.max_steps = max_steps;
        self
    }

    /// Sets the discount factor.
    pub fn beta(mut self, beta: f64) -> BootstrapConfigBuilder {
        self.config.beta = beta;
        self
    }

    /// Caps the stored bound vectors (least-used eviction).
    pub fn vector_cap(mut self, cap: Option<usize>) -> BootstrapConfigBuilder {
        self.config.vector_cap = cap;
        self
    }

    /// Sets the action conditioning [`BootstrapVariant::Random`] starts.
    pub fn conditioning_action(mut self, action: ActionId) -> BootstrapConfigBuilder {
        self.config.conditioning_action = action;
        self
    }

    /// Sets the observation-branch pruning threshold.
    pub fn gamma_cutoff(mut self, cutoff: f64) -> BootstrapConfigBuilder {
        self.config.gamma_cutoff = cutoff;
        self
    }

    /// Validates and returns the config.
    ///
    /// # Errors
    ///
    /// Everything [`BootstrapConfig::validate`] rejects, plus zero
    /// `iterations` and zero `max_steps`.
    pub fn build(self) -> Result<BootstrapConfig, Error> {
        if self.config.iterations == 0 {
            return Err(Error::InvalidInput {
                detail: "bootstrap iterations must be at least 1".into(),
            });
        }
        if self.config.max_steps == 0 {
            return Err(Error::InvalidInput {
                detail: "bootstrap max_steps must be at least 1".into(),
            });
        }
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Per-iteration progress of the bound (the series plotted in the
/// paper's Figure 5).
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Lower-bound value at the uniform belief `{1/|S|}` (negative; its
    /// negation is the paper's "upper bound on cost").
    pub bound_at_uniform: f64,
    /// Number of hyperplanes in the bound set after the iteration.
    pub n_vectors: usize,
}

/// The result of a bootstrap run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BootstrapReport {
    /// One record per iteration, in order.
    pub records: Vec<IterationRecord>,
    /// Total incremental backups performed across the whole run — the
    /// work unit behind the scaling benchmark's backups/sec metric.
    pub total_backups: usize,
}

impl BootstrapReport {
    /// The bound value at the uniform belief after the final iteration.
    pub fn final_bound_at_uniform(&self) -> Option<f64> {
        self.records.last().map(|r| r.bound_at_uniform)
    }
}

/// Runs the bootstrap procedure, improving `bound` in place.
///
/// Each iteration simulates one recovery episode against ground truth
/// sampled from the model itself: a fault is drawn uniformly from the
/// fault states, the controller logic (tree expansion over the current
/// bound) picks actions, monitors are simulated through `q`, and an
/// incremental backup is performed at every belief the episode visits.
///
/// # Errors
///
/// * [`Error::InvalidInput`] for a zero depth, zero iterations being
///   fine (no-op) but an out-of-range conditioning action failing.
/// * Propagates backup/expansion failures.
pub fn bootstrap<R: Rng + ?Sized>(
    model: &TerminatedModel,
    bound: &mut VectorSetBound,
    config: &BootstrapConfig,
    rng: &mut R,
) -> Result<BootstrapReport, Error> {
    check_against_model(config, model)?;
    let pomdp = model.pomdp();
    let faults = model.fault_states();
    let uniform_eval = uniform_eval_belief(model)?;

    let mut report = BootstrapReport::default();
    for iteration in 1..=config.iterations {
        // Ground truth for monitor simulation.
        let mut world = faults[rng.gen_range(0..faults.len())];
        let fault_belief = Belief::uniform_over(pomdp.n_states(), &faults);
        let mut belief = match config.variant {
            BootstrapVariant::Average => fault_belief,
            BootstrapVariant::Random => {
                let a = config.conditioning_action;
                // Monitors observe the (unchanged) faulty state.
                let o = pomdp.sample_observation(rng, world, a);
                match fault_belief.update(pomdp, a, o) {
                    Ok((b, _)) => b,
                    // An observation inconsistent with the prior support
                    // cannot happen here, but fall back defensively.
                    Err(_) => Belief::uniform_over(pomdp.n_states(), &faults),
                }
            }
        };

        for _step in 0..config.max_steps {
            incremental_backup(pomdp, bound, &belief, config.beta).map_err(Error::Pomdp)?;
            report.total_backups += 1;
            if let Some(cap) = config.vector_cap {
                bound.evict_to(cap);
            }
            let decision = tree::expand_with_cutoff(
                pomdp,
                &belief,
                config.depth,
                &*bound,
                config.beta,
                config.gamma_cutoff,
            )
            .map_err(Error::Pomdp)?;
            if decision.action == model.terminate_action() {
                break;
            }
            let next = pomdp.sample_transition(rng, world, decision.action);
            let o = pomdp.sample_observation(rng, next, decision.action);
            world = next;
            match belief.update(pomdp, decision.action, o) {
                Ok((b, _)) => belief = b,
                // Zero-probability observation under the belief: restart
                // from the uninformed fault prior rather than crash.
                Err(_) => belief = Belief::uniform_over(pomdp.n_states(), &faults),
            }
        }
        report.records.push(IterationRecord {
            iteration,
            bound_at_uniform: bound.value(&uniform_eval),
            n_vectors: bound.len(),
        });
    }
    Ok(report)
}

/// Runs the bootstrap procedure with the paper's per-update counting:
/// each iteration performs exactly **one** incremental backup (so the
/// bound set grows by at most one vector per iteration, the invariant
/// behind Figure 5(b)), with the belief trajectory simulated across
/// iterations — controller-chosen actions generate the next beliefs,
/// and a fresh episode starts whenever the previous one terminates.
///
/// [`bootstrap`] (one full episode per iteration) is the heavier
/// variant used to pre-train controllers; this one reproduces the
/// paper's Figure 5 semantics.
///
/// # Errors
///
/// Same conditions as [`bootstrap`].
pub fn bootstrap_updates<R: Rng + ?Sized>(
    model: &TerminatedModel,
    bound: &mut VectorSetBound,
    config: &BootstrapConfig,
    rng: &mut R,
) -> Result<BootstrapReport, Error> {
    check_against_model(config, model)?;
    let pomdp = model.pomdp();
    let faults = model.fault_states();
    let uniform_eval = uniform_eval_belief(model)?;

    // Each iteration invokes the controller once and performs one
    // incremental update there. Average always re-invokes at the fixed
    // all-faults-equally-likely belief (repeated backups compound
    // there); Random re-samples a fault and a monitor output and
    // conditions the fault prior on it (Eq. 4), staying in the
    // high-uncertainty region where the controller will actually start.
    let fault_belief = Belief::uniform_over(pomdp.n_states(), &faults);
    let mut report = BootstrapReport::default();
    for iteration in 1..=config.iterations {
        let belief = match config.variant {
            BootstrapVariant::Average => fault_belief.clone(),
            BootstrapVariant::Random => {
                let world = faults[rng.gen_range(0..faults.len())];
                let a = config.conditioning_action;
                let o = pomdp.sample_observation(rng, world, a);
                fault_belief
                    .update(pomdp, a, o)
                    .map(|(b, _)| b)
                    .unwrap_or_else(|_| fault_belief.clone())
            }
        };
        incremental_backup(pomdp, bound, &belief, config.beta).map_err(Error::Pomdp)?;
        report.total_backups += 1;
        if let Some(cap) = config.vector_cap {
            bound.evict_to(cap);
        }
        report.records.push(IterationRecord {
            iteration,
            bound_at_uniform: bound.value(&uniform_eval),
            n_vectors: bound.len(),
        });
    }
    Ok(report)
}

/// Deterministic parallel bootstrap: the batch-synchronous (PBVI-style)
/// variant behind the scaling benchmark.
///
/// `config.iterations` episodes run in rounds of `batch`. Within a
/// round every episode simulates its belief trajectory **against a
/// frozen snapshot** of the bound, in parallel on `pool`, with its RNG
/// derived from `(master_seed, episode_index)` — so trajectories are a
/// pure function of the episode index. The backups those trajectories
/// request are then merged into the live bound *sequentially, in
/// episode order*. Results are therefore bit-identical for every pool
/// width, including 1; the round structure (not the thread count) is
/// the algorithmic knob.
///
/// This is a different — batch-synchronous — algorithm from
/// [`bootstrap`], whose every backup immediately sharpens the bound the
/// *same* episode keeps planning with. Expect `bootstrap_par` with
/// `batch == 1` and one thread to behave like [`bootstrap`] in spirit
/// but not bit-for-bit: here planning always uses the round's snapshot.
/// Monotone improvement of the bound is preserved (backups only add
/// dominating hyperplanes).
///
/// # Errors
///
/// * [`Error::InvalidInput`] for a zero `batch`, plus everything
///   [`bootstrap`] rejects.
/// * Propagates backup/expansion failures (lowest episode index first,
///   whatever the pool width).
pub fn bootstrap_par(
    model: &TerminatedModel,
    bound: &mut VectorSetBound,
    config: &BootstrapConfig,
    batch: usize,
    master_seed: u64,
    pool: &WorkPool,
) -> Result<BootstrapReport, Error> {
    check_against_model(config, model)?;
    if batch == 0 {
        return Err(Error::InvalidInput {
            detail: "bootstrap batch size must be at least 1".into(),
        });
    }
    let uniform_eval = uniform_eval_belief(model)?;

    let mut report = BootstrapReport::default();
    let mut next_episode = 0usize;
    while next_episode < config.iterations {
        let round = batch.min(config.iterations - next_episode);
        bootstrap_round(
            model,
            bound,
            config,
            master_seed,
            pool,
            next_episode,
            round,
            &uniform_eval,
            &mut report,
        )?;
        next_episode += round;
    }
    Ok(report)
}

/// One batch-synchronous round of [`bootstrap_par`]: simulate `round`
/// episodes starting at `next_episode` against a frozen bound, then
/// merge their backups sequentially in episode order.
#[allow(clippy::too_many_arguments)]
fn bootstrap_round(
    model: &TerminatedModel,
    bound: &mut VectorSetBound,
    config: &BootstrapConfig,
    master_seed: u64,
    pool: &WorkPool,
    next_episode: usize,
    round: usize,
    uniform_eval: &Belief,
    report: &mut BootstrapReport,
) -> Result<(), Error> {
    let pomdp = model.pomdp();
    // Freeze the bound for the round: planning inside the round's
    // episodes must not observe each other's backups.
    let frozen = bound.clone();
    let trajectories: Vec<Result<Vec<Belief>, Error>> = pool.map_indices(round, |offset| {
        let episode = next_episode + offset;
        let mut rng = StdRng::seed_from_stream(master_seed, episode as u64);
        simulate_trajectory(model, &frozen, config, &mut rng)
    });
    // Sequential merge, episode order: this is what makes the run
    // independent of how the trajectories were scheduled.
    for (offset, trajectory) in trajectories.into_iter().enumerate() {
        let trajectory = trajectory?;
        for belief in &trajectory {
            incremental_backup(pomdp, bound, belief, config.beta).map_err(Error::Pomdp)?;
            report.total_backups += 1;
            if let Some(cap) = config.vector_cap {
                bound.evict_to(cap);
            }
        }
        report.records.push(IterationRecord {
            iteration: next_episode + offset + 1,
            bound_at_uniform: bound.value(uniform_eval),
            n_vectors: bound.len(),
        });
    }
    Ok(())
}

/// The result of a durable (checkpointed) bootstrap run.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableBootstrapReport {
    /// The underlying bootstrap report — bit-identical to what an
    /// uninterrupted [`bootstrap_par`] run would have produced.
    pub report: BootstrapReport,
    /// `Some(episode)` when the run resumed from a snapshot covering
    /// episodes `0..episode`.
    pub resumed_from: Option<usize>,
    /// The typed reason the snapshot was ignored, when it was (the run
    /// then started fresh from the caller's seed bound).
    pub snapshot_error: Option<SnapshotError>,
    /// Snapshots written during this run.
    pub checkpoints_written: usize,
}

/// The parameters that must match between the run that wrote a
/// checkpoint and the run resuming from it. `iterations` is
/// deliberately excluded: a run killed partway toward a larger target
/// is exactly what resume is for.
fn session_fingerprint(
    model: &TerminatedModel,
    config: &BootstrapConfig,
    batch: usize,
    master_seed: u64,
) -> u64 {
    let canon = format!(
        "seed={master_seed} batch={batch} variant={:?} depth={} max_steps={} beta={:?} \
         vector_cap={:?} conditioning={} gamma_cutoff={:?} n_states={}",
        config.variant,
        config.depth,
        config.max_steps,
        config.beta,
        config.vector_cap,
        config.conditioning_action.index(),
        config.gamma_cutoff,
        model.pomdp().n_states()
    );
    fnv1a64(canon.as_bytes())
}

/// [`bootstrap_par`] with crash durability: the bound, records, and
/// progress cursor are snapshotted to `policy.path` every
/// `policy.every` rounds (and at completion), and a run finding a
/// compatible snapshot resumes from its round boundary.
///
/// Because episodes are a pure function of `(master_seed, index)` and
/// backups merge sequentially in episode order, a resumed run is
/// **bit-identical** to an uninterrupted one — same records, same
/// hyperplanes, same usage counters.
///
/// A snapshot that is missing is the normal first-run state. A snapshot
/// that is truncated, bit-flipped, version-mismatched, or written by a
/// different session (seed/config/model mismatch) is *ignored*: the run
/// starts fresh from the caller's seed bound and reports the typed
/// [`SnapshotError`] in [`DurableBootstrapReport::snapshot_error`].
/// Corruption never panics and never poisons the bound.
///
/// # Errors
///
/// * Everything [`bootstrap_par`] rejects.
/// * [`Error::Snapshot`] when a checkpoint cannot be **written**
///   (durability was requested and cannot be provided).
pub fn bootstrap_par_durable(
    model: &TerminatedModel,
    bound: &mut VectorSetBound,
    config: &BootstrapConfig,
    batch: usize,
    master_seed: u64,
    pool: &WorkPool,
    policy: &CheckpointPolicy,
) -> Result<DurableBootstrapReport, Error> {
    check_against_model(config, model)?;
    if batch == 0 {
        return Err(Error::InvalidInput {
            detail: "bootstrap batch size must be at least 1".into(),
        });
    }
    policy.validate()?;
    let fingerprint = session_fingerprint(model, config, batch, master_seed);
    let uniform_eval = uniform_eval_belief(model)?;

    let mut report = BootstrapReport::default();
    let mut resumed_from = None;
    let mut snapshot_error = None;
    let mut next_episode = 0usize;
    match BootstrapCheckpoint::load(&policy.path) {
        Ok(None) => {}
        Ok(Some(cp)) => {
            if cp.fingerprint != fingerprint {
                snapshot_error = Some(SnapshotError::Incompatible {
                    detail: "checkpoint was written by a different session \
                             (seed, batch, config, or model mismatch)"
                        .into(),
                });
            } else if cp.next_episode > config.iterations {
                snapshot_error = Some(SnapshotError::Incompatible {
                    detail: format!(
                        "checkpoint is ahead of the requested run: episode {} > {}",
                        cp.next_episode, config.iterations
                    ),
                });
            } else {
                match cp.restore_bound() {
                    Ok(restored) => {
                        *bound = restored;
                        next_episode = cp.next_episode;
                        report.records = cp.records;
                        report.total_backups = cp.total_backups;
                        resumed_from = Some(next_episode);
                    }
                    Err(e) => snapshot_error = Some(e),
                }
            }
        }
        Err(e) => snapshot_error = Some(e),
    }

    let mut checkpoints_written = 0usize;
    let mut rounds_since_checkpoint = 0usize;
    while next_episode < config.iterations {
        let round = batch.min(config.iterations - next_episode);
        bootstrap_round(
            model,
            bound,
            config,
            master_seed,
            pool,
            next_episode,
            round,
            &uniform_eval,
            &mut report,
        )?;
        next_episode += round;
        rounds_since_checkpoint += 1;
        if rounds_since_checkpoint >= policy.every || next_episode >= config.iterations {
            BootstrapCheckpoint::capture(
                fingerprint,
                next_episode,
                report.total_backups,
                &report.records,
                bound,
            )
            .save(&policy.path)
            .map_err(Error::Snapshot)?;
            checkpoints_written += 1;
            rounds_since_checkpoint = 0;
        }
    }
    Ok(DurableBootstrapReport {
        report,
        resumed_from,
        snapshot_error,
        checkpoints_written,
    })
}

/// One bootstrap episode planned against a frozen bound, returning the
/// beliefs at which [`bootstrap_par`] will back up (in visit order).
/// A pure function of `(model, frozen, config, rng-stream)` — the
/// determinism contract [`WorkPool::map_indices`] requires.
fn simulate_trajectory<R: Rng + ?Sized>(
    model: &TerminatedModel,
    frozen: &VectorSetBound,
    config: &BootstrapConfig,
    rng: &mut R,
) -> Result<Vec<Belief>, Error> {
    let pomdp = model.pomdp();
    let faults = model.fault_states();
    let mut world = faults[rng.gen_range(0..faults.len())];
    let fault_belief = Belief::uniform_over(pomdp.n_states(), &faults);
    let mut belief = match config.variant {
        BootstrapVariant::Average => fault_belief,
        BootstrapVariant::Random => {
            let a = config.conditioning_action;
            let o = pomdp.sample_observation(rng, world, a);
            match fault_belief.update(pomdp, a, o) {
                Ok((b, _)) => b,
                Err(_) => Belief::uniform_over(pomdp.n_states(), &faults),
            }
        }
    };
    let mut visited = Vec::new();
    for _step in 0..config.max_steps {
        visited.push(belief.clone());
        let decision = tree::expand_with_cutoff(
            pomdp,
            &belief,
            config.depth,
            frozen,
            config.beta,
            config.gamma_cutoff,
        )
        .map_err(Error::Pomdp)?;
        if decision.action == model.terminate_action() {
            break;
        }
        let next = pomdp.sample_transition(rng, world, decision.action);
        let o = pomdp.sample_observation(rng, next, decision.action);
        world = next;
        match belief.update(pomdp, decision.action, o) {
            Ok((b, _)) => belief = b,
            Err(_) => belief = Belief::uniform_over(pomdp.n_states(), &faults),
        }
    }
    Ok(visited)
}

/// Shared entry validation: config invariants plus the model-dependent
/// checks every bootstrap flavour needs.
fn check_against_model(config: &BootstrapConfig, model: &TerminatedModel) -> Result<(), Error> {
    config.validate()?;
    if config.conditioning_action.index() >= model.pomdp().n_actions() {
        return Err(Error::InvalidInput {
            detail: "conditioning action out of bounds".into(),
        });
    }
    if model.fault_states().is_empty() {
        return Err(Error::InvalidInput {
            detail: "model has no fault states to bootstrap on".into(),
        });
    }
    Ok(())
}

/// The evaluation belief of Fig. 5: uniform over the base states.
fn uniform_eval_belief(model: &TerminatedModel) -> Result<Belief, Error> {
    let n_base = model.pomdp().n_states() - 1;
    let mut probs = vec![1.0 / n_base as f64; n_base];
    probs.push(0.0);
    Belief::from_probs(probs).map_err(Error::Pomdp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::two_server_model;
    use bpr_mdp::chain::SolveOpts;
    use bpr_pomdp::bounds::ra_bound;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (TerminatedModel, VectorSetBound) {
        let model = two_server_model().without_notification(10.0).unwrap();
        let bound = ra_bound(model.pomdp(), &SolveOpts::default()).unwrap();
        (model, bound)
    }

    #[test]
    fn bootstrap_improves_bound_monotonically() {
        let (model, mut bound) = setup();
        let mut rng = StdRng::seed_from_u64(11);
        let config = BootstrapConfig {
            iterations: 15,
            depth: 1,
            conditioning_action: ActionId::new(2),
            ..BootstrapConfig::default()
        };
        let report = bootstrap(&model, &mut bound, &config, &mut rng).unwrap();
        assert_eq!(report.records.len(), 15);
        let mut prev = f64::NEG_INFINITY;
        for rec in &report.records {
            assert!(
                rec.bound_at_uniform + 1e-9 >= prev,
                "bound regressed at iteration {}: {} -> {}",
                rec.iteration,
                prev,
                rec.bound_at_uniform
            );
            prev = rec.bound_at_uniform;
        }
        // The bound must have moved at all.
        let first = report.records.first().unwrap().bound_at_uniform;
        let last = report.final_bound_at_uniform().unwrap();
        assert!(last >= first);
        assert!(last <= 1e-9, "bound crossed the trivial upper bound 0");
    }

    #[test]
    fn both_variants_run_and_grow_vectors() {
        for variant in [BootstrapVariant::Random, BootstrapVariant::Average] {
            let (model, mut bound) = setup();
            let mut rng = StdRng::seed_from_u64(5);
            let config = BootstrapConfig {
                variant,
                iterations: 5,
                depth: 1,
                conditioning_action: ActionId::new(2),
                ..BootstrapConfig::default()
            };
            let report = bootstrap(&model, &mut bound, &config, &mut rng).unwrap();
            let last = report.records.last().unwrap();
            assert!(last.n_vectors >= 1, "variant {variant:?}");
            assert!(bound.len() == last.n_vectors);
        }
    }

    #[test]
    fn vector_cap_is_respected() {
        let (model, mut bound) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let config = BootstrapConfig {
            iterations: 10,
            depth: 1,
            vector_cap: Some(2),
            conditioning_action: ActionId::new(2),
            ..BootstrapConfig::default()
        };
        bootstrap(&model, &mut bound, &config, &mut rng).unwrap();
        assert!(bound.len() <= 3); // cap + at most one post-eviction add
    }

    #[test]
    fn invalid_config_is_rejected() {
        let (model, mut bound) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let bad_depth = BootstrapConfig {
            depth: 0,
            ..BootstrapConfig::default()
        };
        assert!(bootstrap(&model, &mut bound, &bad_depth, &mut rng).is_err());
        let bad_action = BootstrapConfig {
            conditioning_action: ActionId::new(99),
            ..BootstrapConfig::default()
        };
        assert!(bootstrap(&model, &mut bound, &bad_action, &mut rng).is_err());
    }

    #[test]
    fn zero_iterations_is_a_noop() {
        let (model, mut bound) = setup();
        let before = bound.len();
        let mut rng = StdRng::seed_from_u64(1);
        let config = BootstrapConfig {
            iterations: 0,
            conditioning_action: ActionId::new(2),
            ..BootstrapConfig::default()
        };
        let report = bootstrap(&model, &mut bound, &config, &mut rng).unwrap();
        assert!(report.records.is_empty());
        assert!(report.final_bound_at_uniform().is_none());
        assert_eq!(bound.len(), before);
    }

    #[test]
    fn stepwise_bootstrap_grows_at_most_one_vector_per_iteration() {
        let (model, mut bound) = setup();
        let mut rng = StdRng::seed_from_u64(21);
        let config = BootstrapConfig {
            iterations: 25,
            depth: 1,
            conditioning_action: ActionId::new(2),
            ..BootstrapConfig::default()
        };
        let start = bound.len();
        let report = bootstrap_updates(&model, &mut bound, &config, &mut rng).unwrap();
        let mut prev_vectors = start;
        let mut prev_bound = f64::NEG_INFINITY;
        for rec in &report.records {
            assert!(
                rec.n_vectors <= prev_vectors + 1,
                "iteration {} grew by more than one vector",
                rec.iteration
            );
            assert!(rec.bound_at_uniform + 1e-9 >= prev_bound);
            prev_vectors = rec.n_vectors;
            prev_bound = rec.bound_at_uniform;
        }
        // Improvement must actually happen on this model.
        assert!(
            report.records.last().unwrap().bound_at_uniform
                > report.records.first().unwrap().bound_at_uniform - 1e-9
        );
    }

    #[test]
    fn stepwise_average_variant_improves_at_uniform() {
        let (model, mut bound) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let before = {
            use bpr_pomdp::bounds::ValueBound;
            let n = model.pomdp().n_states();
            let mut p = vec![1.0 / (n - 1) as f64; n - 1];
            p.push(0.0);
            bound.value(&Belief::from_probs(p).unwrap())
        };
        let config = BootstrapConfig {
            variant: BootstrapVariant::Average,
            iterations: 30,
            depth: 1,
            conditioning_action: ActionId::new(2),
            ..BootstrapConfig::default()
        };
        let report = bootstrap_updates(&model, &mut bound, &config, &mut rng).unwrap();
        assert!(report.final_bound_at_uniform().unwrap() > before + 0.1);
    }

    #[test]
    fn builder_rejects_nonsense_and_accepts_sane_configs() {
        assert!(BootstrapConfig::builder().iterations(0).build().is_err());
        assert!(BootstrapConfig::builder().max_steps(0).build().is_err());
        assert!(BootstrapConfig::builder().depth(0).build().is_err());
        assert!(BootstrapConfig::builder().beta(f64::NAN).build().is_err());
        assert!(BootstrapConfig::builder().beta(0.0).build().is_err());
        assert!(BootstrapConfig::builder().beta(1.5).build().is_err());
        assert!(BootstrapConfig::builder()
            .gamma_cutoff(-1.0)
            .build()
            .is_err());
        assert!(BootstrapConfig::builder()
            .vector_cap(Some(0))
            .build()
            .is_err());
        let config = BootstrapConfig::builder()
            .variant(BootstrapVariant::Random)
            .iterations(7)
            .depth(1)
            .max_steps(20)
            .beta(0.99)
            .vector_cap(Some(8))
            .conditioning_action(ActionId::new(2))
            .gamma_cutoff(1e-5)
            .build()
            .unwrap();
        assert_eq!(config.iterations, 7);
        assert_eq!(config.variant, BootstrapVariant::Random);
        // The runtime check stays lenient on zero iterations (no-op runs
        // are legal) but still rejects numeric nonsense.
        assert!(BootstrapConfig {
            iterations: 0,
            ..BootstrapConfig::default()
        }
        .validate()
        .is_ok());
        assert!(BootstrapConfig {
            beta: f64::NAN,
            ..BootstrapConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn parallel_bootstrap_is_thread_count_invariant() {
        let config = BootstrapConfig {
            variant: BootstrapVariant::Random,
            iterations: 12,
            depth: 1,
            max_steps: 15,
            conditioning_action: ActionId::new(2),
            ..BootstrapConfig::default()
        };
        let run = |threads: usize| {
            let (model, mut bound) = setup();
            let pool = WorkPool::new(threads).unwrap();
            let report = bootstrap_par(&model, &mut bound, &config, 4, 77, &pool).unwrap();
            (report, bound.to_tsv())
        };
        let (serial_report, serial_bound) = run(1);
        let (wide_report, wide_bound) = run(4);
        assert_eq!(serial_report, wide_report);
        assert_eq!(serial_bound, wide_bound);
        assert_eq!(serial_report.records.len(), 12);
        assert!(serial_report.total_backups >= 12);
    }

    #[test]
    fn parallel_bootstrap_improves_monotonically() {
        let (model, mut bound) = setup();
        let config = BootstrapConfig {
            iterations: 10,
            depth: 1,
            conditioning_action: ActionId::new(2),
            ..BootstrapConfig::default()
        };
        let report = bootstrap_par(&model, &mut bound, &config, 3, 5, &WorkPool::serial()).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for rec in &report.records {
            assert!(
                rec.bound_at_uniform + 1e-9 >= prev,
                "regressed at {}",
                rec.iteration
            );
            prev = rec.bound_at_uniform;
        }
        assert!(report.final_bound_at_uniform().unwrap() <= 1e-9);
        // Zero batch is rejected.
        assert!(bootstrap_par(&model, &mut bound, &config, 0, 5, &WorkPool::serial()).is_err());
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("bpr_bootstrap_{}_{name}", std::process::id()))
    }

    fn durable_config() -> BootstrapConfig {
        BootstrapConfig {
            variant: BootstrapVariant::Random,
            iterations: 12,
            depth: 1,
            max_steps: 15,
            conditioning_action: ActionId::new(2),
            ..BootstrapConfig::default()
        }
    }

    #[test]
    fn durable_bootstrap_matches_plain_parallel_run() {
        let config = durable_config();
        let path = scratch("fresh");
        let _ = std::fs::remove_file(&path);
        let (model, mut plain_bound) = setup();
        let plain = bootstrap_par(
            &model,
            &mut plain_bound,
            &config,
            4,
            77,
            &WorkPool::serial(),
        )
        .unwrap();
        let (model, mut durable_bound) = setup();
        let durable = bootstrap_par_durable(
            &model,
            &mut durable_bound,
            &config,
            4,
            77,
            &WorkPool::serial(),
            &CheckpointPolicy::new(&path, 1),
        )
        .unwrap();
        assert_eq!(durable.report, plain);
        assert_eq!(durable.resumed_from, None);
        assert_eq!(durable.snapshot_error, None);
        assert_eq!(durable.checkpoints_written, 3); // 12 episodes / batch 4
        assert_eq!(durable_bound.to_tsv(), plain_bound.to_tsv());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn killed_bootstrap_resumes_bit_identically() {
        let config = durable_config();
        let path = scratch("resume");
        let _ = std::fs::remove_file(&path);
        let (model, mut reference_bound) = setup();
        let reference = bootstrap_par(
            &model,
            &mut reference_bound,
            &config,
            4,
            77,
            &WorkPool::serial(),
        )
        .unwrap();
        // "Kill" after 8 of the 12 episodes by running a shorter target.
        let killed_at = BootstrapConfig {
            iterations: 8,
            ..config.clone()
        };
        let (model, mut bound) = setup();
        let policy = CheckpointPolicy::new(&path, 1);
        bootstrap_par_durable(
            &model,
            &mut bound,
            &killed_at,
            4,
            77,
            &WorkPool::serial(),
            &policy,
        )
        .unwrap();
        // Resume toward the full target from a *fresh* seed bound.
        let (model, mut bound) = setup();
        let resumed = bootstrap_par_durable(
            &model,
            &mut bound,
            &config,
            4,
            77,
            &WorkPool::serial(),
            &policy,
        )
        .unwrap();
        assert_eq!(resumed.resumed_from, Some(8));
        assert_eq!(resumed.snapshot_error, None);
        assert_eq!(resumed.report, reference);
        assert_eq!(bound.to_tsv(), reference_bound.to_tsv());
        assert_eq!(bound.usage_counts(), reference_bound.usage_counts());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_snapshot_falls_back_to_seed_bound() {
        let config = durable_config();
        let path = scratch("corrupt");
        let _ = std::fs::remove_file(&path);
        let policy = CheckpointPolicy::new(&path, 1);
        let (model, mut bound) = setup();
        bootstrap_par_durable(
            &model,
            &mut bound,
            &config,
            4,
            77,
            &WorkPool::serial(),
            &policy,
        )
        .unwrap();
        // Flip one payload bit.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (model, mut bound) = setup();
        let recovered = bootstrap_par_durable(
            &model,
            &mut bound,
            &config,
            4,
            77,
            &WorkPool::serial(),
            &policy,
        )
        .unwrap();
        assert!(matches!(
            recovered.snapshot_error,
            Some(SnapshotError::ChecksumMismatch { .. })
        ));
        assert_eq!(recovered.resumed_from, None);
        // The fallback run is a full fresh run from the seed bound.
        let (model, mut plain_bound) = setup();
        let plain = bootstrap_par(
            &model,
            &mut plain_bound,
            &config,
            4,
            77,
            &WorkPool::serial(),
        )
        .unwrap();
        assert_eq!(recovered.report, plain);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_session_snapshot_is_rejected_as_incompatible() {
        let config = durable_config();
        let path = scratch("foreign");
        let _ = std::fs::remove_file(&path);
        let policy = CheckpointPolicy::new(&path, 1);
        let (model, mut bound) = setup();
        bootstrap_par_durable(
            &model,
            &mut bound,
            &config,
            4,
            99, // different master seed
            &WorkPool::serial(),
            &policy,
        )
        .unwrap();
        let (model, mut bound) = setup();
        let recovered = bootstrap_par_durable(
            &model,
            &mut bound,
            &config,
            4,
            77,
            &WorkPool::serial(),
            &policy,
        )
        .unwrap();
        assert!(matches!(
            recovered.snapshot_error,
            Some(SnapshotError::Incompatible { .. })
        ));
        assert_eq!(recovered.resumed_from, None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bootstrap_is_reproducible_with_seed() {
        let config = BootstrapConfig {
            iterations: 8,
            depth: 1,
            conditioning_action: ActionId::new(2),
            ..BootstrapConfig::default()
        };
        let run = |seed: u64| {
            let (model, mut bound) = setup();
            let mut rng = StdRng::seed_from_u64(seed);
            bootstrap(&model, &mut bound, &config, &mut rng).unwrap()
        };
        assert_eq!(run(42), run(42));
    }
}
