//! The bootstrapping phase of the recovery controller (paper §4.1):
//! off-line iterative improvement of the lower bound by simulating
//! monitor outputs and backing up at the visited belief states.

use crate::{Error, TerminatedModel};
use bpr_mdp::ActionId;
use bpr_pomdp::backup::incremental_backup;
use bpr_pomdp::bounds::{ValueBound, VectorSetBound};
use bpr_pomdp::{tree, Belief};
use rand::Rng;

/// How bootstrap episodes choose their initial belief (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootstrapVariant {
    /// "Random": a fault is drawn uniformly, an observation is sampled
    /// from the monitors, and the episode starts from the belief
    /// conditioned on that observation.
    Random,
    /// "Average": the episode starts from the belief in which all
    /// faults are equally likely.
    Average,
}

/// Configuration of the bootstrap procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapConfig {
    /// Initial-belief scheme.
    pub variant: BootstrapVariant,
    /// Number of simulated recovery episodes.
    pub iterations: usize,
    /// Tree depth used for action selection inside the episodes.
    pub depth: usize,
    /// Safety cap on steps per episode.
    pub max_steps: usize,
    /// Discount factor (1.0 for the recovery criterion).
    pub beta: f64,
    /// Optional cap on stored bound vectors (least-used eviction).
    pub vector_cap: Option<usize>,
    /// The action used to condition the initial belief in the
    /// [`BootstrapVariant::Random`] scheme — typically the monitor
    /// (observe) action of the model.
    pub conditioning_action: ActionId,
    /// Observation branches with probability at or below this are
    /// pruned during the in-episode tree expansions.
    pub gamma_cutoff: f64,
}

impl Default for BootstrapConfig {
    fn default() -> BootstrapConfig {
        BootstrapConfig {
            variant: BootstrapVariant::Average,
            iterations: 10,
            depth: 2,
            max_steps: 50,
            beta: 1.0,
            vector_cap: None,
            conditioning_action: ActionId::new(0),
            gamma_cutoff: 1e-4,
        }
    }
}

/// Per-iteration progress of the bound (the series plotted in the
/// paper's Figure 5).
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Lower-bound value at the uniform belief `{1/|S|}` (negative; its
    /// negation is the paper's "upper bound on cost").
    pub bound_at_uniform: f64,
    /// Number of hyperplanes in the bound set after the iteration.
    pub n_vectors: usize,
}

/// The result of a bootstrap run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BootstrapReport {
    /// One record per iteration, in order.
    pub records: Vec<IterationRecord>,
}

impl BootstrapReport {
    /// The bound value at the uniform belief after the final iteration.
    pub fn final_bound_at_uniform(&self) -> Option<f64> {
        self.records.last().map(|r| r.bound_at_uniform)
    }
}

/// Runs the bootstrap procedure, improving `bound` in place.
///
/// Each iteration simulates one recovery episode against ground truth
/// sampled from the model itself: a fault is drawn uniformly from the
/// fault states, the controller logic (tree expansion over the current
/// bound) picks actions, monitors are simulated through `q`, and an
/// incremental backup is performed at every belief the episode visits.
///
/// # Errors
///
/// * [`Error::InvalidInput`] for a zero depth, zero iterations being
///   fine (no-op) but an out-of-range conditioning action failing.
/// * Propagates backup/expansion failures.
pub fn bootstrap<R: Rng + ?Sized>(
    model: &TerminatedModel,
    bound: &mut VectorSetBound,
    config: &BootstrapConfig,
    rng: &mut R,
) -> Result<BootstrapReport, Error> {
    if config.depth == 0 {
        return Err(Error::InvalidInput {
            detail: "bootstrap tree depth must be at least 1".into(),
        });
    }
    if config.conditioning_action.index() >= model.pomdp().n_actions() {
        return Err(Error::InvalidInput {
            detail: "conditioning action out of bounds".into(),
        });
    }
    let pomdp = model.pomdp();
    let faults = model.fault_states();
    if faults.is_empty() {
        return Err(Error::InvalidInput {
            detail: "model has no fault states to bootstrap on".into(),
        });
    }
    // The evaluation belief of Fig. 5: uniform over the base states.
    let uniform_eval = {
        let n_base = pomdp.n_states() - 1;
        let mut probs = vec![1.0 / n_base as f64; n_base];
        probs.push(0.0);
        Belief::from_probs(probs).map_err(Error::Pomdp)?
    };

    let mut report = BootstrapReport::default();
    for iteration in 1..=config.iterations {
        // Ground truth for monitor simulation.
        let mut world = faults[rng.gen_range(0..faults.len())];
        let fault_belief = Belief::uniform_over(pomdp.n_states(), &faults);
        let mut belief = match config.variant {
            BootstrapVariant::Average => fault_belief,
            BootstrapVariant::Random => {
                let a = config.conditioning_action;
                // Monitors observe the (unchanged) faulty state.
                let o = pomdp.sample_observation(rng, world, a);
                match fault_belief.update(pomdp, a, o) {
                    Ok((b, _)) => b,
                    // An observation inconsistent with the prior support
                    // cannot happen here, but fall back defensively.
                    Err(_) => Belief::uniform_over(pomdp.n_states(), &faults),
                }
            }
        };

        for _step in 0..config.max_steps {
            incremental_backup(pomdp, bound, &belief, config.beta).map_err(Error::Pomdp)?;
            if let Some(cap) = config.vector_cap {
                bound.evict_to(cap);
            }
            let decision = tree::expand_with_cutoff(
                pomdp,
                &belief,
                config.depth,
                &*bound,
                config.beta,
                config.gamma_cutoff,
            )
            .map_err(Error::Pomdp)?;
            if decision.action == model.terminate_action() {
                break;
            }
            let next = pomdp.sample_transition(rng, world, decision.action);
            let o = pomdp.sample_observation(rng, next, decision.action);
            world = next;
            match belief.update(pomdp, decision.action, o) {
                Ok((b, _)) => belief = b,
                // Zero-probability observation under the belief: restart
                // from the uninformed fault prior rather than crash.
                Err(_) => belief = Belief::uniform_over(pomdp.n_states(), &faults),
            }
        }
        report.records.push(IterationRecord {
            iteration,
            bound_at_uniform: bound.value(&uniform_eval),
            n_vectors: bound.len(),
        });
    }
    Ok(report)
}

/// Runs the bootstrap procedure with the paper's per-update counting:
/// each iteration performs exactly **one** incremental backup (so the
/// bound set grows by at most one vector per iteration, the invariant
/// behind Figure 5(b)), with the belief trajectory simulated across
/// iterations — controller-chosen actions generate the next beliefs,
/// and a fresh episode starts whenever the previous one terminates.
///
/// [`bootstrap`] (one full episode per iteration) is the heavier
/// variant used to pre-train controllers; this one reproduces the
/// paper's Figure 5 semantics.
///
/// # Errors
///
/// Same conditions as [`bootstrap`].
pub fn bootstrap_updates<R: Rng + ?Sized>(
    model: &TerminatedModel,
    bound: &mut VectorSetBound,
    config: &BootstrapConfig,
    rng: &mut R,
) -> Result<BootstrapReport, Error> {
    if config.depth == 0 {
        return Err(Error::InvalidInput {
            detail: "bootstrap tree depth must be at least 1".into(),
        });
    }
    if config.conditioning_action.index() >= model.pomdp().n_actions() {
        return Err(Error::InvalidInput {
            detail: "conditioning action out of bounds".into(),
        });
    }
    let pomdp = model.pomdp();
    let faults = model.fault_states();
    if faults.is_empty() {
        return Err(Error::InvalidInput {
            detail: "model has no fault states to bootstrap on".into(),
        });
    }
    let uniform_eval = {
        let n_base = pomdp.n_states() - 1;
        let mut probs = vec![1.0 / n_base as f64; n_base];
        probs.push(0.0);
        Belief::from_probs(probs).map_err(Error::Pomdp)?
    };

    // Each iteration invokes the controller once and performs one
    // incremental update there. Average always re-invokes at the fixed
    // all-faults-equally-likely belief (repeated backups compound
    // there); Random re-samples a fault and a monitor output and
    // conditions the fault prior on it (Eq. 4), staying in the
    // high-uncertainty region where the controller will actually start.
    let fault_belief = Belief::uniform_over(pomdp.n_states(), &faults);
    let mut report = BootstrapReport::default();
    for iteration in 1..=config.iterations {
        let belief = match config.variant {
            BootstrapVariant::Average => fault_belief.clone(),
            BootstrapVariant::Random => {
                let world = faults[rng.gen_range(0..faults.len())];
                let a = config.conditioning_action;
                let o = pomdp.sample_observation(rng, world, a);
                fault_belief
                    .update(pomdp, a, o)
                    .map(|(b, _)| b)
                    .unwrap_or_else(|_| fault_belief.clone())
            }
        };
        incremental_backup(pomdp, bound, &belief, config.beta).map_err(Error::Pomdp)?;
        if let Some(cap) = config.vector_cap {
            bound.evict_to(cap);
        }
        report.records.push(IterationRecord {
            iteration,
            bound_at_uniform: bound.value(&uniform_eval),
            n_vectors: bound.len(),
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::two_server_model;
    use bpr_mdp::chain::SolveOpts;
    use bpr_pomdp::bounds::ra_bound;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (TerminatedModel, VectorSetBound) {
        let model = two_server_model().without_notification(10.0).unwrap();
        let bound = ra_bound(model.pomdp(), &SolveOpts::default()).unwrap();
        (model, bound)
    }

    #[test]
    fn bootstrap_improves_bound_monotonically() {
        let (model, mut bound) = setup();
        let mut rng = StdRng::seed_from_u64(11);
        let config = BootstrapConfig {
            iterations: 15,
            depth: 1,
            conditioning_action: ActionId::new(2),
            ..BootstrapConfig::default()
        };
        let report = bootstrap(&model, &mut bound, &config, &mut rng).unwrap();
        assert_eq!(report.records.len(), 15);
        let mut prev = f64::NEG_INFINITY;
        for rec in &report.records {
            assert!(
                rec.bound_at_uniform + 1e-9 >= prev,
                "bound regressed at iteration {}: {} -> {}",
                rec.iteration,
                prev,
                rec.bound_at_uniform
            );
            prev = rec.bound_at_uniform;
        }
        // The bound must have moved at all.
        let first = report.records.first().unwrap().bound_at_uniform;
        let last = report.final_bound_at_uniform().unwrap();
        assert!(last >= first);
        assert!(last <= 1e-9, "bound crossed the trivial upper bound 0");
    }

    #[test]
    fn both_variants_run_and_grow_vectors() {
        for variant in [BootstrapVariant::Random, BootstrapVariant::Average] {
            let (model, mut bound) = setup();
            let mut rng = StdRng::seed_from_u64(5);
            let config = BootstrapConfig {
                variant,
                iterations: 5,
                depth: 1,
                conditioning_action: ActionId::new(2),
                ..BootstrapConfig::default()
            };
            let report = bootstrap(&model, &mut bound, &config, &mut rng).unwrap();
            let last = report.records.last().unwrap();
            assert!(last.n_vectors >= 1, "variant {variant:?}");
            assert!(bound.len() == last.n_vectors);
        }
    }

    #[test]
    fn vector_cap_is_respected() {
        let (model, mut bound) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let config = BootstrapConfig {
            iterations: 10,
            depth: 1,
            vector_cap: Some(2),
            conditioning_action: ActionId::new(2),
            ..BootstrapConfig::default()
        };
        bootstrap(&model, &mut bound, &config, &mut rng).unwrap();
        assert!(bound.len() <= 3); // cap + at most one post-eviction add
    }

    #[test]
    fn invalid_config_is_rejected() {
        let (model, mut bound) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let bad_depth = BootstrapConfig {
            depth: 0,
            ..BootstrapConfig::default()
        };
        assert!(bootstrap(&model, &mut bound, &bad_depth, &mut rng).is_err());
        let bad_action = BootstrapConfig {
            conditioning_action: ActionId::new(99),
            ..BootstrapConfig::default()
        };
        assert!(bootstrap(&model, &mut bound, &bad_action, &mut rng).is_err());
    }

    #[test]
    fn zero_iterations_is_a_noop() {
        let (model, mut bound) = setup();
        let before = bound.len();
        let mut rng = StdRng::seed_from_u64(1);
        let config = BootstrapConfig {
            iterations: 0,
            conditioning_action: ActionId::new(2),
            ..BootstrapConfig::default()
        };
        let report = bootstrap(&model, &mut bound, &config, &mut rng).unwrap();
        assert!(report.records.is_empty());
        assert!(report.final_bound_at_uniform().is_none());
        assert_eq!(bound.len(), before);
    }

    #[test]
    fn stepwise_bootstrap_grows_at_most_one_vector_per_iteration() {
        let (model, mut bound) = setup();
        let mut rng = StdRng::seed_from_u64(21);
        let config = BootstrapConfig {
            iterations: 25,
            depth: 1,
            conditioning_action: ActionId::new(2),
            ..BootstrapConfig::default()
        };
        let start = bound.len();
        let report = bootstrap_updates(&model, &mut bound, &config, &mut rng).unwrap();
        let mut prev_vectors = start;
        let mut prev_bound = f64::NEG_INFINITY;
        for rec in &report.records {
            assert!(
                rec.n_vectors <= prev_vectors + 1,
                "iteration {} grew by more than one vector",
                rec.iteration
            );
            assert!(rec.bound_at_uniform + 1e-9 >= prev_bound);
            prev_vectors = rec.n_vectors;
            prev_bound = rec.bound_at_uniform;
        }
        // Improvement must actually happen on this model.
        assert!(
            report.records.last().unwrap().bound_at_uniform
                > report.records.first().unwrap().bound_at_uniform - 1e-9
        );
    }

    #[test]
    fn stepwise_average_variant_improves_at_uniform() {
        let (model, mut bound) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let before = {
            use bpr_pomdp::bounds::ValueBound;
            let n = model.pomdp().n_states();
            let mut p = vec![1.0 / (n - 1) as f64; n - 1];
            p.push(0.0);
            bound.value(&Belief::from_probs(p).unwrap())
        };
        let config = BootstrapConfig {
            variant: BootstrapVariant::Average,
            iterations: 30,
            depth: 1,
            conditioning_action: ActionId::new(2),
            ..BootstrapConfig::default()
        };
        let report = bootstrap_updates(&model, &mut bound, &config, &mut rng).unwrap();
        assert!(report.final_bound_at_uniform().unwrap() > before + 0.1);
    }

    #[test]
    fn bootstrap_is_reproducible_with_seed() {
        let config = BootstrapConfig {
            iterations: 8,
            depth: 1,
            conditioning_action: ActionId::new(2),
            ..BootstrapConfig::default()
        };
        let run = |seed: u64| {
            let (model, mut bound) = setup();
            let mut rng = StdRng::seed_from_u64(seed);
            bootstrap(&model, &mut bound, &config, &mut rng).unwrap()
        };
        assert_eq!(run(42), run(42));
    }
}
