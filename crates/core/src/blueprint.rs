//! Reusable model-compilation primitives.
//!
//! Every concrete recovery model in this workspace — the paper's EMN
//! testbed, the two-server example, and the generated `bpr-topo`
//! scenario corpus — is assembled the same way: enumerate states,
//! actions, and observations; fill the transition/reward/duration
//! tables; attach a state-conditioned observation model; and hand the
//! result to [`RecoveryModel::new`] for Condition 1/2 validation. A
//! [`ModelBlueprint`] captures exactly that recipe as a trait, and
//! [`assemble`] drives the `Mdp`/`Pomdp` builders in one canonical
//! order so every producer compiles identically (and deterministically:
//! the same blueprint always yields a bit-identical model).
//!
//! The blueprint deliberately covers the *state-conditioned* observation
//! case — `q(o | entered-state)` independent of the action taken — which
//! is the paper's monitor semantics (§5) and what every model in this
//! repository uses. Models needing action-dependent observations can
//! still drive [`bpr_pomdp::PomdpBuilder`] directly.

use crate::{Error, RecoveryModel};
use bpr_mdp::MdpBuilder;
use bpr_pomdp::PomdpBuilder;

/// A declarative description of a recovery model, compiled by
/// [`assemble`].
///
/// Indices are plain `usize` row/column numbers; `assemble` converts
/// them to the typed ids. Implementations must be pure functions of
/// `self` — `assemble` may call any method any number of times.
pub trait ModelBlueprint {
    /// Number of states, including the null-fault states.
    fn n_states(&self) -> usize;
    /// Number of actions, including observe-only actions.
    fn n_actions(&self) -> usize;
    /// Number of observation symbols.
    fn n_observations(&self) -> usize;

    /// Human-readable label for state `s`.
    fn state_label(&self, s: usize) -> String;
    /// Human-readable label for action `a`.
    fn action_label(&self, a: usize) -> String;
    /// Human-readable label for observation `o`.
    fn observation_label(&self, o: usize) -> String;

    /// Wall-clock duration of action `a` (must be positive and finite).
    fn action_duration(&self, a: usize) -> f64;

    /// Pushes the successor distribution of `(s, a)` as `(state, prob)`
    /// pairs into `out` (cleared by the caller). Probabilities must sum
    /// to 1.
    fn transitions(&self, s: usize, a: usize, out: &mut Vec<(usize, f64)>);

    /// Reward of taking `a` in `s` (a cost: must be `<= 0`).
    fn reward(&self, s: usize, a: usize) -> f64;

    /// Pushes the observation distribution on *entering* state
    /// `entered` as `(observation, prob)` pairs into `out` (cleared by
    /// the caller). Probabilities must sum to 1; zero entries may be
    /// omitted.
    fn observation_row(&self, entered: usize, out: &mut Vec<(usize, f64)>);

    /// The null-fault states `S_φ` (non-empty).
    fn null_states(&self) -> Vec<usize>;

    /// Idle cost rate of state `s` (`<= 0`, and `0` on null states).
    fn idle_rate(&self, s: usize) -> f64;

    /// Actions that only gather information (used by the §3.1
    /// transforms and the termination analysis).
    fn observe_actions(&self) -> Vec<usize>;
}

/// Compiles a [`ModelBlueprint`] into a validated [`RecoveryModel`].
///
/// The build order is fixed — labels and durations, then the
/// transition/reward tables in row-major `(state, action)` order, then
/// the observation rows in state order — so two blueprints describing
/// the same model produce bit-identical [`RecoveryModel`]s.
///
/// # Errors
///
/// * [`Error::Mdp`] / [`Error::Pomdp`] if the described matrices are
///   not stochastic.
/// * Condition 1/2 and rate validation failures from
///   [`RecoveryModel::new`].
pub fn assemble<B: ModelBlueprint + ?Sized>(blueprint: &B) -> Result<RecoveryModel, Error> {
    let (n_states, n_actions) = (blueprint.n_states(), blueprint.n_actions());

    let mut mb = MdpBuilder::new(n_states, n_actions);
    for s in 0..n_states {
        mb.state_label(s, blueprint.state_label(s));
    }
    for a in 0..n_actions {
        mb.action_label(a, blueprint.action_label(a));
        mb.duration(a, blueprint.action_duration(a));
    }
    let mut row = Vec::new();
    for s in 0..n_states {
        for a in 0..n_actions {
            row.clear();
            blueprint.transitions(s, a, &mut row);
            for &(next, p) in &row {
                mb.transition(s, a, next, p);
            }
            mb.reward(s, a, blueprint.reward(s, a));
        }
    }

    let n_observations = blueprint.n_observations();
    let mut pb = PomdpBuilder::new(mb.build().map_err(Error::Mdp)?, n_observations);
    for o in 0..n_observations {
        pb.observation_label(o, blueprint.observation_label(o));
    }
    let mut obs = Vec::new();
    for s in 0..n_states {
        obs.clear();
        blueprint.observation_row(s, &mut obs);
        for &(o, q) in &obs {
            pb.observation_all_actions(s, o, q);
        }
    }
    let pomdp = pb.build().map_err(Error::Pomdp)?;

    let rates = (0..n_states).map(|s| blueprint.idle_rate(s)).collect();
    RecoveryModel::new(
        pomdp,
        blueprint
            .null_states()
            .into_iter()
            .map(Into::into)
            .collect(),
        rates,
        blueprint
            .observe_actions()
            .into_iter()
            .map(Into::into)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's two-server shape, described as a blueprint: Null
    /// plus one fault per server, per-server restarts, one noisy alarm
    /// monitor.
    struct TwoServerish;

    impl ModelBlueprint for TwoServerish {
        fn n_states(&self) -> usize {
            3
        }
        fn n_actions(&self) -> usize {
            3
        }
        fn n_observations(&self) -> usize {
            2
        }
        fn state_label(&self, s: usize) -> String {
            ["Null", "FaultA", "FaultB"][s].to_string()
        }
        fn action_label(&self, a: usize) -> String {
            ["RestartA", "RestartB", "Observe"][a].to_string()
        }
        fn observation_label(&self, o: usize) -> String {
            ["clear", "alarm"][o].to_string()
        }
        fn action_duration(&self, a: usize) -> f64 {
            [30.0, 30.0, 1.0][a]
        }
        fn transitions(&self, s: usize, a: usize, out: &mut Vec<(usize, f64)>) {
            let next = match (s, a) {
                (1, 0) | (2, 1) => 0,
                _ => s,
            };
            out.push((next, 1.0));
        }
        fn reward(&self, s: usize, a: usize) -> f64 {
            let drop = if s == 0 { 0.0 } else { 0.5 };
            let offline = if a == 2 { 0.0 } else { 0.5 };
            -(drop + offline - drop * offline) * self.action_duration(a)
        }
        fn observation_row(&self, entered: usize, out: &mut Vec<(usize, f64)>) {
            let alarm = if entered == 0 { 0.05 } else { 0.9 };
            out.push((0, 1.0 - alarm));
            out.push((1, alarm));
        }
        fn null_states(&self) -> Vec<usize> {
            vec![0]
        }
        fn idle_rate(&self, s: usize) -> f64 {
            if s == 0 {
                0.0
            } else {
                -0.5
            }
        }
        fn observe_actions(&self) -> Vec<usize> {
            vec![2]
        }
    }

    #[test]
    fn assemble_produces_a_validated_model() {
        let m = assemble(&TwoServerish).unwrap();
        assert_eq!(m.base().n_states(), 3);
        assert_eq!(m.base().n_actions(), 3);
        assert_eq!(m.base().n_observations(), 2);
        assert_eq!(m.base().mdp().state_label(1), "FaultA");
        assert_eq!(m.base().mdp().duration(0), 30.0);
        assert_eq!(m.fault_states().len(), 2);
        assert!((m.base().mdp().reward(1, 2) + 0.5).abs() < 1e-12);
    }

    #[test]
    fn assemble_is_deterministic() {
        let a = assemble(&TwoServerish).unwrap();
        let b = assemble(&TwoServerish).unwrap();
        assert_eq!(a, b);
    }

    /// A blueprint whose reward violates Condition 2 must be rejected
    /// by the validated constructor, not silently compiled.
    struct PositiveReward;

    impl ModelBlueprint for PositiveReward {
        fn n_states(&self) -> usize {
            2
        }
        fn n_actions(&self) -> usize {
            1
        }
        fn n_observations(&self) -> usize {
            1
        }
        fn state_label(&self, s: usize) -> String {
            format!("s{s}")
        }
        fn action_label(&self, _: usize) -> String {
            "fix".to_string()
        }
        fn observation_label(&self, _: usize) -> String {
            "o".to_string()
        }
        fn action_duration(&self, _: usize) -> f64 {
            1.0
        }
        fn transitions(&self, _: usize, _: usize, out: &mut Vec<(usize, f64)>) {
            out.push((0, 1.0));
        }
        fn reward(&self, s: usize, _: usize) -> f64 {
            if s == 1 {
                1.0
            } else {
                0.0
            }
        }
        fn observation_row(&self, _: usize, out: &mut Vec<(usize, f64)>) {
            out.push((0, 1.0));
        }
        fn null_states(&self) -> Vec<usize> {
            vec![0]
        }
        fn idle_rate(&self, _: usize) -> f64 {
            0.0
        }
        fn observe_actions(&self) -> Vec<usize> {
            vec![]
        }
    }

    #[test]
    fn condition_violations_surface_as_errors() {
        assert!(assemble(&PositiveReward).is_err());
    }
}
