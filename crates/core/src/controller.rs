//! The common interface all recovery controllers implement.

use crate::Error;
use bpr_mdp::{ActionId, StateId};
use bpr_pomdp::{Belief, ObservationId};

/// What a controller wants to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Execute a recovery/monitoring action of the *base* model.
    Execute(ActionId),
    /// Stop the recovery process (the terminate action `a_T` was chosen,
    /// recovery notification arrived, or a baseline's termination
    /// probability threshold was met).
    Terminate,
}

/// Counters a hardened controller accumulates while compensating for
/// model/world mismatch (see `ResilientController`). Plain controllers
/// report `None` from [`RecoveryController::resilience_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilienceStats {
    /// Repeated-action retries granted before escalating.
    pub retries: usize,
    /// Escalation-ladder steps taken (inner → heuristic → reboot-all →
    /// terminate).
    pub escalations: usize,
    /// Belief re-initialisations triggered by the divergence watchdog
    /// or by inner-controller update failures.
    pub belief_resets: usize,
    /// Observations the model assigned zero likelihood (recovered via
    /// the epsilon-mixture update instead of aborting).
    pub impossible_observations: usize,
    /// Decisions served by the budgeted anytime rung of the escalation
    /// ladder (zero unless an anytime controller is configured).
    pub anytime_decisions: usize,
}

/// An online recovery controller, driven by a simulation harness or a
/// live system in the loop:
///
/// ```text
/// begin(π₀) → [ decide() → Execute(a) → observe(a, o) ]* → decide() → Terminate
/// ```
///
/// Controllers speak the *base* model's action and observation
/// vocabularies; internal model transforms (like the terminate action)
/// never leak through this interface.
pub trait RecoveryController {
    /// Human-readable controller name (used in experiment reports).
    fn name(&self) -> &str;

    /// Starts a recovery episode from an initial belief.
    ///
    /// `true_fault` carries ground truth for oracle-style controllers;
    /// honest controllers must ignore it.
    ///
    /// # Errors
    ///
    /// Implementations reject beliefs of the wrong dimension.
    fn begin(&mut self, initial: Belief, true_fault: Option<StateId>) -> Result<(), Error>;

    /// Chooses the next step given the current belief.
    ///
    /// # Errors
    ///
    /// * [`Error::NotStarted`] if called before [`RecoveryController::begin`].
    /// * [`Error::AlreadyTerminated`] if called after a
    ///   [`Step::Terminate`] was returned.
    fn decide(&mut self) -> Result<Step, Error>;

    /// Incorporates the observation produced by executing `action`.
    ///
    /// # Errors
    ///
    /// * [`Error::NotStarted`] if called before [`RecoveryController::begin`].
    /// * Propagates belief-update failures for impossible observations.
    fn observe(&mut self, action: ActionId, o: ObservationId) -> Result<(), Error>;

    /// The controller's current belief over the *base* state space, if
    /// it maintains one (the oracle does not).
    fn belief(&self) -> Option<Belief>;

    /// Notifies the controller that `action` was executed but **no
    /// observation arrived** (monitor dropout in a degraded world).
    ///
    /// The default keeps the belief untouched, mirroring what a
    /// controller built for the idealised model would do; hardened
    /// controllers override this with a predict-only belief update.
    ///
    /// # Errors
    ///
    /// Implementations may propagate the same failures as
    /// [`RecoveryController::observe`].
    fn on_unobserved(&mut self, action: ActionId) -> Result<(), Error> {
        let _ = action;
        Ok(())
    }

    /// Counters describing how much the controller had to compensate
    /// for a misbehaving world; `None` for controllers without a
    /// hardening layer. Harnesses fold these into episode outcomes.
    fn resilience_stats(&self) -> Option<ResilienceStats> {
        None
    }

    /// Whether the controller consumes monitor output. Harnesses skip
    /// monitor invocation (and its metric) when this is `false`.
    fn uses_monitors(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_is_copy_and_comparable() {
        let a = Step::Execute(ActionId::new(1));
        let b = a;
        assert_eq!(a, b);
        assert_ne!(a, Step::Terminate);
    }
}
