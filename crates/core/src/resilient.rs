//! A hardening decorator for recovery controllers (robustness
//! extension, beyond the paper).
//!
//! The paper's §5 evaluation assumes recovery actions succeed
//! deterministically and monitors always answer. A production recovery
//! runtime gets neither. [`ResilientController`] wraps any
//! [`RecoveryController`] and keeps recovery live when the executed
//! world deviates from the model:
//!
//! * **Robust belief tracking** — maintains its own belief with
//!   [`Belief::update_robust`], so zero-likelihood monitor outputs
//!   degrade to an epsilon-mixture update instead of aborting the
//!   episode, and monitor dropouts degrade to a predict-only update.
//! * **Retry with budget** — a run of identical actions whose belief
//!   makes no ratcheting progress (null mass, diagnosis confidence) is
//!   granted a bounded number of retries, then escalated.
//! * **Divergence watchdog** — each observation's likelihood under the
//!   current belief is compared against its likelihood under the
//!   uniform belief; a streak of wildly surprising observations means
//!   the belief has diverged from reality (e.g. a restart the model
//!   says always works silently failed), so the belief is re-seeded
//!   and the inner controller re-begun. Resets are budgeted too.
//! * **Escalation ladder** — inner controller → budgeted anytime
//!   planner (when configured via `with_anytime`) → model-driven
//!   heuristic (cheapest recovery action per likely fault, attempts
//!   capped) → reboot-everything → terminate, under a hard per-episode step and
//!   modeled wall-clock budget, so recovery always terminates even
//!   when the model is wrong (preserving Property 1's spirit).
//! * **Guarded termination** — an inner `Terminate` is only accepted
//!   after confirmation observations agree the system looks healthy;
//!   otherwise it is treated as a diagnosis failure and escalated.

use crate::controller::ResilienceStats;
use crate::{AnytimeController, Error, RecoveryController, RecoveryModel, Step};
use bpr_mdp::{ActionId, StateId};
use bpr_pomdp::{Belief, ObservationId, RobustUpdate};

/// Knobs of the hardening layer. Defaults are tuned for the EMN-scale
/// models of the paper; see EXPERIMENTS.md §"Robustness harness".
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Identical consecutive actions without ratcheting belief progress
    /// tolerated before escalating.
    pub max_action_repeats: usize,
    /// Minimum improvement of null mass or diagnosis confidence that
    /// counts as progress for the stall detector.
    pub progress_epsilon: f64,
    /// An observation is *surprising* when its likelihood under the
    /// current belief falls below this fraction of its likelihood under
    /// the uniform belief.
    pub surprise_ratio: f64,
    /// Consecutive surprising observations before the divergence
    /// watchdog re-seeds the belief.
    pub divergence_window: usize,
    /// Belief re-initialisations granted per episode before the
    /// watchdog escalates instead.
    pub max_belief_resets: usize,
    /// Belief mass on `S_φ` required before a termination is
    /// considered.
    pub null_mass_to_terminate: f64,
    /// Consecutive unsurprising confirmation observations required
    /// before accepting a termination.
    pub termination_confirmations: usize,
    /// Hard per-episode decision budget; the controller terminates
    /// unconditionally once exhausted.
    pub max_steps: usize,
    /// Hard per-episode modeled wall-clock budget in seconds (sum of
    /// executed action durations); infinite by default.
    pub max_wall_clock: f64,
    /// Mixture weight for [`Belief::update_robust`].
    pub epsilon: f64,
    /// Recovery attempts per fault at the heuristic escalation level.
    pub heuristic_attempts_per_fault: usize,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            max_action_repeats: 10,
            progress_epsilon: 0.01,
            surprise_ratio: 0.1,
            divergence_window: 3,
            max_belief_resets: 4,
            null_mass_to_terminate: 0.5,
            termination_confirmations: 3,
            max_steps: 300,
            max_wall_clock: f64::INFINITY,
            epsilon: 0.05,
            heuristic_attempts_per_fault: 2,
        }
    }
}

impl ResilienceConfig {
    fn validate(&self) -> Result<(), Error> {
        let prob_ok = |p: f64| p.is_finite() && (0.0..=1.0).contains(&p);
        let surprise_ok = self.surprise_ratio.is_finite() && self.surprise_ratio > 0.0;
        let epsilon_ok = self.epsilon > 0.0 && self.epsilon <= 1.0;
        if !prob_ok(self.null_mass_to_terminate)
            || !prob_ok(self.progress_epsilon)
            || !surprise_ok
            || !epsilon_ok
        {
            return Err(Error::InvalidInput {
                detail: "resilience thresholds out of range".into(),
            });
        }
        if self.max_steps == 0 || self.divergence_window == 0 {
            return Err(Error::InvalidInput {
                detail: "resilience budgets must be positive".into(),
            });
        }
        // NaN budgets must be rejected too, hence no `<=` shortcut.
        if self.max_wall_clock.is_nan() || self.max_wall_clock <= 0.0 {
            return Err(Error::InvalidInput {
                detail: "wall-clock budget must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Where on the escalation ladder the controller currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EscalationLevel {
    /// Delegating to the wrapped controller.
    Inner,
    /// Deadline-bounded planning on the [`AnytimeController`] rung
    /// (skipped when none is configured).
    Anytime,
    /// Model-driven heuristic: cheapest recovery action for the most
    /// likely faults, attempts capped.
    Heuristic,
    /// Execute every broad recovery action once (reboot everything).
    RebootAll,
    /// Give up: hand the system to the operator.
    Terminate,
}

/// The hardening decorator; see the module docs. Wrap any
/// [`RecoveryController`] (typically a [`crate::BoundedController`])
/// together with the base [`RecoveryModel`] the episode runs on:
///
/// ```text
/// let inner = BoundedController::new(model.without_notification(t_op)?, cfg)?;
/// let hardened = ResilientController::new(model, inner, ResilienceConfig::default())?;
/// ```
#[derive(Debug, Clone)]
pub struct ResilientController<C> {
    inner: C,
    model: RecoveryModel,
    config: ResilienceConfig,
    name: String,
    /// Broad-coverage recovery actions for the reboot-all level, widest
    /// coverage first; computed once at construction.
    reboot_ladder: Vec<ActionId>,
    /// Optional deadline-bounded planner: an extra ladder rung between
    /// the inner controller and the heuristic.
    anytime: Option<AnytimeController>,
    /// Whether the anytime rung has a live episode (begun and tracking
    /// observations); false forces a re-begin from the robust belief.
    anytime_live: bool,

    belief: Option<Belief>,
    level: EscalationLevel,
    stats: ResilienceStats,
    terminated: bool,
    steps: usize,
    wall: f64,

    last_action: Option<ActionId>,
    action_run: usize,
    run_best_null: f64,
    run_best_confidence: f64,

    surprise_streak: usize,
    calm_streak: usize,
    resets_used: usize,
    inner_poisoned: bool,
    confirming: bool,
    heuristic_attempts: Vec<usize>,
    reboot_cursor: usize,
}

impl<C: RecoveryController> ResilientController<C> {
    /// Wraps `inner`, hardening it against the failure modes listed in
    /// the module docs. `model` must be the *base* recovery model the
    /// episodes run on.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] for out-of-range configuration values.
    pub fn new(
        model: RecoveryModel,
        inner: C,
        config: ResilienceConfig,
    ) -> Result<ResilientController<C>, Error> {
        config.validate()?;
        let name = format!("resilient-{}", inner.name());
        // Coverage = number of faults an action deterministically
        // recovers; the reboot-all ladder walks them widest-first so a
        // handful of actions sweeps the whole fault space.
        let faults = model.fault_states();
        let mut coverage: Vec<(ActionId, usize)> = (0..model.base().n_actions())
            .map(ActionId::new)
            .map(|a| {
                let c = faults
                    .iter()
                    .filter(|&&f| model.recovery_actions_for(f).contains(&a))
                    .count();
                (a, c)
            })
            .filter(|&(_, c)| c > 0)
            .collect();
        coverage.sort_by_key(|&(a, c)| (std::cmp::Reverse(c), a.index()));
        let reboot_ladder = coverage.into_iter().map(|(a, _)| a).collect();
        let n_states = model.base().n_states();
        Ok(ResilientController {
            inner,
            model,
            config,
            name,
            reboot_ladder,
            anytime: None,
            anytime_live: false,
            belief: None,
            level: EscalationLevel::Inner,
            stats: ResilienceStats::default(),
            terminated: false,
            steps: 0,
            wall: 0.0,
            last_action: None,
            action_run: 0,
            run_best_null: 0.0,
            run_best_confidence: 0.0,
            surprise_streak: 0,
            calm_streak: 0,
            resets_used: 0,
            inner_poisoned: false,
            confirming: false,
            heuristic_attempts: vec![0; n_states],
            reboot_cursor: 0,
        })
    }

    /// Adds a deadline-bounded [`AnytimeController`] as an extra
    /// escalation rung between the inner controller and the heuristic:
    /// when the inner controller wedges or stalls, decisions keep
    /// coming from budgeted planning before the ladder falls back to
    /// model heuristics. The rung's budgeted passes run on the fused
    /// planning kernel against the controller's own reusable
    /// [`bpr_pomdp::PlanWorkspace`], so escalated decisions stay cheap
    /// even under tight deadlines.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] when the anytime controller's
    /// transformed model does not extend this controller's base model
    /// (base states + the terminate state).
    pub fn with_anytime(
        mut self,
        controller: AnytimeController,
    ) -> Result<ResilientController<C>, Error> {
        if controller.model().pomdp().n_states() != self.model.base().n_states() + 1 {
            return Err(Error::InvalidInput {
                detail: format!(
                    "anytime controller covers {} states, expected {} (base + terminate)",
                    controller.model().pomdp().n_states(),
                    self.model.base().n_states() + 1
                ),
            });
        }
        self.anytime = Some(controller);
        Ok(self)
    }

    /// The wrapped controller.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The anytime rung, when configured.
    pub fn anytime(&self) -> Option<&AnytimeController> {
        self.anytime.as_ref()
    }

    /// The ladder level reached when the inner controller fails: the
    /// anytime rung when one is configured, else the heuristic.
    fn post_inner_level(&self) -> EscalationLevel {
        if self.anytime.is_some() {
            EscalationLevel::Anytime
        } else {
            EscalationLevel::Heuristic
        }
    }

    /// The next rung below the current level (skipping the anytime rung
    /// when none is configured).
    fn next_level(&self) -> EscalationLevel {
        match self.level {
            EscalationLevel::Inner => self.post_inner_level(),
            EscalationLevel::Anytime => EscalationLevel::Heuristic,
            EscalationLevel::Heuristic => EscalationLevel::RebootAll,
            _ => EscalationLevel::Terminate,
        }
    }

    /// The current escalation level.
    pub fn level(&self) -> EscalationLevel {
        self.level
    }

    fn escalate(&mut self, to: EscalationLevel) {
        if to > self.level {
            self.level = to;
            self.stats.escalations += 1;
            self.confirming = false;
        }
    }

    fn null_mass(&self) -> f64 {
        self.belief
            .as_ref()
            .map_or(0.0, |b| b.prob_in(self.model.null_states()))
    }

    /// Re-seeds the robust belief with "anything is possible" and, at
    /// the inner level, re-begins the wrapped controller from it.
    fn reset_belief(&mut self) {
        let fresh = Belief::uniform(self.model.base().n_states());
        self.stats.belief_resets += 1;
        self.resets_used += 1;
        self.surprise_streak = 0;
        self.calm_streak = 0;
        self.confirming = false;
        self.reset_run_tracking();
        // A fresh belief invalidates any live anytime episode too; the
        // rung re-begins from the new belief at its next decision.
        self.anytime_live = false;
        if self.level == EscalationLevel::Inner
            && !self.inner_poisoned
            && self.inner.begin(fresh.clone(), None).is_err()
        {
            self.inner_poisoned = true;
            self.escalate(self.post_inner_level());
        }
        self.belief = Some(fresh);
    }

    fn reset_run_tracking(&mut self) {
        self.last_action = None;
        self.action_run = 0;
        self.run_best_null = 0.0;
        self.run_best_confidence = 0.0;
    }

    /// Stall bookkeeping: returns true when the action-repeat budget is
    /// exhausted without ratcheting belief progress.
    fn note_action(&mut self, action: ActionId) -> bool {
        let null = self.null_mass();
        let confidence = self.belief.as_ref().map_or(0.0, |b| b.most_likely().1);
        if self.last_action == Some(action) {
            let progressed = null > self.run_best_null + self.config.progress_epsilon
                || confidence > self.run_best_confidence + self.config.progress_epsilon;
            if progressed {
                self.action_run = 0;
            } else {
                self.action_run += 1;
                self.stats.retries += 1;
            }
        } else {
            self.last_action = Some(action);
            self.action_run = 0;
            self.run_best_null = 0.0;
            self.run_best_confidence = 0.0;
        }
        self.run_best_null = self.run_best_null.max(null);
        self.run_best_confidence = self.run_best_confidence.max(confidence);
        self.action_run >= self.config.max_action_repeats
    }

    /// True when the belief both claims health and the recent
    /// observation stream does not contradict it.
    fn termination_looks_safe(&self) -> bool {
        self.null_mass() >= self.config.null_mass_to_terminate && self.surprise_streak == 0
    }

    /// The observe action used for confirmation sweeps, if the model
    /// tags one.
    fn observe_action(&self) -> Option<ActionId> {
        self.model.observe_actions().first().copied()
    }

    fn terminate_now(&mut self) -> Result<Step, Error> {
        self.terminated = true;
        Ok(Step::Terminate)
    }

    /// Gate in front of every termination: demand
    /// `termination_confirmations` calm confirmation observations
    /// before giving the system back. Returns the step to take.
    fn guarded_terminate(&mut self) -> Result<Step, Error> {
        if !self.termination_looks_safe() {
            self.confirming = false;
            self.escalate(EscalationLevel::Heuristic);
            return self.decide_on_ladder();
        }
        let Some(observe) = self.observe_action() else {
            // No monitors to confirm with; take the claim at face value.
            return self.terminate_now();
        };
        if !self.confirming {
            self.confirming = true;
            self.calm_streak = 0;
        }
        if self.calm_streak >= self.config.termination_confirmations {
            return self.terminate_now();
        }
        Ok(Step::Execute(observe))
    }

    fn decide_heuristic(&mut self) -> Result<Step, Error> {
        let belief = self.belief.clone().ok_or(Error::NotStarted)?;
        // Most likely faults first; each gets a bounded number of shots
        // at its cheapest recovery action.
        let mut faults: Vec<StateId> = self
            .model
            .fault_states()
            .into_iter()
            .filter(|f| self.model.cheapest_recovery_action(*f).is_some())
            .collect();
        faults.sort_by(|a, b| {
            belief
                .prob(*b)
                .total_cmp(&belief.prob(*a))
                .then(a.index().cmp(&b.index()))
        });
        for f in faults {
            if self.heuristic_attempts[f.index()] < self.config.heuristic_attempts_per_fault {
                if let Some(action) = self.model.cheapest_recovery_action(f) {
                    self.heuristic_attempts[f.index()] += 1;
                    return Ok(Step::Execute(action));
                }
            }
        }
        self.escalate(EscalationLevel::RebootAll);
        self.decide_on_ladder()
    }

    fn decide_reboot_all(&mut self) -> Result<Step, Error> {
        if self.reboot_cursor < self.reboot_ladder.len() {
            let action = self.reboot_ladder[self.reboot_cursor];
            self.reboot_cursor += 1;
            return Ok(Step::Execute(action));
        }
        self.escalate(EscalationLevel::Terminate);
        self.decide_on_ladder()
    }

    /// Dispatches a decision at the current (post-inner) ladder level.
    fn decide_on_ladder(&mut self) -> Result<Step, Error> {
        // A healthy-looking belief short-circuits the ladder into the
        // guarded termination path.
        if self.level != EscalationLevel::Terminate && self.termination_looks_safe() {
            return self.guarded_terminate();
        }
        self.confirming = false;
        match self.level {
            EscalationLevel::Inner => unreachable!("inner decisions handled by decide()"),
            EscalationLevel::Anytime => self.decide_anytime(),
            EscalationLevel::Heuristic => self.decide_heuristic(),
            EscalationLevel::RebootAll => self.decide_reboot_all(),
            EscalationLevel::Terminate => self.terminate_now(),
        }
    }

    /// One decision from the anytime rung. A dead episode (fresh
    /// escalation, belief reset, refused observation) is re-begun from
    /// the current robust belief; any failure sends the ladder on to
    /// the heuristic.
    fn decide_anytime(&mut self) -> Result<Step, Error> {
        let belief = self.belief.clone().ok_or(Error::NotStarted)?;
        let needs_begin = !self.anytime_live;
        let result = match self.anytime.as_mut() {
            Some(anytime) => {
                if needs_begin {
                    anytime.begin(belief, None).and_then(|()| anytime.decide())
                } else {
                    anytime.decide()
                }
            }
            // Ladder invariant: the Anytime level is only reachable via
            // post_inner_level()/next_level(), which require the rung.
            // Degrade instead of panicking if it is somehow absent.
            None => Err(Error::NotStarted),
        };
        match result {
            Ok(Step::Terminate) => {
                self.anytime_live = false;
                self.guarded_terminate()
            }
            Ok(Step::Execute(action)) => {
                self.anytime_live = true;
                self.stats.anytime_decisions += 1;
                Ok(Step::Execute(action))
            }
            Err(_) => {
                self.anytime_live = false;
                self.escalate(EscalationLevel::Heuristic);
                self.decide_on_ladder()
            }
        }
    }
}

impl<C: RecoveryController> RecoveryController for ResilientController<C> {
    fn name(&self) -> &str {
        &self.name
    }

    fn begin(&mut self, initial: Belief, true_fault: Option<StateId>) -> Result<(), Error> {
        if initial.n_states() != self.model.base().n_states() {
            return Err(Error::InvalidInput {
                detail: format!(
                    "initial belief covers {} states, model has {}",
                    initial.n_states(),
                    self.model.base().n_states()
                ),
            });
        }
        self.inner.begin(initial.clone(), true_fault)?;
        self.belief = Some(initial);
        self.level = EscalationLevel::Inner;
        self.stats = ResilienceStats::default();
        self.terminated = false;
        self.steps = 0;
        self.wall = 0.0;
        self.surprise_streak = 0;
        self.calm_streak = 0;
        self.resets_used = 0;
        self.inner_poisoned = false;
        self.anytime_live = false;
        self.confirming = false;
        self.heuristic_attempts.fill(0);
        self.reboot_cursor = 0;
        self.reset_run_tracking();
        Ok(())
    }

    fn decide(&mut self) -> Result<Step, Error> {
        if self.terminated {
            return Err(Error::AlreadyTerminated);
        }
        if self.belief.is_none() {
            return Err(Error::NotStarted);
        }
        self.steps += 1;
        // Hard budgets trump everything: recovery must end.
        if self.steps > self.config.max_steps || self.wall > self.config.max_wall_clock {
            if self.level < EscalationLevel::Terminate {
                self.escalate(EscalationLevel::Terminate);
            }
            return self.terminate_now();
        }

        let step = if self.level == EscalationLevel::Inner && !self.inner_poisoned {
            match self.inner.decide() {
                Ok(Step::Terminate) => {
                    // Do not let the inner controller end the episode
                    // unchallenged: it has already decided recovery is
                    // over, so from here the guarded path owns the
                    // endgame (the inner controller cannot continue
                    // after a e.g. rejected termination anyway).
                    self.inner_poisoned = true;
                    self.guarded_terminate()
                }
                Ok(Step::Execute(action)) => Ok(Step::Execute(action)),
                Err(_) => {
                    // Inner controller wedged (belief update refused,
                    // internal invariant broken): fall down the ladder.
                    self.inner_poisoned = true;
                    self.escalate(self.post_inner_level());
                    self.decide_on_ladder()
                }
            }
        } else if self.level == EscalationLevel::Inner {
            // Inner poisoned but not yet escalated (e.g. failed
            // re-begin during reset).
            self.escalate(self.post_inner_level());
            self.decide_on_ladder()
        } else {
            self.decide_on_ladder()
        };

        match step {
            Ok(Step::Execute(action)) => {
                if self.note_action(action) {
                    // Retry budget exhausted: the same action keeps
                    // coming back without the belief going anywhere.
                    self.reset_run_tracking();
                    self.escalate(self.next_level());
                    self.decide_on_ladder()
                } else {
                    Ok(Step::Execute(action))
                }
            }
            other => other,
        }
    }

    fn observe(&mut self, action: ActionId, o: ObservationId) -> Result<(), Error> {
        let belief = self.belief.clone().ok_or(Error::NotStarted)?;
        self.wall += self.model.base().mdp().duration(action);

        // Surprise assessment: likelihood of the observation under the
        // current belief vs under total ignorance. A healthy belief
        // explains observations at least as well as the uniform one.
        let gamma_uniform = Belief::uniform(self.model.base().n_states())
            .observation_probs(self.model.base(), action)[o.index()];
        let (next, gamma, path) =
            belief.update_robust(self.model.base(), action, o, self.config.epsilon)?;
        if path == RobustUpdate::EpsilonMixed {
            self.stats.impossible_observations += 1;
        }
        let surprising = path == RobustUpdate::EpsilonMixed
            || gamma < self.config.surprise_ratio * gamma_uniform;
        if surprising {
            self.surprise_streak += 1;
            self.calm_streak = 0;
        } else {
            self.surprise_streak = 0;
            if self.confirming && self.model.is_observe(action) {
                self.calm_streak += 1;
            }
        }
        self.belief = Some(next);

        if self.surprise_streak >= self.config.divergence_window {
            if self.resets_used < self.config.max_belief_resets {
                self.reset_belief();
            } else {
                self.escalate(self.next_level());
                self.surprise_streak = 0;
            }
            return Ok(());
        }

        if self.level == EscalationLevel::Anytime && self.anytime_live {
            if let Some(anytime) = self.anytime.as_mut() {
                if anytime.observe(action, o).is_err() {
                    // The anytime belief refused the observation; the
                    // next decision re-begins from the robust belief.
                    self.anytime_live = false;
                }
            }
        }

        if self.level == EscalationLevel::Inner
            && !self.inner_poisoned
            && self.inner.observe(action, o).is_err()
        {
            // The inner belief refused the observation (impossible
            // under its model). Re-seed it from scratch if the budget
            // allows; otherwise walk down the ladder without it.
            self.stats.impossible_observations += 1;
            if self.resets_used < self.config.max_belief_resets {
                self.reset_belief();
            } else {
                self.inner_poisoned = true;
                self.escalate(EscalationLevel::Heuristic);
            }
        }
        Ok(())
    }

    fn on_unobserved(&mut self, action: ActionId) -> Result<(), Error> {
        let belief = self.belief.clone().ok_or(Error::NotStarted)?;
        self.wall += self.model.base().mdp().duration(action);
        // Predict-only update: the action happened, the monitors said
        // nothing. The inner controller has no such notion — its belief
        // simply goes stale, which the divergence watchdog will catch.
        let probs = belief.predict(self.model.base(), action);
        self.belief = Some(Belief::from_probs(probs)?);
        Ok(())
    }

    fn belief(&self) -> Option<Belief> {
        self.belief.clone()
    }

    fn resilience_stats(&self) -> Option<ResilienceStats> {
        Some(self.stats)
    }

    fn uses_monitors(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::MostLikelyController;
    use crate::model::tests::two_server_model;
    use crate::{BoundedConfig, BoundedController};

    fn hardened_bounded(config: ResilienceConfig) -> ResilientController<BoundedController> {
        let model = two_server_model();
        let inner = BoundedController::new(
            model.without_notification(50.0).unwrap(),
            BoundedConfig::default(),
        )
        .unwrap();
        ResilientController::new(model, inner, config).unwrap()
    }

    #[test]
    fn name_tags_the_inner_controller() {
        let c = hardened_bounded(ResilienceConfig::default());
        assert_eq!(c.name(), "resilient-bounded");
        let model = two_server_model();
        let ml = MostLikelyController::new(model.clone(), 0.95).unwrap();
        let c2 = ResilientController::new(model, ml, ResilienceConfig::default()).unwrap();
        assert_eq!(c2.name(), "resilient-most-likely");
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let model = two_server_model();
        let inner = MostLikelyController::new(model.clone(), 0.95).unwrap();
        for bad in [
            ResilienceConfig {
                max_steps: 0,
                ..ResilienceConfig::default()
            },
            ResilienceConfig {
                epsilon: 0.0,
                ..ResilienceConfig::default()
            },
            ResilienceConfig {
                null_mass_to_terminate: 1.5,
                ..ResilienceConfig::default()
            },
            ResilienceConfig {
                max_wall_clock: -1.0,
                ..ResilienceConfig::default()
            },
        ] {
            assert!(ResilientController::new(model.clone(), inner.clone(), bad).is_err());
        }
    }

    #[test]
    fn lifecycle_errors_match_the_contract() {
        let mut c = hardened_bounded(ResilienceConfig::default());
        assert!(matches!(c.decide(), Err(Error::NotStarted)));
        assert!(c.begin(Belief::uniform(7), None).is_err());
        c.begin(Belief::uniform(3), None).unwrap();
        assert!(c.belief().is_some());
        assert!(c.resilience_stats().is_some());
    }

    #[test]
    fn step_budget_forces_termination() {
        let mut c = hardened_bounded(ResilienceConfig {
            max_steps: 1,
            ..ResilienceConfig::default()
        });
        c.begin(Belief::uniform(3), None).unwrap();
        let _ = c.decide().unwrap();
        assert_eq!(c.decide().unwrap(), Step::Terminate);
        assert!(matches!(c.decide(), Err(Error::AlreadyTerminated)));
        assert!(c.resilience_stats().unwrap().escalations >= 1);
    }

    #[test]
    fn reboot_ladder_is_widest_coverage_first() {
        let c = hardened_bounded(ResilienceConfig::default());
        // Two-server model: both restarts recover exactly one fault
        // each; the ladder holds both, in index order.
        assert_eq!(c.reboot_ladder.len(), 2);
        assert_eq!(c.reboot_ladder[0].index(), 0);
        assert_eq!(c.reboot_ladder[1].index(), 1);
    }

    /// The scenario the decorator exists for: the true fault's restart
    /// silently fails, the inner belief collapses onto "recovered", and
    /// the hardened layer must notice via the observation stream,
    /// re-diagnose, and retry until the world really is fixed.
    #[test]
    fn silent_action_failure_is_survived() {
        let mut c = hardened_bounded(ResilienceConfig {
            termination_confirmations: 2,
            ..ResilienceConfig::default()
        });
        let _model = two_server_model();
        c.begin(
            Belief::uniform_over(3, &[StateId::new(0), StateId::new(1)]),
            None,
        )
        .unwrap();
        // World: fault is state 0; the FIRST matching restart fails
        // silently, later ones work.
        let mut world = 0usize;
        let mut restarts_tried = 0usize;
        for _ in 0..60 {
            match c.decide().unwrap() {
                Step::Terminate => break,
                Step::Execute(a) => {
                    if a.index() == 0 && world == 0 {
                        restarts_tried += 1;
                        if restarts_tried > 1 {
                            world = 2; // second attempt really fixes it
                        }
                    }
                    if a.index() == 1 && world == 1 {
                        world = 2;
                    }
                    // Mostly-faithful monitor of the true state.
                    let o = ObservationId::new(match world {
                        0 => 0,
                        1 => 1,
                        _ => 2,
                    });
                    c.observe(a, o).unwrap();
                }
            }
        }
        assert_eq!(world, 2, "hardened controller never fixed the fault");
        assert!(c.terminated, "episode did not terminate");
        let stats = c.resilience_stats().unwrap();
        assert!(
            stats.belief_resets + stats.escalations + stats.retries > 0,
            "recovery succeeded without the hardening layer doing anything: {stats:?}"
        );
    }

    /// An inner controller that accepts episodes but wedges on every
    /// decision — the failure the anytime rung exists to absorb.
    #[derive(Debug, Clone)]
    struct WedgedController;

    impl RecoveryController for WedgedController {
        fn name(&self) -> &str {
            "wedged"
        }
        fn begin(&mut self, _initial: Belief, _true_fault: Option<StateId>) -> Result<(), Error> {
            Ok(())
        }
        fn decide(&mut self) -> Result<Step, Error> {
            Err(Error::NotStarted)
        }
        fn observe(&mut self, _action: ActionId, _o: ObservationId) -> Result<(), Error> {
            Ok(())
        }
        fn belief(&self) -> Option<Belief> {
            None
        }
    }

    fn anytime_rung() -> crate::AnytimeController {
        let model = two_server_model().without_notification(50.0).unwrap();
        crate::AnytimeController::new(model, crate::AnytimeConfig::default()).unwrap()
    }

    #[test]
    fn wedged_inner_falls_to_the_anytime_rung_and_recovers() {
        let model = two_server_model();
        let mut c = ResilientController::new(model, WedgedController, ResilienceConfig::default())
            .unwrap()
            .with_anytime(anytime_rung())
            .unwrap();
        c.begin(Belief::point(3, StateId::new(0)), None).unwrap();
        let mut world = 0usize;
        for _ in 0..60 {
            match c.decide().unwrap() {
                Step::Terminate => break,
                Step::Execute(a) => {
                    if a.index() == 0 && world == 0 {
                        world = 2;
                    }
                    if a.index() == 1 && world == 1 {
                        world = 2;
                    }
                    let o = ObservationId::new(match world {
                        0 => 0,
                        1 => 1,
                        _ => 2,
                    });
                    c.observe(a, o).unwrap();
                }
            }
        }
        assert_eq!(world, 2, "anytime rung failed to recover the fault");
        assert!(c.terminated, "episode did not terminate");
        let stats = c.resilience_stats().unwrap();
        assert!(
            stats.anytime_decisions >= 1,
            "recovery bypassed the anytime rung: {stats:?}"
        );
        // The ladder never needed to fall past the anytime rung.
        assert!(c.level() <= EscalationLevel::Anytime, "{:?}", c.level());
    }

    #[test]
    fn without_the_rung_a_wedged_inner_goes_straight_to_the_heuristic() {
        let model = two_server_model();
        let mut c =
            ResilientController::new(model, WedgedController, ResilienceConfig::default()).unwrap();
        c.begin(Belief::point(3, StateId::new(0)), None).unwrap();
        let _ = c.decide().unwrap();
        assert_eq!(c.level(), EscalationLevel::Heuristic);
        assert_eq!(c.resilience_stats().unwrap().anytime_decisions, 0);
    }

    #[test]
    fn dropout_degrades_to_predict_only_update() {
        let mut c = hardened_bounded(ResilienceConfig::default());
        c.begin(
            Belief::uniform_over(3, &[StateId::new(0), StateId::new(1)]),
            None,
        )
        .unwrap();
        let before = c.belief().unwrap();
        match c.decide().unwrap() {
            Step::Execute(a) => c.on_unobserved(a).unwrap(),
            Step::Terminate => panic!("terminated from an all-fault belief"),
        }
        let after = c.belief().unwrap();
        // Deterministic two-server transitions: the belief must have
        // moved (the attempted restart shifts mass toward Null) even
        // though no observation arrived.
        assert_ne!(before, after);
    }
}
