//! The `Scenario` registry: one construction surface for every model
//! the benches, examples, and tests run against.
//!
//! A [`Scenario`] names a recovery model, knows how to build it, and
//! carries the metadata the harnesses need around the model itself —
//! the operator response time for the §3.1 no-notification transform,
//! the fault population episode campaigns inject, and the lint warnings
//! the model is *expected* to carry (everything else is a regression).
//! A [`ScenarioRegistry`] collects scenarios under unique names so a
//! bench bin can offer `--scenario <name>` instead of hardcoding one
//! model.
//!
//! The registry itself lives here in `bpr-core`; the concrete paper
//! scenarios are registered by `bpr-emn`, the generated datacenter
//! corpus by `bpr-topo`, and the `bpr` facade assembles the built-in
//! set in `bpr::scenario::builtin()`.

use crate::lint::{lint_pomdp, Diagnostic, LintCode, LintContext, LintReport, Severity};
use crate::{Belief, Error, RecoveryModel, StateId};

/// A named, buildable recovery model plus the harness metadata that
/// travels with it.
pub trait Scenario {
    /// Unique registry key (kebab-case, e.g. `"cellfleet-mid"`).
    fn name(&self) -> &str;

    /// One-line human description (shown by `--list-scenarios`).
    fn description(&self) -> &str;

    /// Builds the validated recovery model.
    ///
    /// # Errors
    ///
    /// Propagates model construction/validation failures.
    fn build(&self) -> Result<RecoveryModel, Error>;

    /// The operator response time `t_op` used for the no-notification
    /// transform (§3.1) and the RA-Bound's termination rewards.
    fn operator_response_time(&self) -> f64;

    /// The fault states episode campaigns draw initial states from.
    ///
    /// Defaults to every non-null state; scenarios whose interesting
    /// regime is narrower (e.g. EMN's silent zombie faults) override
    /// this.
    fn fault_population(&self, model: &RecoveryModel) -> Vec<StateId> {
        model.fault_states()
    }

    /// Lint warnings this model is expected to carry at every stage.
    ///
    /// The modelcheck gate treats warnings *outside* this allowlist as
    /// regressions; errors are never allowed.
    fn expected_warnings(&self) -> Vec<LintCode> {
        Vec::new()
    }

    /// Representative initial base-space beliefs for verification and
    /// certification (the `bpr-verify` policy-graph analyzer roots its
    /// reachable-belief walk here, and `certify` evaluates bounds at
    /// these points).
    ///
    /// Defaults to the uniform belief over the fault population plus a
    /// point belief per fault (capped at eight).
    fn probe_beliefs(&self, model: &RecoveryModel) -> Vec<Belief> {
        let n = model.base().n_states();
        let faults = self.fault_population(model);
        if faults.is_empty() {
            return vec![Belief::uniform(n)];
        }
        let mut probes = vec![Belief::uniform_over(n, &faults)];
        for &fault in faults.iter().take(8) {
            probes.push(Belief::point(n, fault));
        }
        probes
    }
}

/// The pipeline stages a model is linted at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelStage {
    /// The validated recovery model as built.
    Raw,
    /// After [`RecoveryModel::with_notification`].
    WithNotification,
    /// After [`RecoveryModel::without_notification`].
    WithoutNotification,
}

impl ModelStage {
    /// All stages, in pipeline order.
    pub const ALL: [ModelStage; 3] = [
        ModelStage::Raw,
        ModelStage::WithNotification,
        ModelStage::WithoutNotification,
    ];

    /// The suffix used in lint report names, e.g. `"emn (raw)"`.
    pub fn label(self) -> &'static str {
        match self {
            ModelStage::Raw => "raw",
            ModelStage::WithNotification => "with-notification",
            ModelStage::WithoutNotification => "no-notification",
        }
    }
}

/// Lints `model` at every [`ModelStage`], naming each report
/// `"{name} ({stage})"`.
///
/// # Errors
///
/// Propagates §3.1 transform failures.
pub fn lint_model_stages(
    name: &str,
    model: &RecoveryModel,
    operator_response_time: f64,
) -> Result<Vec<LintReport>, Error> {
    let mut reports = Vec::new();
    reports.push(lint_pomdp(
        model.base(),
        &model
            .lint_context()
            .named(format!("{name} ({})", ModelStage::Raw.label()))
            .full(),
    ));
    let notified = model.with_notification()?;
    reports.push(lint_pomdp(
        &notified,
        &LintContext::transformed(model.null_states().to_vec(), None)
            .named(format!("{name} ({})", ModelStage::WithNotification.label()))
            .full(),
    ));
    let terminated = model.without_notification(operator_response_time)?;
    reports.push(lint_pomdp(
        terminated.pomdp(),
        &terminated
            .lint_context()
            .named(format!(
                "{name} ({})",
                ModelStage::WithoutNotification.label()
            ))
            .full(),
    ));
    Ok(reports)
}

/// Builds a scenario's model and lints it at every stage — the
/// modelcheck gate's unit of work.
///
/// # Errors
///
/// Propagates build and transform failures.
pub fn lint_scenario(scenario: &dyn Scenario) -> Result<Vec<LintReport>, Error> {
    let model = scenario.build()?;
    lint_model_stages(scenario.name(), &model, scenario.operator_response_time())
}

/// The warnings in `report` that are not covered by a scenario's
/// [`Scenario::expected_warnings`] allowlist.
pub fn unexpected_warnings<'r>(report: &'r LintReport, allow: &[LintCode]) -> Vec<&'r Diagnostic> {
    report
        .diagnostics()
        .iter()
        .filter(|d| d.severity == Severity::Warn && !allow.contains(&d.code))
        .collect()
}

/// An ordered collection of [`Scenario`]s under unique names.
#[derive(Default)]
pub struct ScenarioRegistry {
    entries: Vec<Box<dyn Scenario>>,
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn new() -> ScenarioRegistry {
        ScenarioRegistry::default()
    }

    /// Registers a scenario, preserving insertion order.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] if the name is already taken.
    pub fn register(&mut self, scenario: Box<dyn Scenario>) -> Result<(), Error> {
        if self.get(scenario.name()).is_some() {
            return Err(Error::InvalidInput {
                detail: format!("scenario '{}' is already registered", scenario.name()),
            });
        }
        self.entries.push(scenario);
        Ok(())
    }

    /// Looks a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&dyn Scenario> {
        self.entries
            .iter()
            .find(|s| s.name() == name)
            .map(|s| s.as_ref())
    }

    /// Looks a scenario up by name, or fails listing what is available.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] naming the known scenarios when `name`
    /// is not one of them.
    pub fn require(&self, name: &str) -> Result<&dyn Scenario, Error> {
        self.get(name).ok_or_else(|| Error::InvalidInput {
            detail: format!(
                "unknown scenario '{name}' (available: {})",
                self.names().join(", ")
            ),
        })
    }

    /// Registered names, in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|s| s.name()).collect()
    }

    /// Iterates the scenarios in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Scenario> {
        self.entries.iter().map(|s| s.as_ref())
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl std::fmt::Debug for ScenarioRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blueprint::{assemble, ModelBlueprint};

    /// Minimal one-fault blueprint used to give the tests a real model.
    struct Tiny;

    impl ModelBlueprint for Tiny {
        fn n_states(&self) -> usize {
            2
        }
        fn n_actions(&self) -> usize {
            2
        }
        fn n_observations(&self) -> usize {
            2
        }
        fn state_label(&self, s: usize) -> String {
            ["Null", "Fault"][s].to_string()
        }
        fn action_label(&self, a: usize) -> String {
            ["Fix", "Observe"][a].to_string()
        }
        fn observation_label(&self, o: usize) -> String {
            ["clear", "alarm"][o].to_string()
        }
        fn action_duration(&self, a: usize) -> f64 {
            [10.0, 1.0][a]
        }
        fn transitions(&self, s: usize, a: usize, out: &mut Vec<(usize, f64)>) {
            out.push((if a == 0 { 0 } else { s }, 1.0));
        }
        fn reward(&self, s: usize, a: usize) -> f64 {
            let drop = if s == 1 { 1.0 } else { 0.0 };
            let offline = if a == 0 { 1.0 } else { 0.0 };
            -f64::max(drop, offline) * self.action_duration(a)
        }
        fn observation_row(&self, entered: usize, out: &mut Vec<(usize, f64)>) {
            let alarm = if entered == 1 { 0.95 } else { 0.02 };
            out.push((0, 1.0 - alarm));
            out.push((1, alarm));
        }
        fn null_states(&self) -> Vec<usize> {
            vec![0]
        }
        fn idle_rate(&self, s: usize) -> f64 {
            if s == 1 {
                -1.0
            } else {
                0.0
            }
        }
        fn observe_actions(&self) -> Vec<usize> {
            vec![1]
        }
    }

    struct TinyScenario;

    impl Scenario for TinyScenario {
        fn name(&self) -> &str {
            "tiny"
        }
        fn description(&self) -> &str {
            "one fault, one fix"
        }
        fn build(&self) -> Result<RecoveryModel, Error> {
            assemble(&Tiny)
        }
        fn operator_response_time(&self) -> f64 {
            100.0
        }
    }

    #[test]
    fn registry_registers_looks_up_and_rejects_duplicates() {
        let mut reg = ScenarioRegistry::new();
        reg.register(Box::new(TinyScenario)).unwrap();
        assert_eq!(reg.names(), vec!["tiny"]);
        assert_eq!(reg.len(), 1);
        assert!(reg.get("tiny").is_some());
        assert!(reg.get("missing").is_none());
        assert!(matches!(
            reg.register(Box::new(TinyScenario)),
            Err(Error::InvalidInput { .. })
        ));
    }

    #[test]
    fn require_names_the_available_scenarios() {
        let mut reg = ScenarioRegistry::new();
        reg.register(Box::new(TinyScenario)).unwrap();
        let msg = match reg.require("nope") {
            Ok(_) => panic!("unknown scenario resolved"),
            Err(e) => e.to_string(),
        };
        assert!(msg.contains("nope") && msg.contains("tiny"), "{msg}");
    }

    #[test]
    fn lint_scenario_covers_all_three_stages() {
        let reports = lint_scenario(&TinyScenario).unwrap();
        assert_eq!(reports.len(), ModelStage::ALL.len());
        assert_eq!(reports[0].model(), "tiny (raw)");
        assert_eq!(reports[1].model(), "tiny (with-notification)");
        assert_eq!(reports[2].model(), "tiny (no-notification)");
        for r in &reports {
            assert!(!r.has_errors(), "{}", r.render());
        }
    }

    #[test]
    fn fault_population_defaults_to_all_faults() {
        let model = TinyScenario.build().unwrap();
        assert_eq!(TinyScenario.fault_population(&model), vec![StateId::new(1)]);
        assert!(TinyScenario.expected_warnings().is_empty());
    }

    #[test]
    fn unexpected_warnings_respects_the_allowlist() {
        let reports = lint_scenario(&TinyScenario).unwrap();
        for r in &reports {
            let all = unexpected_warnings(r, &[]);
            let allowed = unexpected_warnings(r, &[LintCode::FreeAction, LintCode::AbsorbingFault]);
            assert!(allowed.len() <= all.len());
        }
    }
}
