use std::fmt;

/// Errors produced by the recovery framework.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The model violates the paper's Condition 1: either there are no
    /// null-fault states, or some state cannot reach one.
    Condition1Violated {
        /// Explanation, including the offending state when applicable.
        detail: String,
    },
    /// The model violates Condition 2: one or more single-step rewards
    /// are positive.
    Condition2Violated {
        /// Every `(state, action, reward)` triple with a positive
        /// reward, in (action-major) discovery order.
        violations: Vec<(usize, usize, f64)>,
    },
    /// The model has "free" (zero-cost) actions outside the exempt
    /// states, violating condition (a) of the termination property
    /// (Property 1). Reported by the optional strict check only.
    FreeAction {
        /// Every free `(state, action)` pair.
        violations: Vec<(usize, usize)>,
    },
    /// The model failed static analysis at error severity (see
    /// [`crate::lint`]). The report carries every finding, errors
    /// first, with offending ids, labels, and fix-it hints.
    Lint {
        /// The full lint report.
        report: bpr_lint::LintReport,
    },
    /// A controller method was called out of order (e.g. `decide`
    /// before `begin`).
    NotStarted,
    /// A controller was driven past its termination decision.
    AlreadyTerminated,
    /// A rates vector or similar input had the wrong shape.
    InvalidInput {
        /// Explanation of the malformed input.
        detail: String,
    },
    /// An error surfaced from the POMDP machinery.
    Pomdp(bpr_pomdp::Error),
    /// An error surfaced from the MDP machinery.
    Mdp(bpr_mdp::Error),
    /// A durability snapshot could not be read or written.
    Snapshot(crate::snapshot::SnapshotError),
    /// A work item panicked and the caller opted not to tolerate it.
    Panicked {
        /// Episode identity and the captured panic payload.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Condition1Violated { detail } => {
                write!(f, "condition 1 violated: {detail}")
            }
            Error::Condition2Violated { violations } => {
                let listed: Vec<String> = violations
                    .iter()
                    .map(|(s, a, r)| format!("r(s{s}, a{a}) = {r}"))
                    .collect();
                write!(
                    f,
                    "condition 2 violated: {} positive reward(s): {}",
                    violations.len(),
                    listed.join(", ")
                )
            }
            Error::FreeAction { violations } => {
                let listed: Vec<String> = violations
                    .iter()
                    .map(|(s, a)| format!("a{a} in s{s}"))
                    .collect();
                write!(
                    f,
                    "{} free action(s) in non-exempt states (termination property at risk): {}",
                    violations.len(),
                    listed.join(", ")
                )
            }
            Error::Lint { report } => {
                write!(f, "model failed static analysis: {}", report.summary())
            }
            Error::NotStarted => write!(f, "controller used before begin() was called"),
            Error::AlreadyTerminated => write!(f, "controller driven past termination"),
            Error::InvalidInput { detail } => write!(f, "invalid input: {detail}"),
            Error::Pomdp(e) => write!(f, "pomdp failure: {e}"),
            Error::Mdp(e) => write!(f, "mdp failure: {e}"),
            Error::Snapshot(e) => write!(f, "snapshot failure: {e}"),
            Error::Panicked { detail } => write!(f, "work item panicked: {detail}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Pomdp(e) => Some(e),
            Error::Mdp(e) => Some(e),
            Error::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<bpr_pomdp::Error> for Error {
    fn from(e: bpr_pomdp::Error) -> Error {
        Error::Pomdp(e)
    }
}

impl From<bpr_mdp::Error> for Error {
    fn from(e: bpr_mdp::Error) -> Error {
        Error::Mdp(e)
    }
}

impl From<crate::snapshot::SnapshotError> for Error {
    fn from(e: crate::snapshot::SnapshotError) -> Error {
        Error::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let errs = [
            Error::Condition1Violated {
                detail: "state 3 cannot recover".into(),
            },
            Error::Condition2Violated {
                violations: vec![(0, 1, 0.5), (2, 0, 0.25)],
            },
            Error::FreeAction {
                violations: vec![(2, 0)],
            },
            Error::Lint {
                report: bpr_lint::LintReport::new("broken", vec![]),
            },
            Error::NotStarted,
            Error::AlreadyTerminated,
            Error::InvalidInput {
                detail: "rates length".into(),
            },
            Error::Pomdp(bpr_pomdp::Error::InvalidBelief { reason: "x" }),
            Error::Mdp(bpr_mdp::Error::EmptyModel),
            Error::Snapshot(crate::snapshot::SnapshotError::Malformed {
                detail: "header".into(),
            }),
            Error::Panicked {
                detail: "episode 3".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn conversions_preserve_source() {
        use std::error::Error as _;
        let e: Error = bpr_pomdp::Error::InvalidBelief { reason: "x" }.into();
        assert!(e.source().is_some());
        let e: Error = bpr_mdp::Error::EmptyModel.into();
        assert!(e.source().is_some());
        let e: Error = crate::snapshot::SnapshotError::Io { detail: "d".into() }.into();
        assert!(e.source().is_some());
    }
}
