//! Policy preview: materialise the controller's decision surface as a
//! human-readable rule table.
//!
//! The paper's introduction motivates automatic recovery by the pain of
//! hand-written "if-then" recovery rules. This module inverts that:
//! given a bounded controller's model and bound, it walks the belief
//! states reachable from an initial belief and tabulates the action the
//! controller would take in each — an automatically generated,
//! reviewable rule table for operators.

use crate::{Error, TerminatedModel};
use bpr_mdp::ActionId;
use bpr_pomdp::bounds::VectorSetBound;
use bpr_pomdp::{tree, Belief};
use std::collections::{HashMap, VecDeque};

/// One rule of the preview: in (roughly) this belief, do this.
#[derive(Debug, Clone, PartialEq)]
pub struct PreviewRow {
    /// Distance (in decisions) from the initial belief.
    pub depth: usize,
    /// The belief state the rule applies to.
    pub belief: Belief,
    /// The chosen action; `None` means terminate.
    pub action: Option<ActionId>,
    /// The expansion value of the decision.
    pub value: f64,
    /// Probability of reaching this belief from the root following the
    /// controller's own actions (product of observation likelihoods).
    pub reach_probability: f64,
}

/// Options for [`preview`].
#[derive(Debug, Clone, PartialEq)]
pub struct PreviewOpts {
    /// How many decision levels to walk.
    pub horizon: usize,
    /// Stop after this many distinct beliefs.
    pub max_rows: usize,
    /// Tree depth used for each decision.
    pub tree_depth: usize,
    /// Observation-branch cutoff during both deciding and walking.
    pub gamma_cutoff: f64,
    /// Beliefs are deduplicated after rounding probabilities to this
    /// many decimal places.
    pub dedup_decimals: u32,
}

impl Default for PreviewOpts {
    fn default() -> PreviewOpts {
        PreviewOpts {
            horizon: 4,
            max_rows: 200,
            tree_depth: 1,
            gamma_cutoff: 1e-3,
            dedup_decimals: 3,
        }
    }
}

fn dedup_key(belief: &Belief, decimals: u32) -> Vec<u64> {
    let scale = 10f64.powi(decimals as i32);
    belief
        .probs()
        .iter()
        .map(|p| (p * scale).round() as u64)
        .collect()
}

/// Walks the belief states reachable from `initial` under the
/// controller's own decisions and returns the rule table, breadth
/// first (most-reachable beliefs first within a level).
///
/// # Errors
///
/// * [`Error::InvalidInput`] for a zero horizon/tree depth or a belief
///   of the wrong dimension.
/// * Propagates expansion failures.
pub fn preview(
    model: &TerminatedModel,
    bound: &VectorSetBound,
    initial: &Belief,
    opts: &PreviewOpts,
) -> Result<Vec<PreviewRow>, Error> {
    if opts.horizon == 0 || opts.tree_depth == 0 {
        return Err(Error::InvalidInput {
            detail: "preview horizon and tree depth must be at least 1".into(),
        });
    }
    let pomdp = model.pomdp();
    let initial = if initial.n_states() + 1 == pomdp.n_states() {
        model.extend_belief(initial)?
    } else if initial.n_states() == pomdp.n_states() {
        initial.clone()
    } else {
        return Err(Error::InvalidInput {
            detail: "initial belief dimension mismatch".into(),
        });
    };

    let mut rows = Vec::new();
    let mut seen: HashMap<Vec<u64>, ()> = HashMap::new();
    let mut queue: VecDeque<(usize, f64, Belief)> = VecDeque::new();
    queue.push_back((0, 1.0, initial));

    while let Some((depth, reach, belief)) = queue.pop_front() {
        if rows.len() >= opts.max_rows {
            break;
        }
        let key = dedup_key(&belief, opts.dedup_decimals);
        if seen.contains_key(&key) {
            continue;
        }
        seen.insert(key, ());

        let decision = tree::expand_with_cutoff(
            pomdp,
            &belief,
            opts.tree_depth,
            bound,
            1.0,
            opts.gamma_cutoff,
        )
        .map_err(Error::Pomdp)?;
        let terminate = decision.action == model.terminate_action()
            || decision.q_values[model.terminate_action().index()] >= decision.value - 1e-12;
        rows.push(PreviewRow {
            depth,
            belief: belief.clone(),
            action: if terminate {
                None
            } else {
                Some(decision.action)
            },
            value: decision.value,
            reach_probability: reach,
        });
        if terminate || depth + 1 >= opts.horizon {
            continue;
        }
        for (_o, gamma, next) in belief.successors(pomdp, decision.action, opts.gamma_cutoff) {
            queue.push_back((depth + 1, reach * gamma, next));
        }
    }
    Ok(rows)
}

/// Formats a preview as an indented text table using the model's
/// state/action labels; `top_k` states are shown per belief.
pub fn render(model: &TerminatedModel, rows: &[PreviewRow], top_k: usize) -> String {
    let pomdp = model.pomdp();
    let mut out = String::new();
    for row in rows {
        let mut ranked: Vec<(usize, f64)> = row
            .belief
            .probs()
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, p)| *p > 1e-4)
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        ranked.truncate(top_k);
        let belief_desc: Vec<String> = ranked
            .iter()
            .map(|(s, p)| format!("{}:{:.2}", pomdp.mdp().state_label(*s), p))
            .collect();
        let action_desc = match row.action {
            Some(a) => pomdp.mdp().action_label(a).to_string(),
            None => "TERMINATE".to_string(),
        };
        out.push_str(&format!(
            "{:indent$}[p={:.3}] if belief ~ {{{}}} then {}\n",
            "",
            row.reach_probability,
            belief_desc.join(", "),
            action_desc,
            indent = row.depth * 2,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::two_server_model;
    use bpr_mdp::chain::SolveOpts;
    use bpr_pomdp::bounds::ra_bound;

    fn setup() -> (TerminatedModel, VectorSetBound) {
        let model = two_server_model().without_notification(25.0).unwrap();
        let bound = ra_bound(model.pomdp(), &SolveOpts::default()).unwrap();
        (model, bound)
    }

    #[test]
    fn preview_walks_reachable_beliefs() {
        let (model, bound) = setup();
        let initial = Belief::uniform_over(3, &[0.into(), 1.into()]);
        let rows = preview(&model, &bound, &initial, &PreviewOpts::default()).unwrap();
        assert!(!rows.is_empty());
        assert_eq!(rows[0].depth, 0);
        assert_eq!(rows[0].reach_probability, 1.0);
        // Depths never exceed the horizon and are non-decreasing (BFS).
        let mut prev = 0;
        for r in &rows {
            assert!(r.depth < PreviewOpts::default().horizon);
            assert!(r.depth >= prev);
            prev = r.depth;
            assert!(r.reach_probability > 0.0 && r.reach_probability <= 1.0);
        }
    }

    #[test]
    fn terminating_beliefs_are_leaves() {
        let (model, bound) = setup();
        // Starting essentially recovered: the single row terminates.
        let initial = Belief::from_probs(vec![0.001, 0.001, 0.998]).unwrap();
        let rows = preview(&model, &bound, &initial, &PreviewOpts::default()).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].action, None);
    }

    #[test]
    fn render_produces_readable_rules() {
        let (model, bound) = setup();
        let initial = Belief::uniform_over(3, &[0.into(), 1.into()]);
        let rows = preview(&model, &bound, &initial, &PreviewOpts::default()).unwrap();
        let text = render(&model, &rows, 2);
        assert!(text.contains("if belief ~"));
        assert!(text.contains("then"));
        assert!(text.lines().count() >= rows.len());
    }

    #[test]
    fn bad_options_are_rejected() {
        let (model, bound) = setup();
        let initial = Belief::uniform(3);
        for opts in [
            PreviewOpts {
                horizon: 0,
                ..PreviewOpts::default()
            },
            PreviewOpts {
                tree_depth: 0,
                ..PreviewOpts::default()
            },
        ] {
            assert!(preview(&model, &bound, &initial, &opts).is_err());
        }
        assert!(preview(&model, &bound, &Belief::uniform(9), &PreviewOpts::default()).is_err());
    }

    #[test]
    fn max_rows_caps_the_walk() {
        let (model, bound) = setup();
        let initial = Belief::uniform_over(3, &[0.into(), 1.into()]);
        let rows = preview(
            &model,
            &bound,
            &initial,
            &PreviewOpts {
                max_rows: 3,
                horizon: 10,
                ..PreviewOpts::default()
            },
        )
        .unwrap();
        assert!(rows.len() <= 3);
    }
}
