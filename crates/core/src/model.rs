//! Recovery models and the structural transforms of paper §3.1.

use crate::{conditions, Error};
use bpr_mdp::{ActionId, MdpBuilder, StateId};
use bpr_pomdp::{Belief, ObservationId, Pomdp, PomdpBuilder};

/// Whether the monitored system can notify the controller that recovery
/// has completed (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Notification {
    /// Monitors definitively detect entry into `S_φ` (e.g. permanent
    /// faults with full-coverage crash monitors).
    Available,
    /// Recovery completion cannot be observed with certainty (transient
    /// faults, false positives, zombies) — the terminate action `a_T`
    /// must be added to the model.
    Unavailable,
}

/// A validated recovery model: a POMDP over fault states plus the
/// metadata the paper's machinery needs.
///
/// Invariants established at construction:
///
/// * Condition 1 — the null-fault states `S_φ` are non-empty and
///   reachable from every state.
/// * Condition 2 — all rewards are non-positive.
/// * The idle cost `rates` are non-positive, zero on `S_φ`, and match
///   the state count.
///
/// # Examples
///
/// Building the paper's Figure 1(a) model is shown in the crate docs of
/// `bpr-emn` (`two_server()`), which returns a ready `RecoveryModel`.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryModel {
    base: Pomdp,
    null_states: Vec<StateId>,
    rates: Vec<f64>,
    observe_actions: Vec<ActionId>,
}

impl RecoveryModel {
    /// Validates and wraps a recovery model.
    ///
    /// `rates[s]` is the cost *rate* (≤ 0 per unit time) the system
    /// accrues while sitting in state `s` — used to derive termination
    /// rewards `r(s, a_T) = rates[s] · t_op`. `observe_actions` tags
    /// the purely observational actions (monitor sweeps) so that
    /// simulation harnesses can separate "recovery actions" from
    /// "monitor calls" in their metrics.
    ///
    /// # Errors
    ///
    /// * [`Error::Condition1Violated`] / [`Error::Condition2Violated`]
    ///   when the paper's conditions fail.
    /// * [`Error::InvalidInput`] when `rates` has the wrong length,
    ///   contains positive or non-finite entries, is non-zero on a null
    ///   state, or an observe action is out of bounds.
    pub fn new(
        base: Pomdp,
        null_states: Vec<StateId>,
        rates: Vec<f64>,
        observe_actions: Vec<ActionId>,
    ) -> Result<RecoveryModel, Error> {
        conditions::check_condition1(&base, &null_states)?;
        conditions::check_condition2(&base)?;
        if rates.len() != base.n_states() {
            return Err(Error::InvalidInput {
                detail: format!(
                    "rates length {} does not match state count {}",
                    rates.len(),
                    base.n_states()
                ),
            });
        }
        for (s, &r) in rates.iter().enumerate() {
            if !r.is_finite() || r > 0.0 {
                return Err(Error::InvalidInput {
                    detail: format!("rate for state {s} must be a finite cost (<= 0), got {r}"),
                });
            }
        }
        for s in &null_states {
            if rates[s.index()] != 0.0 {
                return Err(Error::InvalidInput {
                    detail: format!("null-fault state {s} must have zero idle cost rate"),
                });
            }
        }
        for a in &observe_actions {
            if a.index() >= base.n_actions() {
                return Err(Error::InvalidInput {
                    detail: format!("observe action {a} is out of bounds"),
                });
            }
        }
        Ok(RecoveryModel {
            base,
            null_states,
            rates,
            observe_actions,
        })
    }

    /// The underlying (untransformed) POMDP.
    pub fn base(&self) -> &Pomdp {
        &self.base
    }

    /// The null-fault states `S_φ`.
    pub fn null_states(&self) -> &[StateId] {
        &self.null_states
    }

    /// The idle cost rates per state.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Actions tagged as purely observational (monitor sweeps).
    pub fn observe_actions(&self) -> &[ActionId] {
        &self.observe_actions
    }

    /// True if `s ∈ S_φ`.
    pub fn is_null(&self, s: StateId) -> bool {
        self.null_states.contains(&s)
    }

    /// True if `a` is a tagged observe action.
    pub fn is_observe(&self, a: ActionId) -> bool {
        self.observe_actions.contains(&a)
    }

    /// The fault states (complement of `S_φ`), in ascending order.
    pub fn fault_states(&self) -> Vec<StateId> {
        (0..self.base.n_states())
            .map(StateId::new)
            .filter(|s| !self.is_null(*s))
            .collect()
    }

    /// Actions that deterministically recover from `fault` — i.e. move
    /// it into `S_φ` with probability 1.
    pub fn recovery_actions_for(&self, fault: StateId) -> Vec<ActionId> {
        (0..self.base.n_actions())
            .map(ActionId::new)
            .filter(|&a| {
                let mass: f64 = self
                    .base
                    .mdp()
                    .successors(fault, a)
                    .filter(|(s2, _)| self.is_null(*s2))
                    .map(|(_, p)| p)
                    .sum();
                mass >= 1.0 - 1e-9
            })
            .collect()
    }

    /// Among [`RecoveryModel::recovery_actions_for`], the one with the
    /// highest (least negative) reward in `fault` — the "cheapest
    /// recovery action" of the most-likely baseline controller.
    pub fn cheapest_recovery_action(&self, fault: StateId) -> Option<ActionId> {
        self.recovery_actions_for(fault)
            .into_iter()
            .max_by(|&a, &b| {
                let ra = self.base.mdp().reward(fault, a);
                let rb = self.base.mdp().reward(fault, b);
                ra.total_cmp(&rb)
            })
    }

    /// The lint context describing this raw model to the
    /// [`bpr_lint`](crate::lint) analyzer: `S_φ` as the null set,
    /// raw stage, no termination machinery.
    pub fn lint_context(&self) -> bpr_lint::LintContext {
        bpr_lint::LintContext::raw(self.null_states.clone()).named("recovery-model (raw)")
    }

    /// Runs the full static analyzer over the base POMDP.
    ///
    /// Construction already guarantees the error-severity structural
    /// lints are clean (Conditions 1 and 2 are enforced by
    /// [`RecoveryModel::new`]); the report surfaces the warnings and
    /// informational findings those fast checks skip — free actions,
    /// monitor aliasing classes, orphan fault states, random-chain
    /// divergence (expected on a raw model).
    pub fn lint(&self) -> bpr_lint::LintReport {
        bpr_lint::lint_pomdp(&self.base, &self.lint_context().full())
    }

    /// The transform for systems *with* recovery notification
    /// (Fig. 2(a)): every action out of a null-fault state is replaced
    /// by a zero-reward self-loop, making `S_φ` absorbing and free —
    /// which guarantees the RA-Bound converges.
    ///
    /// Observation dynamics are preserved.
    ///
    /// # Errors
    ///
    /// Propagates (unexpected) model re-validation failures.
    pub fn with_notification(&self) -> Result<Pomdp, Error> {
        let m = self.base.mdp();
        let n = m.n_states();
        let na = m.n_actions();
        let mut mb = MdpBuilder::new(n, na);
        for s in 0..n {
            mb.state_label(s, m.state_label(s));
        }
        for a in 0..na {
            mb.action_label(a, m.action_label(a));
            mb.duration(a, m.duration(a));
        }
        for a in 0..na {
            for s in 0..n {
                if self.is_null(StateId::new(s)) {
                    mb.transition(s, a, s, 1.0).reward(s, a, 0.0);
                } else {
                    for (s2, p) in m.successors(s, a) {
                        mb.transition(s, a, s2, p);
                    }
                    mb.reward(s, a, m.reward(s, a));
                }
            }
        }
        let mut pb = PomdpBuilder::new(mb.build().map_err(Error::Mdp)?, self.base.n_observations());
        for o in 0..self.base.n_observations() {
            pb.observation_label(o, self.base.observation_label(o));
        }
        for a in 0..na {
            for s in 0..n {
                for (o, q) in self.base.observations_on_entering(s, a) {
                    pb.observation(s, a, o, q);
                }
            }
        }
        pb.build().map_err(Error::Pomdp)
    }

    /// The transform for systems *without* recovery notification
    /// (Fig. 2(b)): adds the absorbing terminate state `s_T`, the
    /// terminate action `a_T` with termination rewards
    /// `r(s, a_T) = rates[s] · t_op`, and a dedicated "terminated"
    /// observation. The result guarantees a finite RA-Bound.
    ///
    /// `operator_response_time` is the paper's `t_op`: the (designer
    /// friendly) time a human operator needs to respond to a fault the
    /// controller abandoned.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidInput`] if `operator_response_time` is not
    ///   positive and finite.
    /// * Propagates model-construction failures.
    pub fn without_notification(
        &self,
        operator_response_time: f64,
    ) -> Result<TerminatedModel, Error> {
        if !(operator_response_time.is_finite() && operator_response_time > 0.0) {
            return Err(Error::InvalidInput {
                detail: format!(
                    "operator response time must be positive and finite, got {operator_response_time}"
                ),
            });
        }
        let m = self.base.mdp();
        let n = m.n_states();
        let na = m.n_actions();
        let s_t = n; // terminate state index
        let a_t = na; // terminate action index
        let o_t = self.base.n_observations(); // "terminated" observation

        let mut mb = MdpBuilder::new(n + 1, na + 1);
        for s in 0..n {
            mb.state_label(s, m.state_label(s));
        }
        mb.state_label(s_t, "Terminated");
        for a in 0..na {
            mb.action_label(a, m.action_label(a));
            mb.duration(a, m.duration(a));
        }
        mb.action_label(a_t, "Terminate");
        // Base dynamics unchanged; s_T absorbs under every action.
        for a in 0..na {
            for s in 0..n {
                for (s2, p) in m.successors(s, a) {
                    mb.transition(s, a, s2, p);
                }
                mb.reward(s, a, m.reward(s, a));
            }
            mb.transition(s_t, a, s_t, 1.0);
        }
        // a_T routes everything to s_T at the termination cost.
        for s in 0..n {
            let r = if self.is_null(StateId::new(s)) {
                0.0
            } else {
                self.rates[s] * operator_response_time
            };
            mb.transition(s, a_t, s_t, 1.0).reward(s, a_t, r);
        }
        mb.transition(s_t, a_t, s_t, 1.0);

        let mut pb = PomdpBuilder::new(mb.build().map_err(Error::Mdp)?, o_t + 1);
        for o in 0..self.base.n_observations() {
            pb.observation_label(o, self.base.observation_label(o));
        }
        pb.observation_label(o_t, "terminated");
        for a in 0..na {
            for s in 0..n {
                for (o, q) in self.base.observations_on_entering(s, a) {
                    pb.observation(s, a, o, q);
                }
            }
            pb.observation(s_t, a, o_t, 1.0);
        }
        for s in 0..=n {
            pb.observation(s, a_t, o_t, 1.0);
        }
        Ok(TerminatedModel {
            pomdp: pb.build().map_err(Error::Pomdp)?,
            terminate_state: StateId::new(s_t),
            terminate_action: ActionId::new(a_t),
            terminated_observation: ObservationId::new(o_t),
            null_states: self.null_states.clone(),
            operator_response_time,
        })
    }
}

/// A recovery model transformed for systems without recovery
/// notification: the base POMDP extended with `s_T`, `a_T`, and the
/// "terminated" observation (paper Fig. 2(b)).
#[derive(Debug, Clone, PartialEq)]
pub struct TerminatedModel {
    pomdp: Pomdp,
    terminate_state: StateId,
    terminate_action: ActionId,
    terminated_observation: ObservationId,
    null_states: Vec<StateId>,
    operator_response_time: f64,
}

impl TerminatedModel {
    /// The transformed POMDP (one extra state, action, observation).
    pub fn pomdp(&self) -> &Pomdp {
        &self.pomdp
    }

    /// The absorbing terminate state `s_T`.
    pub fn terminate_state(&self) -> StateId {
        self.terminate_state
    }

    /// The terminate action `a_T`.
    pub fn terminate_action(&self) -> ActionId {
        self.terminate_action
    }

    /// The dedicated observation emitted from `s_T`.
    pub fn terminated_observation(&self) -> ObservationId {
        self.terminated_observation
    }

    /// The null-fault states (unchanged indices from the base model).
    pub fn null_states(&self) -> &[StateId] {
        &self.null_states
    }

    /// The operator response time `t_op` the transform was built with.
    pub fn operator_response_time(&self) -> f64 {
        self.operator_response_time
    }

    /// The lint context describing this transformed model to the
    /// [`bpr_lint`](crate::lint) analyzer: transformed stage, with the
    /// `s_T`/`a_T`/`t_op` termination machinery declared so the
    /// analyzer can check its structure (and exempt it where the
    /// transform's conventions demand).
    pub fn lint_context(&self) -> bpr_lint::LintContext {
        bpr_lint::LintContext::transformed(
            self.null_states.clone(),
            Some(bpr_lint::Termination {
                state: self.terminate_state,
                action: self.terminate_action,
                operator_response_time: self.operator_response_time,
            }),
        )
        .named("recovery-model (no-notification transform)")
    }

    /// Runs the full static analyzer over the transformed POMDP.
    ///
    /// A [`TerminatedModel`] produced by
    /// [`RecoveryModel::without_notification`] must be clean at error
    /// severity: the transform exists precisely to repair the
    /// structural hazards (divergent random chain, missing
    /// termination) the analyzer hunts for.
    pub fn lint(&self) -> bpr_lint::LintReport {
        bpr_lint::lint_pomdp(&self.pomdp, &self.lint_context().full())
    }

    /// Lifts a belief over the base state space into the transformed
    /// space (zero mass on `s_T`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the belief dimension is not
    /// the base dimension.
    pub fn extend_belief(&self, belief: &Belief) -> Result<Belief, Error> {
        if belief.n_states() != self.pomdp.n_states() - 1 {
            return Err(Error::InvalidInput {
                detail: format!(
                    "belief covers {} states, base model has {}",
                    belief.n_states(),
                    self.pomdp.n_states() - 1
                ),
            });
        }
        let mut probs = belief.probs().to_vec();
        probs.push(0.0);
        Belief::from_probs(probs).map_err(Error::Pomdp)
    }

    /// True if `a` is an action of the base model (not `a_T`).
    pub fn is_base_action(&self, a: ActionId) -> bool {
        a != self.terminate_action
    }

    /// The fault states: base states outside `S_φ` (excluding `s_T`).
    pub fn fault_states(&self) -> Vec<StateId> {
        (0..self.pomdp.n_states() - 1)
            .map(StateId::new)
            .filter(|s| !self.null_states.contains(s))
            .collect()
    }

    /// Lumps the transformed model by its monitor-aliasing partition:
    /// the lint analyzer's exact-bit equivalence classes
    /// ([`bpr_lint::checks::monitor_partition`]) seed
    /// [`bpr_pomdp::lump`], which refines them to a sound
    /// state-aggregation quotient (see its module docs). The quotient
    /// is returned as a [`TerminatedModel`] whose `s_T`, `a_T`, and
    /// null-state bookkeeping are mapped through the certificate, so
    /// controllers built on it are drop-in.
    ///
    /// Seed classes are pre-split so no quotient state ever mixes null
    /// with fault states or with `s_T` — the merge semantics of the
    /// recovery bookkeeping (`null_states`, termination) stay exact
    /// even where the raw dynamics alone would allow a coarser merge.
    /// When nothing is mergeable the result is the identity quotient
    /// and planning on it is bit-identical to the original.
    ///
    /// # Errors
    ///
    /// Propagates quotient-construction failures from
    /// [`bpr_pomdp::lump`] (they indicate a malformed model).
    pub fn lump(&self) -> Result<(TerminatedModel, bpr_pomdp::LumpCertificate), Error> {
        let mut seed: Vec<Vec<StateId>> = Vec::new();
        for class in bpr_lint::checks::monitor_partition(&self.pomdp) {
            let mut nulls = Vec::new();
            let mut faults = Vec::new();
            for s in class {
                if s == self.terminate_state {
                    seed.push(vec![s]);
                } else if self.null_states.contains(&s) {
                    nulls.push(s);
                } else {
                    faults.push(s);
                }
            }
            if !nulls.is_empty() {
                seed.push(nulls);
            }
            if !faults.is_empty() {
                seed.push(faults);
            }
        }
        let lumping = bpr_pomdp::lump(&self.pomdp, &seed).map_err(Error::Pomdp)?;
        let cert = lumping.certificate;
        let null_states: Vec<StateId> = (0..cert.n_quotient())
            .map(StateId::new)
            .filter(|&c| {
                let rep = cert.representative(c);
                self.null_states.contains(&StateId::new(rep.index()))
            })
            .collect();
        let quotient = TerminatedModel {
            pomdp: lumping.pomdp,
            terminate_state: cert.class_of(self.terminate_state),
            terminate_action: self.terminate_action,
            terminated_observation: self.terminated_observation,
            null_states,
            operator_response_time: self.operator_response_time,
        };
        Ok((quotient, cert))
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use bpr_pomdp::bounds::ra_values;

    /// The paper's two-server model (Fig. 1a), *without* making Null
    /// absorbing — the raw recovery model both transforms start from.
    /// Unit "time" per action; Observe is free in Null.
    pub(crate) fn two_server_model() -> RecoveryModel {
        let mut mb = MdpBuilder::new(3, 3);
        mb.state_label(0, "Fault(a)")
            .state_label(1, "Fault(b)")
            .state_label(2, "Null");
        mb.action_label(0, "Restart(a)")
            .action_label(1, "Restart(b)")
            .action_label(2, "Observe");
        mb.transition(0, 0, 2, 1.0).reward(0, 0, -0.5);
        mb.transition(1, 0, 1, 1.0).reward(1, 0, -1.0);
        mb.transition(2, 0, 2, 1.0).reward(2, 0, -0.5);
        mb.transition(0, 1, 0, 1.0).reward(0, 1, -1.0);
        mb.transition(1, 1, 2, 1.0).reward(1, 1, -0.5);
        mb.transition(2, 1, 2, 1.0).reward(2, 1, -0.5);
        mb.transition(0, 2, 0, 1.0).reward(0, 2, -1.0);
        mb.transition(1, 2, 1, 1.0).reward(1, 2, -1.0);
        mb.transition(2, 2, 2, 1.0).reward(2, 2, 0.0);
        // Observations o0 = "a appears failed", o1 = "b appears failed",
        // o2 = "all clear" with mild noise.
        let mut pb = PomdpBuilder::new(mb.build().unwrap(), 3);
        for a in 0..3 {
            pb.observation(0, a, 0, 0.85)
                .observation(0, a, 1, 0.05)
                .observation(0, a, 2, 0.10);
            pb.observation(1, a, 0, 0.05)
                .observation(1, a, 1, 0.85)
                .observation(1, a, 2, 0.10);
            pb.observation(2, a, 0, 0.02)
                .observation(2, a, 1, 0.02)
                .observation(2, a, 2, 0.96);
        }
        RecoveryModel::new(
            pb.build().unwrap(),
            vec![StateId::new(2)],
            vec![-1.0, -1.0, 0.0],
            vec![ActionId::new(2)],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_conditions() {
        let model = two_server_model();
        assert_eq!(model.null_states(), &[StateId::new(2)]);
        assert_eq!(model.fault_states(), vec![StateId::new(0), StateId::new(1)]);
        assert!(model.is_null(StateId::new(2)));
        assert!(!model.is_null(StateId::new(0)));
        assert!(model.is_observe(ActionId::new(2)));
        assert!(!model.is_observe(ActionId::new(0)));
    }

    #[test]
    fn rates_are_validated() {
        let base = two_server_model().base().clone();
        // Wrong length.
        assert!(matches!(
            RecoveryModel::new(base.clone(), vec![StateId::new(2)], vec![0.0], vec![]),
            Err(Error::InvalidInput { .. })
        ));
        // Positive rate.
        assert!(matches!(
            RecoveryModel::new(
                base.clone(),
                vec![StateId::new(2)],
                vec![1.0, -1.0, 0.0],
                vec![]
            ),
            Err(Error::InvalidInput { .. })
        ));
        // Non-zero rate on a null state.
        assert!(matches!(
            RecoveryModel::new(base, vec![StateId::new(2)], vec![-1.0, -1.0, -0.5], vec![]),
            Err(Error::InvalidInput { .. })
        ));
    }

    #[test]
    fn recovery_actions_are_identified() {
        let model = two_server_model();
        assert_eq!(
            model.recovery_actions_for(StateId::new(0)),
            vec![ActionId::new(0)]
        );
        assert_eq!(
            model.cheapest_recovery_action(StateId::new(1)),
            Some(ActionId::new(1))
        );
        // The null state "recovers" under restarts and observe alike.
        assert_eq!(model.recovery_actions_for(StateId::new(2)).len(), 3);
    }

    #[test]
    fn with_notification_makes_null_absorbing_and_free() {
        let model = two_server_model();
        let p = model.with_notification().unwrap();
        assert_eq!(p.n_states(), 3);
        assert_eq!(p.n_actions(), 3);
        for a in 0..3 {
            assert_eq!(p.mdp().transition_prob(2, a, 2), 1.0);
            assert_eq!(p.mdp().reward(2, a), 0.0);
        }
        // Fault dynamics untouched.
        assert_eq!(p.mdp().transition_prob(0, 0, 2), 1.0);
        assert_eq!(p.mdp().reward(0, 0), -0.5);
        // RA-Bound now exists.
        let v = ra_values(&p, &Default::default()).unwrap();
        assert!(v[0] < 0.0 && v[2] == 0.0);
    }

    #[test]
    fn without_notification_adds_terminate_machinery() {
        let model = two_server_model();
        let t = model.without_notification(4.0).unwrap();
        let p = t.pomdp();
        assert_eq!(p.n_states(), 4);
        assert_eq!(p.n_actions(), 4);
        assert_eq!(p.n_observations(), 4);
        assert_eq!(t.terminate_state(), StateId::new(3));
        assert_eq!(t.terminate_action(), ActionId::new(3));
        assert_eq!(p.mdp().state_label(3), "Terminated");
        assert_eq!(p.mdp().action_label(3), "Terminate");
        // Termination rewards r(s, a_T) = rate * top; 0 in Null.
        assert_eq!(p.mdp().reward(0, 3), -4.0);
        assert_eq!(p.mdp().reward(1, 3), -4.0);
        assert_eq!(p.mdp().reward(2, 3), 0.0);
        assert_eq!(p.mdp().reward(3, 3), 0.0);
        // s_T absorbs under every action.
        for a in 0..4 {
            assert_eq!(p.mdp().transition_prob(3, a, 3), 1.0);
            assert_eq!(p.mdp().reward(3, a), 0.0);
        }
        // a_T sends everything to s_T.
        for s in 0..4 {
            assert_eq!(p.mdp().transition_prob(s, 3, 3), 1.0);
        }
        // RA-Bound exists on the transformed model.
        let v = ra_values(p, &Default::default()).unwrap();
        assert!(v.iter().all(|x| x.is_finite()));
        assert_eq!(v[3], 0.0);
        // Null is NOT absorbing here: restarts in Null still cost.
        assert!(v[2] < 0.0);
    }

    #[test]
    fn invalid_operator_response_time_is_rejected() {
        let model = two_server_model();
        for top in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(model.without_notification(top).is_err(), "top = {top}");
        }
    }

    #[test]
    fn extend_belief_appends_zero_mass() {
        let model = two_server_model();
        let t = model.without_notification(4.0).unwrap();
        let b = Belief::uniform(3);
        let eb = t.extend_belief(&b).unwrap();
        assert_eq!(eb.n_states(), 4);
        assert_eq!(eb.prob(StateId::new(3)), 0.0);
        assert!(t.extend_belief(&Belief::uniform(4)).is_err());
        assert!(t.is_base_action(ActionId::new(0)));
        assert!(!t.is_base_action(ActionId::new(3)));
    }

    #[test]
    fn ra_bound_diverges_on_untransformed_model() {
        // The raw model has costly restarts looping in Null forever
        // under random actions: no finite RA-Bound (motivates the
        // transforms).
        let model = two_server_model();
        assert!(ra_values(model.base(), &Default::default()).is_err());
    }

    #[test]
    fn lint_reports_are_clean_at_error_severity() {
        use bpr_lint::{LintCode, Severity};
        let model = two_server_model();
        let raw = model.lint();
        assert!(!raw.has_errors(), "{}", raw.render());
        // The raw model's uniform-random chain diverges (that is why
        // the transforms exist) — reported as info, not error.
        assert!(raw
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::DivergentRandomChain && d.severity == Severity::Info));

        let t = model.without_notification(4.0).unwrap();
        let transformed = t.lint();
        assert!(!transformed.has_errors(), "{}", transformed.render());
        // The transform repaired the divergence entirely.
        assert!(!transformed
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::DivergentRandomChain));
        assert_eq!(t.lint_context().model_name, transformed.model());
    }

    #[test]
    fn terminated_model_reports_top() {
        let model = two_server_model();
        let t = model.without_notification(7.5).unwrap();
        assert_eq!(t.operator_response_time(), 7.5);
        assert_eq!(t.null_states(), &[StateId::new(2)]);
        assert_eq!(t.terminated_observation().index(), 3);
    }
}
