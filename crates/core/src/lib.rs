//! Bounded-POMDP automatic recovery — the core contribution of
//! *Automatic Recovery Using Bounded Partially Observable Markov
//! Decision Processes* (Joshi, Hiltunen, Sanders, Schlichting; DSN
//! 2006), reimplemented as a reusable library.
//!
//! The pipeline this crate implements:
//!
//! 1. Describe the system as a *recovery model*: a POMDP whose states
//!    are faults (plus null-fault states `S_φ`), whose actions are
//!    recovery/monitoring steps, and whose observations are monitor
//!    outputs — see [`RecoveryModel`].
//! 2. Validate the paper's **Condition 1** (recovery is always
//!    possible) and **Condition 2** (rewards are costs) —
//!    [`conditions`], built on the [`lint`] static analyzer, which can
//!    also produce a complete structured diagnostic report
//!    ([`RecoveryModel::lint`] / [`TerminatedModel::lint`]).
//! 3. Apply a structural transform guaranteeing the RA-Bound exists:
//!    [`RecoveryModel::with_notification`] for systems that can detect
//!    recovery, or [`RecoveryModel::without_notification`] which adds
//!    the terminate action `a_T` with operator-response-time-derived
//!    termination rewards (§3.1).
//! 4. Compute the RA-Bound and optionally tighten it with bootstrapped
//!    incremental backups — [`bootstrap`].
//! 5. Run the online [`BoundedController`], which expands the belief
//!    tree to a small depth with the bound at the leaves and provably
//!    terminates (§4.2). Baselines from the paper's evaluation
//!    ([`baselines`]) share the same [`RecoveryController`] interface.
//!
//! # Examples
//!
//! See `examples/quickstart.rs` in the repository root for an
//! end-to-end run on the paper's two-server model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anytime;
pub mod baselines;
pub mod blueprint;
pub mod bootstrap;
mod bounded;
pub mod conditions;
mod controller;
mod error;
mod lumped;
mod model;
mod notified;
pub mod preview;
mod resilient;
pub mod scenario;
pub mod snapshot;

pub use anytime::{
    anytime_expand, anytime_expand_with_workspace, AnytimeConfig, AnytimeController,
    AnytimeDecision, AnytimeStats,
};
pub use bounded::{BoundedConfig, BoundedController};
pub use controller::{RecoveryController, ResilienceStats, Step};
pub use error::Error;
pub use lumped::LumpedController;
pub use model::{Notification, RecoveryModel, TerminatedModel};
pub use notified::{NotifiedBoundedController, NotifiedConfig};
pub use resilient::{EscalationLevel, ResilienceConfig, ResilientController};

pub use bpr_mdp::{ActionId, StateId};
pub use bpr_pomdp::{Belief, ObservationId};

/// The `bpr-lint` static model analyzer, re-exported: structured
/// diagnostics (lint code, severity, offending ids with labels, fix-it
/// hints) over any recovery-model POMDP. [`conditions`] is built on it.
pub use bpr_lint as lint;
