//! Facade over the `bpr` workspace: one dependency, one prelude.
//!
//! Downstream code (the `examples/`, scripts, external users) should
//! depend on this crate alone instead of importing six workspace
//! crates by hand:
//!
//! ```ignore
//! use bpr::prelude::*;
//!
//! let model = bpr::emn::two_server::default_model()?;
//! let mut controller = BoundedController::new(
//!     model.without_notification(50.0)?,
//!     BoundedConfig::default(),
//! )?;
//! ```
//!
//! Two layers:
//!
//! * **Module aliases** — every workspace crate re-exported under a
//!   short name (`bpr::core`, `bpr::pomdp`, `bpr::sim`, ...), so
//!   anything not in the prelude is still one path away
//!   (`bpr::pomdp::diagnosis::confusion_matrix`,
//!   `bpr::core::preview::preview`).
//! * **[`prelude`]** — the curated working set: controllers, the
//!   episode/campaign harness, model building blocks, bounds, and the
//!   RNG plumbing that nearly every program needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bpr_core as core;
pub use bpr_emn as emn;
pub use bpr_linalg as linalg;
pub use bpr_lint as lint;
pub use bpr_mdp as mdp;
pub use bpr_par as par;
pub use bpr_pomdp as pomdp;
pub use bpr_serve as serve;
pub use bpr_sim as sim;
pub use bpr_topo as topo;
pub use bpr_verify as verify;
pub use rand;

/// The scenario registry: every named model the workspace ships — the
/// paper's EMN and two-server models plus the generated `bpr-topo`
/// corpus — behind one `--scenario <name>`-style lookup surface.
pub mod scenario {
    pub use bpr_core::scenario::{
        lint_model_stages, lint_scenario, unexpected_warnings, ModelStage, Scenario,
        ScenarioRegistry,
    };

    /// The built-in registry: `emn`, `two-server`, then the generated
    /// corpus (`web3tier-small`, `cellfleet-shared-rack`,
    /// `cellfleet-mid`, `region-large`).
    ///
    /// # Panics
    ///
    /// Never — the built-in names are statically distinct (covered by
    /// tests).
    pub fn builtin() -> ScenarioRegistry {
        let mut registry = ScenarioRegistry::new();
        registry
            .register(Box::new(bpr_emn::EmnScenario::default()))
            .expect("fresh registry accepts emn");
        registry
            .register(Box::new(bpr_emn::TwoServerScenario::default()))
            .expect("fresh registry accepts two-server");
        bpr_topo::register_corpus(&mut registry).expect("built-in corpus names are distinct");
        registry
    }
}

/// The curated working set: `use bpr::prelude::*;` covers what a
/// typical recovery program touches.
pub mod prelude {
    pub use bpr_core::baselines::{
        DiagnoseThenFixController, HeuristicController, MostLikelyController, OracleController,
    };
    pub use bpr_core::blueprint::{assemble, ModelBlueprint};
    pub use bpr_core::bootstrap::{
        bootstrap, bootstrap_par, bootstrap_par_durable, bootstrap_updates, BootstrapConfig,
        BootstrapReport, BootstrapVariant, DurableBootstrapReport,
    };
    pub use bpr_core::scenario::{ModelStage, Scenario, ScenarioRegistry};
    pub use bpr_core::snapshot::{CheckpointPolicy, SnapshotError};
    pub use bpr_core::{
        ActionId, AnytimeConfig, AnytimeController, BoundedConfig, BoundedController, Error,
        NotifiedBoundedController, NotifiedConfig, RecoveryController, RecoveryModel,
        ResilienceConfig, ResilientController, StateId, Step, TerminatedModel,
    };
    pub use bpr_emn::{two_server, EmnConfig, EmnScenario, PathRouting, TwoServerScenario};
    pub use bpr_lint::{lint_pomdp, Diagnostic, LintCode, LintContext, LintReport, Severity};
    pub use bpr_mdp::chain::SolveOpts;
    pub use bpr_mdp::MdpBuilder;
    pub use bpr_par::{split_seed, Quarantined, WorkPool};
    pub use bpr_pomdp::bounds::{qmdp_bound, ra_bound, ValueBound, VectorSetBound};
    pub use bpr_pomdp::{Belief, PomdpBuilder};
    pub use bpr_serve::{
        Daemon, Frame, FrameDecoder, FrameError, IncidentStatus, Schedule, ServeConfig,
        ServeReport, SocketConfig, SocketSource, SyntheticEvents, TransportCounts,
    };
    pub use bpr_sim::{
        Campaign, CampaignReport, CampaignSummary, DegradedWorld, EpisodeOutcome, EpisodeRunner,
        HarnessConfig, PerturbationPlan, QuarantinedEpisode, World,
    };
    pub use bpr_topo::{TopoError, TopoScenario, TopologySpec, TopologySpecBuilder};
    pub use bpr_verify::{
        certified_lower_bound, mdp_ceiling, verify_controller, verify_lumped, verify_scenario,
        Oracle, OracleOpts, PolicyGraph, VerifyConfig, VerifyOutcome,
    };
    pub use rand::rngs::StdRng;
    pub use rand::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    // The facade's only job is to re-export coherently; a compile-time
    // smoke that the prelude names resolve and don't collide.
    #[allow(unused_imports)]
    use super::prelude::*;

    #[test]
    fn prelude_names_resolve() {
        let model = two_server::default_model().unwrap();
        let mut controller = OracleController::new(model.clone());
        let mut rng = StdRng::seed_from_stream(1, 0);
        let out = EpisodeRunner::new(&model)
            .run_with_rng(&mut controller, StateId::new(two_server::FAULT_A), &mut rng)
            .unwrap();
        assert!(out.recovered && out.terminated);
        assert_eq!(crate::emn::two_server::FAULT_A, two_server::FAULT_A);
        assert!(WorkPool::new(2).unwrap().threads() == 2);
        let report: LintReport = lint_pomdp(model.base(), &model.lint_context());
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn builtin_registry_serves_paper_models_and_the_corpus() {
        let registry = crate::scenario::builtin();
        assert_eq!(
            registry.names(),
            vec![
                "emn",
                "two-server",
                "web3tier-small",
                "cellfleet-shared-rack",
                "cellfleet-mid",
                "region-large"
            ]
        );
        let scenario = registry.require("web3tier-small").unwrap();
        let model = scenario.build().unwrap();
        assert!(model.base().n_states() >= 100);
        assert!(!scenario.fault_population(&model).is_empty());
        // A spec built through the prelude surface feeds the same API.
        let spec = TopologySpec::builder()
            .tier("web", 2, 2, 60.0)
            .hosts(2)
            .racks(1)
            .build()
            .unwrap();
        let small = crate::topo::compile(&spec).unwrap();
        assert!(small.base().n_states() > 1);
    }

    #[test]
    fn serve_names_resolve() {
        let model = two_server::default_model().unwrap();
        let mut daemon = Daemon::new(&model, ServeConfig::default()).unwrap();
        let mut source = SyntheticEvents::new(
            1,
            Schedule::Steady { per_tick: 1 },
            vec![StateId::new(two_server::FAULT_A)],
            3,
        )
        .unwrap();
        let report: ServeReport = daemon.run(&mut source).unwrap();
        assert_eq!(report.lost_incidents(), 0);
        assert_eq!(report.count(IncidentStatus::Recovered), report.admitted);
    }
}
