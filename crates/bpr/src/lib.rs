//! Facade over the `bpr` workspace: one dependency, one prelude.
//!
//! Downstream code (the `examples/`, scripts, external users) should
//! depend on this crate alone instead of importing six workspace
//! crates by hand:
//!
//! ```ignore
//! use bpr::prelude::*;
//!
//! let model = bpr::emn::two_server::default_model()?;
//! let mut controller = BoundedController::new(
//!     model.without_notification(50.0)?,
//!     BoundedConfig::default(),
//! )?;
//! ```
//!
//! Two layers:
//!
//! * **Module aliases** — every workspace crate re-exported under a
//!   short name (`bpr::core`, `bpr::pomdp`, `bpr::sim`, ...), so
//!   anything not in the prelude is still one path away
//!   (`bpr::pomdp::diagnosis::confusion_matrix`,
//!   `bpr::core::preview::preview`).
//! * **[`prelude`]** — the curated working set: controllers, the
//!   episode/campaign harness, model building blocks, bounds, and the
//!   RNG plumbing that nearly every program needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bpr_core as core;
pub use bpr_emn as emn;
pub use bpr_linalg as linalg;
pub use bpr_lint as lint;
pub use bpr_mdp as mdp;
pub use bpr_par as par;
pub use bpr_pomdp as pomdp;
pub use bpr_serve as serve;
pub use bpr_sim as sim;
pub use rand;

/// The curated working set: `use bpr::prelude::*;` covers what a
/// typical recovery program touches.
pub mod prelude {
    pub use bpr_core::baselines::{
        DiagnoseThenFixController, HeuristicController, MostLikelyController, OracleController,
    };
    pub use bpr_core::bootstrap::{
        bootstrap, bootstrap_par, bootstrap_par_durable, bootstrap_updates, BootstrapConfig,
        BootstrapReport, BootstrapVariant, DurableBootstrapReport,
    };
    pub use bpr_core::snapshot::{CheckpointPolicy, SnapshotError};
    pub use bpr_core::{
        ActionId, AnytimeConfig, AnytimeController, BoundedConfig, BoundedController, Error,
        NotifiedBoundedController, NotifiedConfig, RecoveryController, RecoveryModel,
        ResilienceConfig, ResilientController, StateId, Step, TerminatedModel,
    };
    pub use bpr_emn::{two_server, EmnConfig, PathRouting};
    pub use bpr_lint::{lint_pomdp, Diagnostic, LintCode, LintContext, LintReport, Severity};
    pub use bpr_mdp::chain::SolveOpts;
    pub use bpr_mdp::MdpBuilder;
    pub use bpr_par::{split_seed, Quarantined, WorkPool};
    pub use bpr_pomdp::bounds::{qmdp_bound, ra_bound, ValueBound, VectorSetBound};
    pub use bpr_pomdp::{Belief, PomdpBuilder};
    pub use bpr_serve::{
        Daemon, IncidentStatus, Schedule, ServeConfig, ServeReport, SyntheticEvents,
    };
    pub use bpr_sim::{
        Campaign, CampaignReport, CampaignSummary, DegradedWorld, EpisodeOutcome, EpisodeRunner,
        HarnessConfig, PerturbationPlan, QuarantinedEpisode, World,
    };
    pub use rand::rngs::StdRng;
    pub use rand::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    // The facade's only job is to re-export coherently; a compile-time
    // smoke that the prelude names resolve and don't collide.
    #[allow(unused_imports)]
    use super::prelude::*;

    #[test]
    fn prelude_names_resolve() {
        let model = two_server::default_model().unwrap();
        let mut controller = OracleController::new(model.clone());
        let mut rng = StdRng::seed_from_stream(1, 0);
        let out = EpisodeRunner::new(&model)
            .run_with_rng(&mut controller, StateId::new(two_server::FAULT_A), &mut rng)
            .unwrap();
        assert!(out.recovered && out.terminated);
        assert_eq!(crate::emn::two_server::FAULT_A, two_server::FAULT_A);
        assert!(WorkPool::new(2).unwrap().threads() == 2);
        let report: LintReport = lint_pomdp(model.base(), &model.lint_context());
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn serve_names_resolve() {
        let model = two_server::default_model().unwrap();
        let mut daemon = Daemon::new(&model, ServeConfig::default()).unwrap();
        let mut source = SyntheticEvents::new(
            1,
            Schedule::Steady { per_tick: 1 },
            vec![StateId::new(two_server::FAULT_A)],
            3,
        )
        .unwrap();
        let report: ServeReport = daemon.run(&mut source).unwrap();
        assert_eq!(report.lost_incidents(), 0);
        assert_eq!(report.count(IncidentStatus::Recovered), report.admitted);
    }
}
