//! Criterion benchmark for the Figure 5 experiment: the cost of one
//! bootstrap iteration (simulate an episode + incremental backups)
//! under both variants. The paper reports that "bounds refinement took
//! only a few milliseconds" per update on a 2 GHz Athlon.

use bpr_bench::experiments::emn_model;
use bpr_core::bootstrap::{bootstrap, BootstrapConfig, BootstrapVariant};
use bpr_emn::actions::EmnAction;
use bpr_mdp::chain::SolveOpts;
use bpr_pomdp::bounds::ra_bound;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_bootstrap_iteration(c: &mut Criterion) {
    let model = emn_model().expect("model builds");
    let mut group = c.benchmark_group("fig5_bootstrap_iteration");
    for variant in [BootstrapVariant::Random, BootstrapVariant::Average] {
        group.bench_with_input(
            BenchmarkId::new("variant", format!("{variant:?}")),
            &variant,
            |b, &variant| {
                b.iter_batched(
                    || {
                        let t = model.without_notification(21_600.0).expect("transform");
                        let bound =
                            ra_bound(t.pomdp(), &SolveOpts::default()).expect("bound exists");
                        (t, bound, StdRng::seed_from_u64(9))
                    },
                    |(t, mut bound, mut rng)| {
                        bootstrap(
                            &t,
                            &mut bound,
                            &BootstrapConfig {
                                variant,
                                iterations: 1,
                                depth: 1,
                                max_steps: 40,
                                conditioning_action: EmnAction::Observe.action_id(),
                                ..BootstrapConfig::default()
                            },
                            &mut rng,
                        )
                        .expect("bootstrap succeeds")
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = fig5;
    config = Criterion::default().sample_size(10);
    targets = bench_bootstrap_iteration
}
criterion_main!(fig5);
