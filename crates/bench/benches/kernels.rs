//! Criterion benchmarks of the computational kernels: RA-Bound solve
//! (paper §4.3's off-line cost), belief updates, incremental backups,
//! the QMDP/FIB upper bounds, and whole-decision tree expansion
//! (legacy vs fused kernel) at depths 2–3.

use bpr_bench::experiments::emn_model;
use bpr_core::TerminatedModel;
use bpr_emn::actions::EmnAction;
use bpr_mdp::chain::SolveOpts;
use bpr_mdp::value_iteration::Discount;
use bpr_pomdp::backup::incremental_backup;
use bpr_pomdp::bounds::{qmdp_bound, ra_bound};
use bpr_pomdp::{tree, Belief, PlanWorkspace};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn transformed() -> TerminatedModel {
    emn_model()
        .expect("model builds")
        .without_notification(21_600.0)
        .expect("transform succeeds")
}

fn bench_ra_bound(c: &mut Criterion) {
    let t = transformed();
    c.bench_function("ra_bound_solve_emn", |b| {
        b.iter(|| ra_bound(black_box(t.pomdp()), &SolveOpts::default()).expect("bound exists"))
    });
    c.bench_function("ra_bound_solve_emn_sor_1_5", |b| {
        let opts = SolveOpts {
            omega: 1.5,
            ..SolveOpts::default()
        };
        b.iter(|| ra_bound(black_box(t.pomdp()), &opts).expect("bound exists"))
    });
}

fn bench_belief_ops(c: &mut Criterion) {
    let t = transformed();
    let pomdp = t.pomdp();
    let belief = Belief::uniform(pomdp.n_states());
    let action = EmnAction::Observe.action_id();
    c.bench_function("belief_successors_emn", |b| {
        b.iter(|| black_box(&belief).successors(pomdp, action, 1e-6))
    });
    c.bench_function("belief_update_emn", |b| {
        b.iter(|| {
            black_box(&belief)
                .update(pomdp, action, 0.into())
                .expect("all-clear is possible")
        })
    });
}

fn bench_backup(c: &mut Criterion) {
    let t = transformed();
    let belief = Belief::uniform(t.pomdp().n_states());
    c.bench_function("incremental_backup_emn", |b| {
        b.iter_batched(
            || ra_bound(t.pomdp(), &SolveOpts::default()).expect("bound exists"),
            |mut bound| {
                incremental_backup(t.pomdp(), &mut bound, &belief, 1.0).expect("backup succeeds")
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_upper_bounds(c: &mut Criterion) {
    let t = transformed();
    c.bench_function("qmdp_bound_emn", |b| {
        b.iter(|| qmdp_bound(black_box(t.pomdp()), Discount::Undiscounted).expect("qmdp exists"))
    });
}

fn bench_tree_expansion(c: &mut Criterion) {
    // Whole-decision cost at the depths the paper's controllers use.
    // Depth 3 runs at a coarser cutoff to keep the benchmark short; the
    // legacy/fused comparison stays apples-to-apples at each depth.
    let t = transformed();
    let pomdp = t.pomdp();
    let bound = ra_bound(pomdp, &SolveOpts::default()).expect("bound exists");
    let belief = Belief::uniform(pomdp.n_states());
    for (depth, cutoff) in [(2usize, 1e-3f64), (3, 1e-2)] {
        c.bench_function(&format!("tree_expand_legacy_emn_d{depth}"), |b| {
            b.iter(|| {
                tree::legacy::expand_with_cutoff(
                    pomdp,
                    black_box(&belief),
                    depth,
                    &bound,
                    1.0,
                    cutoff,
                )
                .expect("legacy expansion succeeds")
            })
        });
        c.bench_function(&format!("tree_expand_fused_emn_d{depth}"), |b| {
            let mut ws = PlanWorkspace::new();
            b.iter(|| {
                tree::expand_with_workspace(
                    pomdp,
                    black_box(&belief),
                    depth,
                    &bound,
                    1.0,
                    cutoff,
                    &mut ws,
                )
                .expect("fused expansion succeeds")
            })
        });
    }
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_ra_bound, bench_belief_ops, bench_backup, bench_upper_bounds,
        bench_tree_expansion
}
criterion_main!(kernels);
