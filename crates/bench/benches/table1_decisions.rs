//! Criterion benchmark for Table 1's "Algorithm Time" column: the time
//! each controller needs to produce one decision from the
//! all-faults-equally-likely belief. The paper's ordering —
//! most-likely ≪ heuristic-d1 ≪ bounded-d1 < heuristic-d2 ≪
//! heuristic-d3 — is the reproduction target.

use bpr_bench::experiments::emn_model;
use bpr_core::baselines::{HeuristicController, MostLikelyController};
use bpr_core::bootstrap::{bootstrap, BootstrapConfig, BootstrapVariant};
use bpr_core::{BoundedConfig, BoundedController, RecoveryController};
use bpr_emn::actions::EmnAction;
use bpr_mdp::chain::SolveOpts;
use bpr_pomdp::bounds::ra_bound;
use bpr_pomdp::Belief;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn initial_belief(n: usize) -> Belief {
    // All faults equally likely (states 1..n are the 13 faults).
    let faults: Vec<_> = (1..n).map(bpr_mdp::StateId::new).collect();
    Belief::uniform_over(n, &faults)
}

fn bench_decisions(c: &mut Criterion) {
    let model = emn_model().expect("model builds");
    let n = model.base().n_states();
    let mut group = c.benchmark_group("table1_decision_time");

    group.bench_function("most_likely", |b| {
        let mut ctrl = MostLikelyController::new(model.clone(), 0.9999).expect("controller");
        b.iter(|| {
            ctrl.begin(initial_belief(n), None).expect("begin");
            ctrl.decide().expect("decide")
        })
    });

    for depth in [1usize, 2, 3] {
        group.bench_function(format!("heuristic_d{depth}"), |b| {
            let mut ctrl = HeuristicController::new(model.clone(), depth, 0.9999)
                .expect("controller")
                .with_gamma_cutoff(1e-3);
            b.iter(|| {
                ctrl.begin(initial_belief(n), None).expect("begin");
                ctrl.decide().expect("decide")
            })
        });
    }

    group.bench_function("bounded_d1", |b| {
        let t = model.without_notification(21_600.0).expect("transform");
        let mut bound = ra_bound(t.pomdp(), &SolveOpts::default()).expect("bound");
        let mut rng = StdRng::seed_from_u64(7);
        bootstrap(
            &t,
            &mut bound,
            &BootstrapConfig {
                variant: BootstrapVariant::Average,
                iterations: 10,
                depth: 2,
                max_steps: 40,
                conditioning_action: EmnAction::Observe.action_id(),
                ..BootstrapConfig::default()
            },
            &mut rng,
        )
        .expect("bootstrap");
        let mut ctrl = BoundedController::with_bound(
            t,
            bound,
            BoundedConfig {
                depth: 1,
                gamma_cutoff: 1e-3,
                ..BoundedConfig::default()
            },
        )
        .expect("controller");
        b.iter(|| {
            ctrl.begin(initial_belief(n), None).expect("begin");
            ctrl.decide().expect("decide")
        })
    });

    group.finish();
}

criterion_group! {
    name = table1;
    config = Criterion::default().sample_size(10);
    targets = bench_decisions
}
criterion_main!(table1);
