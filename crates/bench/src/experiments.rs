//! The experiments of the paper's Section 5, as reusable functions.

use bpr_core::baselines::{HeuristicController, MostLikelyController, OracleController};
use bpr_core::bootstrap::{
    bootstrap, bootstrap_updates, BootstrapConfig, BootstrapVariant, IterationRecord,
};
use bpr_core::scenario::Scenario;
use bpr_core::{
    BoundedConfig, BoundedController, Error, LumpedController, RecoveryModel, ResilienceConfig,
    ResilientController,
};
use bpr_emn::actions::EmnAction;
use bpr_emn::faults::EmnState;
use bpr_emn::EmnConfig;
use bpr_mdp::chain::SolveOpts;
use bpr_mdp::value_iteration::Discount;
use bpr_pomdp::bounds::{bi_pomdp_bound, blind_bound, fib_bound, qmdp_bound, ra_bound, ValueBound};
use bpr_pomdp::Belief;
use bpr_sim::{Campaign, CampaignSummary, PerturbationCounts, PerturbationPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the paper's EMN model with default parameters.
///
/// # Errors
///
/// Never fails for the default configuration; the `Result` propagates
/// the generator's validation.
pub fn emn_model() -> Result<RecoveryModel, Error> {
    bpr_emn::build_model(&EmnConfig::default())
}

/// One bootstrap-variant series of Figure 5 (both panels share it:
/// 5(a) plots `-bound_at_uniform`, 5(b) plots `n_vectors`).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Series {
    /// Which bootstrapping variant produced the series.
    pub variant: BootstrapVariant,
    /// Per-iteration bound value and vector count.
    pub records: Vec<IterationRecord>,
}

/// Runs the Figure 5 experiment: iterative lower-bound improvement on
/// the EMN model under the Random and Average bootstrap variants, with
/// tree depth 1 (paper §5, first experiment set).
///
/// Uses the paper's per-update counting (one incremental backup per
/// iteration, so Fig. 5(b)'s at-most-linear vector growth holds by
/// construction).
///
/// # Errors
///
/// Propagates model construction and bootstrap failures.
pub fn fig5(iterations: usize, seed: u64) -> Result<Vec<Fig5Series>, Error> {
    let model = emn_model()?;
    let config = EmnConfig::default();
    let mut out = Vec::new();
    for variant in [BootstrapVariant::Random, BootstrapVariant::Average] {
        let transformed = model.without_notification(config.operator_response_time)?;
        let mut bound =
            ra_bound(transformed.pomdp(), &SolveOpts::default()).map_err(Error::Pomdp)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let report = bootstrap_updates(
            &transformed,
            &mut bound,
            &BootstrapConfig {
                variant,
                iterations,
                depth: 1,
                max_steps: 40,
                conditioning_action: EmnAction::Observe.action_id(),
                ..BootstrapConfig::default()
            },
            &mut rng,
        )?;
        out.push(Fig5Series {
            variant,
            records: report.records,
        });
    }
    Ok(out)
}

/// Configuration of the Table 1 fault-injection comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Config {
    /// Fault injections per controller (paper: 10 000).
    pub episodes: usize,
    /// RNG seed.
    pub seed: u64,
    /// Termination probability for the most-likely and heuristic
    /// controllers (paper: 0.9999).
    pub p_term: f64,
    /// Tree depths for the heuristic controllers (paper: 1, 2, 3).
    pub heuristic_depths: Vec<usize>,
    /// Bootstrap episodes for the bounded controller (paper: 10).
    pub bootstrap_runs: usize,
    /// Bootstrap tree depth (paper: 2).
    pub bootstrap_depth: usize,
    /// Observation-branch pruning cutoff for the tree-based
    /// controllers.
    pub gamma_cutoff: f64,
    /// Step cap per episode.
    pub max_steps: usize,
    /// Worker threads for the campaigns (results are thread-count
    /// independent; this only changes wall-clock time).
    pub threads: usize,
}

impl Default for Table1Config {
    fn default() -> Table1Config {
        Table1Config {
            episodes: 300,
            seed: 7,
            p_term: 0.9999,
            heuristic_depths: vec![1, 2, 3],
            bootstrap_runs: 10,
            bootstrap_depth: 2,
            gamma_cutoff: 1e-3,
            max_steps: 400,
            threads: 1,
        }
    }
}

/// Runs the Table 1 experiment: zombie-only fault injection on the EMN
/// model, comparing most-likely, heuristic (at the configured depths),
/// bounded (depth 1, bootstrapped), and Oracle controllers.
///
/// Returns the rows in the paper's order.
///
/// # Errors
///
/// Propagates model, bootstrap, and campaign failures.
pub fn table1(config: &Table1Config) -> Result<Vec<CampaignSummary>, Error> {
    let model = emn_model()?;
    let zombies: Vec<_> = EmnState::zombies().iter().map(|s| s.state_id()).collect();
    // One campaign session shared by every row: identical fault
    // sequence and per-episode seed streams, so the rows differ only by
    // controller. Expensive prototypes (the bootstrapped bounded
    // controller) are built once and cloned per episode.
    let campaign = Campaign::new(&model)
        .population(&zombies)
        .episodes(config.episodes)
        .max_steps(config.max_steps)
        .seed(config.seed)
        .threads(config.threads);
    let mut rows = Vec::new();

    // Most-likely.
    {
        let mut summary = campaign
            .clone()
            .run(|_| MostLikelyController::new(model.clone(), config.p_term))?
            .summary;
        summary.controller = "most-likely".into();
        rows.push(summary);
    }
    // Heuristic at each depth.
    for &depth in &config.heuristic_depths {
        let proto = HeuristicController::new(model.clone(), depth, config.p_term)?
            .with_gamma_cutoff(config.gamma_cutoff);
        let mut summary = campaign.clone().run(|_| Ok(proto.clone()))?.summary;
        summary.controller = format!("heuristic-d{depth}");
        rows.push(summary);
    }
    // Bounded, depth 1, bootstrapped.
    {
        let proto = table1_bounded_prototype(&model, config)?;
        let mut summary = campaign.clone().run(|_| Ok(proto.clone()))?.summary;
        summary.controller = "bounded-d1".into();
        rows.push(summary);
    }
    // Oracle.
    {
        let mut summary = campaign
            .clone()
            .run(|_| Ok(OracleController::new(model.clone())))?
            .summary;
        summary.controller = "oracle".into();
        rows.push(summary);
    }
    Ok(rows)
}

/// The Table 1 bounded controller: RA-Bound tightened by the paper's
/// bootstrap schedule, expanded at depth 1, with capped vector storage.
fn table1_bounded_prototype(
    model: &RecoveryModel,
    config: &Table1Config,
) -> Result<BoundedController, Error> {
    let emn_config = EmnConfig::default();
    let transformed = model.without_notification(emn_config.operator_response_time)?;
    let mut bound = ra_bound(transformed.pomdp(), &SolveOpts::default()).map_err(Error::Pomdp)?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    bootstrap(
        &transformed,
        &mut bound,
        &BootstrapConfig {
            variant: BootstrapVariant::Average,
            iterations: config.bootstrap_runs,
            depth: config.bootstrap_depth,
            max_steps: 40,
            conditioning_action: EmnAction::Observe.action_id(),
            ..BootstrapConfig::default()
        },
        &mut rng,
    )?;
    BoundedController::with_bound(
        transformed,
        bound,
        BoundedConfig {
            depth: 1,
            gamma_cutoff: config.gamma_cutoff,
            // Paper §4.3: finite storage for the bound vectors keeps
            // per-decision cost flat across a long campaign.
            vector_cap: Some(64),
            ..BoundedConfig::default()
        },
    )
}

/// Existence and value of each bound on a model, at the uniform belief.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundReport {
    /// Bound name.
    pub name: &'static str,
    /// `Some(value at the uniform belief)` if the bound exists, `None`
    /// if it diverges on this model.
    pub value_at_uniform: Option<f64>,
    /// Number of hyperplanes (0 for divergent bounds).
    pub n_vectors: usize,
}

/// Compares the RA-Bound with the prior-art bounds of §3.1 (BI-POMDP,
/// blind policy) and the upper bounds (QMDP, FIB) on the transformed
/// EMN model, demonstrating which exist under the undiscounted
/// criterion.
///
/// `notified` selects the transform: `true` makes `S_φ` absorbing
/// (systems with recovery notification), `false` adds the terminate
/// action.
///
/// # Errors
///
/// Propagates model-construction failures (bound divergence is data,
/// not an error, here).
pub fn bounds_comparison(notified: bool) -> Result<Vec<BoundReport>, Error> {
    let model = emn_model()?;
    let config = EmnConfig::default();
    let pomdp = if notified {
        model.with_notification()?
    } else {
        model
            .without_notification(config.operator_response_time)?
            .pomdp()
            .clone()
    };
    let uniform = Belief::uniform(pomdp.n_states());
    let opts = SolveOpts::default();
    let mut reports = Vec::new();

    let mut push =
        |name: &'static str,
         result: Result<bpr_pomdp::bounds::VectorSetBound, bpr_pomdp::Error>| {
            match result {
                Ok(set) => reports.push(BoundReport {
                    name,
                    value_at_uniform: Some(set.value(&uniform)),
                    n_vectors: set.len(),
                }),
                Err(_) => reports.push(BoundReport {
                    name,
                    value_at_uniform: None,
                    n_vectors: 0,
                }),
            }
        };
    push("RA-Bound (lower)", ra_bound(&pomdp, &opts));
    push(
        "BI-POMDP (lower)",
        bi_pomdp_bound(&pomdp, Discount::Undiscounted),
    );
    push(
        "blind policy (lower)",
        blind_bound(&pomdp, Discount::Undiscounted, &opts),
    );
    push("QMDP (upper)", qmdp_bound(&pomdp, Discount::Undiscounted));
    push(
        "FIB (upper)",
        fib_bound(&pomdp, Discount::Undiscounted, &Default::default()),
    );
    Ok(reports)
}

/// Configuration of the robustness sweep (degraded-world extension):
/// action-failure probability × monitor-dropout rate grid on the EMN
/// model, zombie faults only.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessConfig {
    /// Fault injections per controller per grid cell.
    pub episodes: usize,
    /// RNG seed (drives both the episode stream and, mixed with the
    /// grid coordinates, the perturbation-plan streams).
    pub seed: u64,
    /// Termination probability for the most-likely / heuristic
    /// baselines.
    pub p_term: f64,
    /// Observation-branch pruning cutoff for the tree-based
    /// controllers.
    pub gamma_cutoff: f64,
    /// Step cap per episode.
    pub max_steps: usize,
    /// Action-failure probabilities to sweep.
    pub failure_probs: Vec<f64>,
    /// Monitor-dropout probabilities to sweep.
    pub dropout_probs: Vec<f64>,
    /// Observation-corruption probability applied in every cell.
    pub obs_corruption_prob: f64,
    /// Per-step secondary-fault probability applied in every cell.
    pub secondary_fault_prob: f64,
    /// Cap on secondary faults per episode.
    pub max_secondary_faults: usize,
    /// Bootstrap episodes for the bounded controller (the paper's
    /// Table 1 schedule: 10).
    pub bootstrap_iters: usize,
    /// Bootstrap tree depth (paper: 2 — the right setting for the
    /// 14-state EMN model; drop to 1 for the 10³+-state generated
    /// scenarios, where depth-2 backups are prohibitively wide).
    pub bootstrap_depth: usize,
    /// Worker threads for the campaigns (results are thread-count
    /// independent; this only changes wall-clock time).
    pub threads: usize,
    /// Plan the bounded rows on the lumped quotient (see
    /// [`bootstrapped_bounded_lumped`]); rows are renamed with a
    /// `+lump` suffix so results never silently mix regimes.
    pub lump: bool,
}

impl Default for RobustnessConfig {
    fn default() -> RobustnessConfig {
        RobustnessConfig {
            episodes: 60,
            seed: 7,
            p_term: 0.9999,
            gamma_cutoff: 1e-3,
            max_steps: 400,
            failure_probs: vec![0.0, 0.2],
            dropout_probs: vec![0.0, 0.1],
            obs_corruption_prob: 0.0,
            secondary_fault_prob: 0.0,
            max_secondary_faults: 0,
            bootstrap_iters: 10,
            bootstrap_depth: 2,
            threads: 1,
            lump: false,
        }
    }
}

/// One controller's results at one grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessRow {
    /// The campaign averages (aborted episodes enter as
    /// unrecovered/unterminated with zeroed metrics).
    pub summary: CampaignSummary,
    /// Episodes the controller *aborted* (returned an error, e.g. a
    /// belief update refusing an impossible observation) instead of
    /// terminating.
    pub aborted: usize,
    /// Episodes whose controller panicked and was quarantined by the
    /// isolation layer (a subset of `aborted`).
    pub quarantined: usize,
    /// Perturbations the degraded world actually inflicted, summed
    /// over the campaign and broken down by fault mode — the sweep's
    /// analogue of the serve daemon's typed shed counters.
    pub perturbations: PerturbationCounts,
}

/// All controllers' results at one grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessCell {
    /// Probability that a non-observe action silently failed.
    pub action_failure_prob: f64,
    /// Probability that a monitor observation was dropped.
    pub monitor_dropout_prob: f64,
    /// One row per controller, in sweep order.
    pub rows: Vec<RobustnessRow>,
}

/// The bootstrapped depth-1 bounded controller of the Table 1
/// experiment, reconstructed for robustness sweeps and the scaling
/// benchmark — for any recovery model. The bootstrap conditions on
/// the model's first observe action; `operator_response_time` feeds
/// the §3.1 no-notification transform (registry scenarios carry it as
/// [`Scenario::operator_response_time`]).
///
/// # Errors
///
/// Propagates transform, bound, and bootstrap failures; rejects
/// models without an observe action.
pub fn bootstrapped_bounded_d1_for(
    model: &RecoveryModel,
    operator_response_time: f64,
    seed: u64,
    gamma_cutoff: f64,
) -> Result<BoundedController, Error> {
    bootstrapped_bounded(model, operator_response_time, seed, gamma_cutoff, 10, 2)
}

/// [`bootstrapped_bounded_d1_for`] with an explicit bootstrap schedule
/// — `iterations` episodes at tree depth `depth`. The paper's Table 1
/// schedule (10 × depth 2) fits the 14-state EMN model; depth-2
/// backups grow with `|A| · |O|` per level, so the 10³+-state
/// generated scenarios want depth 1.
///
/// # Errors
///
/// Propagates transform, bound, and bootstrap failures; rejects
/// models without an observe action.
pub fn bootstrapped_bounded(
    model: &RecoveryModel,
    operator_response_time: f64,
    seed: u64,
    gamma_cutoff: f64,
    iterations: usize,
    depth: usize,
) -> Result<BoundedController, Error> {
    let conditioning =
        model
            .observe_actions()
            .first()
            .copied()
            .ok_or_else(|| Error::InvalidInput {
                detail: "bootstrapped bounded controller needs an observe action to condition on"
                    .to_string(),
            })?;
    let transformed = model.without_notification(operator_response_time)?;
    let mut bound = ra_bound(transformed.pomdp(), &SolveOpts::default()).map_err(Error::Pomdp)?;
    let mut rng = StdRng::seed_from_u64(seed);
    bootstrap(
        &transformed,
        &mut bound,
        &BootstrapConfig {
            variant: BootstrapVariant::Average,
            iterations,
            depth,
            max_steps: 40,
            conditioning_action: conditioning,
            ..BootstrapConfig::default()
        },
        &mut rng,
    )?;
    // The default startup vertex sweeps repair the raw RA-Bound for an
    // *un-bootstrapped* controller; here the bound is already
    // bootstrap-refined, and at 10³+ states two full sweeps of
    // point-belief backups dominate construction (minutes of
    // single-threaded work for the cellfleet/region scenarios). Keep
    // them only where they are cheap: paper-scale models.
    let startup_vertex_sweeps = if transformed.pomdp().n_states() > STARTUP_SWEEP_STATE_CAP {
        0
    } else {
        BoundedConfig::default().startup_vertex_sweeps
    };
    BoundedController::with_bound(
        transformed,
        bound,
        BoundedConfig {
            depth: 1,
            gamma_cutoff,
            vector_cap: Some(64),
            startup_vertex_sweeps,
            ..BoundedConfig::default()
        },
    )
}

/// Largest transformed state count that still gets the default startup
/// vertex sweeps in [`bootstrapped_bounded`]. Covers every paper-scale
/// model (EMN is well under 100 states after the §3.1 transform) while
/// skipping the quadratic sweep cost on the generated corpus.
const STARTUP_SWEEP_STATE_CAP: usize = 256;

/// [`bootstrapped_bounded`] planning on the lumped quotient: the
/// transformed model is aggregated through
/// [`bpr_core::TerminatedModel::lump`], the RA-Bound and bootstrap run
/// on the (smaller) quotient, and the result is wrapped in a
/// [`LumpedController`] so it speaks the full model's belief
/// vocabulary in campaigns. When the model has no aliased monitors the
/// lump is the identity and this is behaviourally
/// [`bootstrapped_bounded`] under another name.
///
/// The startup-sweep cap is checked on the *quotient* state count —
/// aggregation can pull a corpus-scale model back under it.
///
/// # Errors
///
/// Propagates transform, lump, bound, and bootstrap failures; rejects
/// models without an observe action.
pub fn bootstrapped_bounded_lumped(
    model: &RecoveryModel,
    operator_response_time: f64,
    seed: u64,
    gamma_cutoff: f64,
    iterations: usize,
    depth: usize,
) -> Result<LumpedController<BoundedController>, Error> {
    let conditioning =
        model
            .observe_actions()
            .first()
            .copied()
            .ok_or_else(|| Error::InvalidInput {
                detail: "bootstrapped bounded controller needs an observe action to condition on"
                    .to_string(),
            })?;
    let transformed = model.without_notification(operator_response_time)?;
    let (quotient, certificate) = transformed.lump()?;
    let mut bound = ra_bound(quotient.pomdp(), &SolveOpts::default()).map_err(Error::Pomdp)?;
    let mut rng = StdRng::seed_from_u64(seed);
    bootstrap(
        &quotient,
        &mut bound,
        &BootstrapConfig {
            variant: BootstrapVariant::Average,
            iterations,
            depth,
            max_steps: 40,
            conditioning_action: conditioning,
            ..BootstrapConfig::default()
        },
        &mut rng,
    )?;
    let startup_vertex_sweeps = if quotient.pomdp().n_states() > STARTUP_SWEEP_STATE_CAP {
        0
    } else {
        BoundedConfig::default().startup_vertex_sweeps
    };
    let inner = BoundedController::with_bound(
        quotient,
        bound,
        BoundedConfig {
            depth: 1,
            gamma_cutoff,
            vector_cap: Some(64),
            startup_vertex_sweeps,
            ..BoundedConfig::default()
        },
    )?;
    Ok(LumpedController::new(inner, certificate))
}

/// Sweeps action-failure probability × monitor-dropout rate on a
/// registry scenario's model (its declared fault population),
/// comparing the most-likely, heuristic (depth 1), and bounded (depth
/// 1, bootstrapped) controllers against the hardened
/// `resilient-bounded` decorator. Reports recovery rate, cost, and
/// escalation counters per cell.
///
/// Each cell is an abort-tolerant [`Campaign`]: an episode whose
/// controller errors out (instead of terminating) enters the summary
/// as unrecovered/unterminated with zeroed metrics and is counted in
/// [`RobustnessRow::aborted`] — controllers built for the idealised
/// model *do* abort in degraded worlds, and that failure mode is data.
///
/// # Errors
///
/// Propagates model and controller *construction* failures; in-episode
/// controller aborts are recorded in the rows instead.
pub fn robustness_sweep_for(
    scenario: &dyn Scenario,
    config: &RobustnessConfig,
) -> Result<Vec<RobustnessCell>, Error> {
    let model = scenario.build()?;
    let population = scenario.fault_population(&model);
    let base = Campaign::new(&model)
        .population(&population)
        .episodes(config.episodes)
        .max_steps(config.max_steps)
        .seed(config.seed)
        .threads(config.threads)
        .abort_tolerant(true);
    let mut cells = Vec::new();
    for (fi, &failure) in config.failure_probs.iter().enumerate() {
        for (di, &dropout) in config.dropout_probs.iter().enumerate() {
            let plan = PerturbationPlan {
                // Distinct stream per cell, reproducible from the seed.
                seed: config
                    .seed
                    .wrapping_add(((fi * 1000 + di) as u64).wrapping_mul(0xA24B_AED4_963E_E407)),
                action_failure_prob: failure,
                monitor_dropout_prob: dropout,
                obs_corruption_prob: config.obs_corruption_prob,
                secondary_fault_prob: config.secondary_fault_prob,
                max_secondary_faults: config.max_secondary_faults,
                secondary_faults: Vec::new(),
            };
            // Reject bad grid points up front with a clear error instead
            // of one tangled in the per-controller campaign results.
            plan.validate(&model)?;
            let campaign = base.clone().degraded(&plan);
            let mut rows = Vec::new();
            let mut push = |report: bpr_sim::CampaignReport, name: &str| {
                let mut summary = report.summary;
                summary.controller = name.to_string();
                let mut perturbations = PerturbationCounts::default();
                for outcome in &report.outcomes {
                    perturbations.failed_actions += outcome.perturbations.failed_actions;
                    perturbations.dropped_observations +=
                        outcome.perturbations.dropped_observations;
                    perturbations.corrupted_observations +=
                        outcome.perturbations.corrupted_observations;
                    perturbations.injected_faults += outcome.perturbations.injected_faults;
                }
                rows.push(RobustnessRow {
                    summary,
                    aborted: report.aborted,
                    quarantined: report.quarantined.len(),
                    perturbations,
                });
            };

            push(
                campaign
                    .clone()
                    .run(|_| MostLikelyController::new(model.clone(), config.p_term))?,
                "most-likely",
            );
            let h1 = HeuristicController::new(model.clone(), 1, config.p_term)?
                .with_gamma_cutoff(config.gamma_cutoff);
            push(campaign.clone().run(|_| Ok(h1.clone()))?, "heuristic-d1");
            if config.lump {
                let bounded = bootstrapped_bounded_lumped(
                    &model,
                    scenario.operator_response_time(),
                    config.seed,
                    config.gamma_cutoff,
                    config.bootstrap_iters,
                    config.bootstrap_depth,
                )?;
                push(
                    campaign.clone().run(|_| Ok(bounded.clone()))?,
                    "bounded-d1+lump",
                );
                let hardened = ResilientController::new(
                    model.clone(),
                    bounded.clone(),
                    ResilienceConfig {
                        max_steps: config.max_steps,
                        ..ResilienceConfig::default()
                    },
                )?;
                push(
                    campaign.clone().run(|_| Ok(hardened.clone()))?,
                    "resilient-bounded-d1+lump",
                );
            } else {
                let bounded = bootstrapped_bounded(
                    &model,
                    scenario.operator_response_time(),
                    config.seed,
                    config.gamma_cutoff,
                    config.bootstrap_iters,
                    config.bootstrap_depth,
                )?;
                push(campaign.clone().run(|_| Ok(bounded.clone()))?, "bounded-d1");
                let hardened = ResilientController::new(
                    model.clone(),
                    bounded.clone(),
                    ResilienceConfig {
                        max_steps: config.max_steps,
                        ..ResilienceConfig::default()
                    },
                )?;
                push(
                    campaign.clone().run(|_| Ok(hardened.clone()))?,
                    "resilient-bounded-d1",
                );
            }

            cells.push(RobustnessCell {
                action_failure_prob: failure,
                monitor_dropout_prob: dropout,
                rows,
            });
        }
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_produces_monotone_series() {
        let series = fig5(5, 3).unwrap();
        assert_eq!(series.len(), 2);
        for s in &series {
            assert_eq!(s.records.len(), 5);
            let mut prev = f64::NEG_INFINITY;
            for r in &s.records {
                assert!(r.bound_at_uniform + 1e-9 >= prev, "{:?}", s.variant);
                prev = r.bound_at_uniform;
                assert!(r.n_vectors >= 1);
            }
        }
    }

    #[test]
    fn bounds_comparison_matches_the_papers_claims() {
        // With recovery notification: RA exists, BI and blind diverge.
        let with = bounds_comparison(true).unwrap();
        let get = |reports: &[BoundReport], name: &str| {
            reports
                .iter()
                .find(|r| r.name.starts_with(name))
                .cloned()
                .unwrap()
        };
        assert!(get(&with, "RA-Bound").value_at_uniform.is_some());
        assert!(get(&with, "BI-POMDP").value_at_uniform.is_none());
        assert!(get(&with, "blind policy").value_at_uniform.is_none());
        assert!(get(&with, "QMDP").value_at_uniform.is_some());

        // Without recovery notification: the terminate action makes the
        // blind bound finite too; BI still diverges.
        let without = bounds_comparison(false).unwrap();
        assert!(get(&without, "RA-Bound").value_at_uniform.is_some());
        assert!(get(&without, "BI-POMDP").value_at_uniform.is_none());
        assert!(get(&without, "blind policy").value_at_uniform.is_some());

        // Sandwich: RA <= FIB <= QMDP at the uniform belief.
        let ra = get(&without, "RA-Bound").value_at_uniform.unwrap();
        let qmdp = get(&without, "QMDP").value_at_uniform.unwrap();
        let fib = get(&without, "FIB").value_at_uniform.unwrap();
        assert!(ra <= fib + 1e-6);
        assert!(fib <= qmdp + 1e-6);
    }

    #[test]
    fn table1_small_run_has_expected_shape() {
        let config = Table1Config {
            episodes: 12,
            heuristic_depths: vec![1],
            ..Table1Config::default()
        };
        let rows = table1(&config).unwrap();
        assert_eq!(rows.len(), 4); // most-likely, heuristic-d1, bounded, oracle
        for row in &rows {
            assert_eq!(row.episodes, 12);
            assert_eq!(
                row.unterminated, 0,
                "{} failed to terminate",
                row.controller
            );
            assert_eq!(
                row.unrecovered, 0,
                "{} quit before recovery",
                row.controller
            );
        }
        let oracle = rows.iter().find(|r| r.controller == "oracle").unwrap();
        for row in &rows {
            assert!(
                row.mean_cost + 1e-9 >= oracle.mean_cost,
                "{} beat the oracle",
                row.controller
            );
        }
    }
}
