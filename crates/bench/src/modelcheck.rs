//! The `modelcheck` static-analysis gate: lints every registered
//! scenario's model (raw and after both §3.1 transforms) with
//! `bpr-lint` and bundles the reports — plus the full lint catalog —
//! into one JSON document for CI artifact upload.
//!
//! The library half lives here so the integration tests can exercise
//! the exact logic the `modelcheck` binary ships: [`lint_scenarios`]
//! over the built-in registry must come back clean at error severity
//! (with no warnings outside each scenario's allowlist), and
//! [`broken_fixture`] — a deliberately corrupted model — must not.

use bpr_core::lint::{lint_pomdp, LintContext, LintReport, Termination};
use bpr_core::scenario::{
    lint_scenario, unexpected_warnings, ModelStage, Scenario, ScenarioRegistry,
};
use bpr_core::Error;
use bpr_mdp::MdpBuilder;
use bpr_pomdp::PomdpBuilder;
use std::fmt::Write as _;

/// One scenario × pipeline-stage lint result: the row shape of the
/// `MODELCHECK.json` bundle, with the scenario name carried as data
/// instead of being mangled into the report title.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Registry name of the scenario (`"broken-fixture"` for the
    /// demonstration fixture).
    pub scenario: String,
    /// Pipeline stage label (`"raw"`, `"with-notification"`,
    /// `"no-notification"`).
    pub stage: String,
    /// Warnings not covered by the scenario's
    /// [`Scenario::expected_warnings`] allowlist — gate-relevant
    /// regressions even though they are not errors.
    pub unexpected_warnings: usize,
    /// The underlying lint report.
    pub report: LintReport,
}

/// Lints one scenario at every [`ModelStage`].
///
/// # Errors
///
/// Propagates model construction and transform failures.
pub fn lint_one(scenario: &dyn Scenario) -> Result<Vec<ScenarioReport>, Error> {
    let allow = scenario.expected_warnings();
    let reports = lint_scenario(scenario)?;
    Ok(ModelStage::ALL
        .iter()
        .zip(reports)
        .map(|(stage, report)| ScenarioReport {
            scenario: scenario.name().to_string(),
            stage: stage.label().to_string(),
            unexpected_warnings: unexpected_warnings(&report, &allow).len(),
            report,
        })
        .collect())
}

/// Lints every scenario in the registry, in registration order.
///
/// # Errors
///
/// Propagates model construction and transform failures.
pub fn lint_scenarios(registry: &ScenarioRegistry) -> Result<Vec<ScenarioReport>, Error> {
    let mut out = Vec::new();
    for scenario in registry.iter() {
        out.extend(lint_one(scenario)?);
    }
    Ok(out)
}

/// The corpus manifest: one JSON row per scenario with its dimensions
/// and build time — the CI artifact recording what the registered
/// model family spans.
///
/// # Errors
///
/// Propagates model construction failures.
pub fn manifest_json(scenarios: &[&dyn Scenario]) -> Result<String, Error> {
    let mut out = String::from("{\"scenarios\": [");
    for (i, scenario) in scenarios.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let start = std::time::Instant::now();
        let model = scenario.build()?;
        let build_seconds = start.elapsed().as_secs_f64();
        let pomdp = model.base();
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"description\": \"{}\", \"states\": {}, \"actions\": {}, \
             \"observations\": {}, \"fault_states\": {}, \"operator_response_time\": {}, \
             \"build_seconds\": {build_seconds:.6}}}",
            scenario.name(),
            scenario.description().replace('"', "'"),
            pomdp.n_states(),
            pomdp.n_actions(),
            pomdp.n_observations(),
            scenario.fault_population(&model).len(),
            scenario.operator_response_time(),
        );
    }
    out.push_str("]}\n");
    Ok(out)
}

/// A deliberately broken "recovery model" that trips a spread of lint
/// codes: a positive reward (BPR008, Condition 2), a state that cannot
/// reach the null set (BPR011, Condition 1) and is absorbing under
/// every action (BPR014), free actions outside the exempt set
/// (BPR012), a dead observation column (BPR006), malformed termination
/// machinery (BPR015), and a divergent random chain on a model claimed
/// to be transformed (BPR019, error at this stage).
///
/// Built straight through the `Mdp`/`Pomdp` builders — the
/// `RecoveryModel` constructor would (correctly) refuse it, which is
/// the point: `modelcheck --broken` demonstrates the analyzer and the
/// non-zero exit path on exactly the class of model the validated
/// constructors exist to keep out.
///
/// # Panics
///
/// Never panics: the fixture's matrices are stochastic and its rewards
/// finite, so the builders accept it.
pub fn broken_fixture() -> LintReport {
    // States: 0 = Fault(wedged), 1 = Fault(looping), 2 = Null, 3 = "s_T".
    // Action 0 "repairs", action 1 claims to be a_T but misroutes.
    let mut mb = MdpBuilder::new(4, 2);
    mb.state_label(0, "Wedged")
        .state_label(1, "Looping")
        .state_label(2, "Null")
        .state_label(3, "Terminated");
    mb.action_label(0, "Repair").action_label(1, "Terminate");
    // Wedged absorbs under every action and even pays for the privilege.
    mb.transition(0, 0, 0, 1.0).reward(0, 0, 0.5); // positive reward
    mb.transition(0, 1, 0, 1.0).reward(0, 1, -1.0); // a_T misroutes
                                                    // Looping recovers under Repair, free of charge.
    mb.transition(1, 0, 2, 1.0).reward(1, 0, 0.0); // free action
    mb.transition(1, 1, 3, 1.0).reward(1, 1, -2.0);
    // Null idles free under both actions (free actions, but exempt).
    mb.transition(2, 0, 2, 1.0).reward(2, 0, 0.0);
    mb.transition(2, 1, 3, 1.0).reward(2, 1, 0.0);
    // "s_T" leaks back into the fault space and charges rent.
    mb.transition(3, 0, 1, 1.0).reward(3, 0, -1.0);
    mb.transition(3, 1, 3, 1.0).reward(3, 1, 0.0);
    let mdp = mb.build().expect("fixture matrices are stochastic");
    let mut pb = PomdpBuilder::new(mdp, 3);
    pb.observation_label(0, "alarm")
        .observation_label(1, "clear")
        .observation_label(2, "unused");
    for s in 0..4 {
        // Observation 2 is a dead column; states 0 and 1 are aliased.
        let alarm = if s >= 2 { 0.1 } else { 0.9 };
        for a in 0..2 {
            pb.observation(s, a, 0, alarm)
                .observation(s, a, 1, 1.0 - alarm);
        }
    }
    let pomdp = pb.build().expect("fixture observations are stochastic");
    let ctx = LintContext::transformed(
        vec![2.into()],
        Some(Termination {
            state: 3.into(),
            action: 1.into(),
            operator_response_time: 0.5, // shorter than any repair
        }),
    )
    .named("broken-fixture")
    .full();
    lint_pomdp(&pomdp, &ctx)
}

/// [`broken_fixture`] wrapped as a gate row (the fixture is linted in
/// its claimed-transformed form, so it reports as the
/// no-notification stage).
pub fn broken_report() -> ScenarioReport {
    let report = broken_fixture();
    ScenarioReport {
        scenario: "broken-fixture".to_string(),
        stage: ModelStage::WithoutNotification.label().to_string(),
        unexpected_warnings: unexpected_warnings(&report, &[]).len(),
        report,
    }
}

/// Bundles gate rows and the full catalog into the `modelcheck` JSON
/// document: `{"catalog": [...], "models": [{"scenario": ...,
/// "stage": ..., "unexpected_warnings": N, "report": {...}}, ...],
/// "errors": N}`.
pub fn bundle_json(reports: &[ScenarioReport]) -> String {
    let mut out = String::from("{\"catalog\": ");
    out.push_str(&bpr_core::lint::catalog::catalog_json());
    out.push_str(", \"models\": [");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"scenario\": \"{}\", \"stage\": \"{}\", \"unexpected_warnings\": {}, \"report\": ",
            r.scenario, r.stage, r.unexpected_warnings
        );
        out.push_str(&r.report.to_json());
        out.push('}');
    }
    let errors: usize = reports
        .iter()
        .map(|r| r.report.count(bpr_core::lint::Severity::Error))
        .sum();
    let _ = write!(out, "], \"errors\": {errors}}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpr_core::lint::{LintCode, Severity};

    /// The paper models plus the smallest corpus scenario: everything
    /// the debug-profile tests can lint quickly (the full registry —
    /// including the 10⁴-state `region-large` — is the release
    /// binary's job).
    fn fast_registry() -> ScenarioRegistry {
        let mut registry = ScenarioRegistry::new();
        registry
            .register(Box::new(bpr_emn::EmnScenario::default()))
            .unwrap();
        registry
            .register(Box::new(bpr_emn::TwoServerScenario::default()))
            .unwrap();
        registry
            .register(Box::new(bpr_topo::web3tier_small()))
            .unwrap();
        registry
    }

    #[test]
    fn registered_scenarios_are_clean_at_error_severity() {
        let registry = fast_registry();
        let reports = lint_scenarios(&registry).unwrap();
        assert_eq!(reports.len(), registry.len() * ModelStage::ALL.len());
        for r in &reports {
            assert!(!r.report.has_errors(), "{}", r.report.render());
            assert_eq!(
                r.unexpected_warnings,
                0,
                "{} ({}) carries unexpected warnings:\n{}",
                r.scenario,
                r.stage,
                r.report.render()
            );
        }
    }

    #[test]
    fn paper_models_lint_clean_through_the_registry() {
        let mut registry = ScenarioRegistry::new();
        registry
            .register(Box::new(bpr_emn::EmnScenario::default()))
            .unwrap();
        registry
            .register(Box::new(bpr_emn::TwoServerScenario::default()))
            .unwrap();
        let reports = lint_scenarios(&registry).unwrap();
        assert_eq!(reports.len(), 6);
        for r in &reports {
            assert!(!r.report.has_errors(), "{}", r.report.render());
        }
    }

    #[test]
    fn manifest_lists_every_scenario_with_dimensions() {
        let registry = fast_registry();
        let scenarios: Vec<&dyn Scenario> = registry.iter().collect();
        let json = manifest_json(&scenarios).unwrap();
        assert!(json.contains("\"name\": \"emn\""));
        assert!(json.contains("\"name\": \"web3tier-small\""));
        assert!(json.contains("\"states\": 14")); // EMN
        assert!(json.contains("\"build_seconds\": "));
    }

    #[test]
    fn broken_fixture_trips_the_expected_codes() {
        let report = broken_fixture();
        assert!(report.has_errors());
        let codes: Vec<LintCode> = report.diagnostics().iter().map(|d| d.code).collect();
        for expected in [
            LintCode::PositiveReward,
            LintCode::UnrecoverableState,
            LintCode::AbsorbingFault,
            LintCode::FreeAction,
            LintCode::DeadObservationColumn,
            LintCode::TerminationStructure,
            LintCode::DivergentRandomChain,
            LintCode::MonitorAliasing,
            LintCode::OperatorResponseTime,
        ] {
            assert!(codes.contains(&expected), "missing {expected}");
        }
        // At the transformed stage the divergence is an error.
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::DivergentRandomChain && d.severity == Severity::Error));
    }

    #[test]
    fn bundle_json_counts_errors_and_ships_the_catalog() {
        let clean = bundle_json(&lint_scenarios(&fast_registry()).unwrap());
        assert!(clean.contains("\"errors\": 0"));
        assert!(clean.contains("\"scenario\": \"web3tier-small\""));
        assert!(clean.contains("\"stage\": \"no-notification\""));
        let broken = bundle_json(&[broken_report()]);
        assert!(!broken.contains("\"errors\": 0"));
        assert!(broken.contains("\"scenario\": \"broken-fixture\""));
        // The catalog rides along with >= 8 distinct codes either way.
        let distinct = (1..=19)
            .filter(|i| clean.contains(&format!("BPR{i:03}")))
            .count();
        assert!(distinct >= 8, "only {distinct} catalog codes in JSON");
    }
}
