//! The `modelcheck` static-analysis gate: lints the paper's models
//! (EMN and two-server, raw and transformed) with `bpr-lint` and
//! bundles the reports — plus the full lint catalog — into one JSON
//! document for CI artifact upload.
//!
//! The library half lives here so the integration tests can exercise
//! the exact logic the `modelcheck` binary ships: [`lint_paper_models`]
//! must come back clean at error severity, and [`broken_fixture`] — a
//! deliberately corrupted model — must not.

use bpr_core::lint::{lint_pomdp, LintContext, LintReport, Termination};
use bpr_core::{Error, RecoveryModel};
use bpr_mdp::MdpBuilder;
use bpr_pomdp::PomdpBuilder;
use std::fmt::Write as _;

/// The operator response time used for the two-server no-notification
/// transform (the EMN transform takes its `t_op` from `EmnConfig`).
const TWO_SERVER_TOP: f64 = 10.0;

/// Lints one paper model at every stage the pipeline runs it in: the
/// raw recovery model, the with-notification transform, and the
/// no-notification transform.
fn lint_stages(name: &str, model: &RecoveryModel, top: f64) -> Result<Vec<LintReport>, Error> {
    let mut reports = Vec::new();
    reports.push(lint_pomdp(
        model.base(),
        &model.lint_context().named(format!("{name} (raw)")).full(),
    ));
    let notified = model.with_notification()?;
    reports.push(lint_pomdp(
        &notified,
        &LintContext::transformed(model.null_states().to_vec(), None)
            .named(format!("{name} (with-notification)"))
            .full(),
    ));
    let terminated = model.without_notification(top)?;
    reports.push(lint_pomdp(
        terminated.pomdp(),
        &terminated
            .lint_context()
            .named(format!("{name} (no-notification)"))
            .full(),
    ));
    Ok(reports)
}

/// Lints the EMN and two-server models (raw + both §3.1 transforms).
///
/// # Errors
///
/// Propagates model construction failures.
pub fn lint_paper_models() -> Result<Vec<LintReport>, Error> {
    let mut reports = Vec::new();
    let two_server = bpr_emn::two_server::default_model()?;
    reports.extend(lint_stages("two-server", &two_server, TWO_SERVER_TOP)?);
    let emn_config = bpr_emn::EmnConfig::default();
    let emn = bpr_emn::build_model(&emn_config)?;
    reports.extend(lint_stages("emn", &emn, emn_config.operator_response_time)?);
    Ok(reports)
}

/// A deliberately broken "recovery model" that trips a spread of lint
/// codes: a positive reward (BPR008, Condition 2), a state that cannot
/// reach the null set (BPR011, Condition 1) and is absorbing under
/// every action (BPR014), free actions outside the exempt set
/// (BPR012), a dead observation column (BPR006), malformed termination
/// machinery (BPR015), and a divergent random chain on a model claimed
/// to be transformed (BPR019, error at this stage).
///
/// Built straight through the `Mdp`/`Pomdp` builders — the
/// `RecoveryModel` constructor would (correctly) refuse it, which is
/// the point: `modelcheck --broken` demonstrates the analyzer and the
/// non-zero exit path on exactly the class of model the validated
/// constructors exist to keep out.
///
/// # Panics
///
/// Never panics: the fixture's matrices are stochastic and its rewards
/// finite, so the builders accept it.
pub fn broken_fixture() -> LintReport {
    // States: 0 = Fault(wedged), 1 = Fault(looping), 2 = Null, 3 = "s_T".
    // Action 0 "repairs", action 1 claims to be a_T but misroutes.
    let mut mb = MdpBuilder::new(4, 2);
    mb.state_label(0, "Wedged")
        .state_label(1, "Looping")
        .state_label(2, "Null")
        .state_label(3, "Terminated");
    mb.action_label(0, "Repair").action_label(1, "Terminate");
    // Wedged absorbs under every action and even pays for the privilege.
    mb.transition(0, 0, 0, 1.0).reward(0, 0, 0.5); // positive reward
    mb.transition(0, 1, 0, 1.0).reward(0, 1, -1.0); // a_T misroutes
                                                    // Looping recovers under Repair, free of charge.
    mb.transition(1, 0, 2, 1.0).reward(1, 0, 0.0); // free action
    mb.transition(1, 1, 3, 1.0).reward(1, 1, -2.0);
    // Null idles free under both actions (free actions, but exempt).
    mb.transition(2, 0, 2, 1.0).reward(2, 0, 0.0);
    mb.transition(2, 1, 3, 1.0).reward(2, 1, 0.0);
    // "s_T" leaks back into the fault space and charges rent.
    mb.transition(3, 0, 1, 1.0).reward(3, 0, -1.0);
    mb.transition(3, 1, 3, 1.0).reward(3, 1, 0.0);
    let mdp = mb.build().expect("fixture matrices are stochastic");
    let mut pb = PomdpBuilder::new(mdp, 3);
    pb.observation_label(0, "alarm")
        .observation_label(1, "clear")
        .observation_label(2, "unused");
    for s in 0..4 {
        // Observation 2 is a dead column; states 0 and 1 are aliased.
        let alarm = if s >= 2 { 0.1 } else { 0.9 };
        for a in 0..2 {
            pb.observation(s, a, 0, alarm)
                .observation(s, a, 1, 1.0 - alarm);
        }
    }
    let pomdp = pb.build().expect("fixture observations are stochastic");
    let ctx = LintContext::transformed(
        vec![2.into()],
        Some(Termination {
            state: 3.into(),
            action: 1.into(),
            operator_response_time: 0.5, // shorter than any repair
        }),
    )
    .named("broken-fixture")
    .full();
    lint_pomdp(&pomdp, &ctx)
}

/// Bundles lint reports and the full catalog into the `modelcheck`
/// JSON document: `{"catalog": [...], "models": [...], "errors": N}`.
pub fn bundle_json(reports: &[LintReport]) -> String {
    let mut out = String::from("{\"catalog\": ");
    out.push_str(&bpr_core::lint::catalog::catalog_json());
    out.push_str(", \"models\": [");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&r.to_json());
    }
    let errors: usize = reports
        .iter()
        .map(|r| r.count(bpr_core::lint::Severity::Error))
        .sum();
    let _ = write!(out, "], \"errors\": {errors}}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpr_core::lint::{LintCode, Severity};

    #[test]
    fn paper_models_are_clean_at_error_severity() {
        let reports = lint_paper_models().unwrap();
        assert_eq!(reports.len(), 6);
        for r in &reports {
            assert!(!r.has_errors(), "{}", r.render());
        }
    }

    #[test]
    fn broken_fixture_trips_the_expected_codes() {
        let report = broken_fixture();
        assert!(report.has_errors());
        let codes: Vec<LintCode> = report.diagnostics().iter().map(|d| d.code).collect();
        for expected in [
            LintCode::PositiveReward,
            LintCode::UnrecoverableState,
            LintCode::AbsorbingFault,
            LintCode::FreeAction,
            LintCode::DeadObservationColumn,
            LintCode::TerminationStructure,
            LintCode::DivergentRandomChain,
            LintCode::MonitorAliasing,
            LintCode::OperatorResponseTime,
        ] {
            assert!(codes.contains(&expected), "missing {expected}");
        }
        // At the transformed stage the divergence is an error.
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::DivergentRandomChain && d.severity == Severity::Error));
    }

    #[test]
    fn bundle_json_counts_errors_and_ships_the_catalog() {
        let clean = bundle_json(&lint_paper_models().unwrap());
        assert!(clean.contains("\"errors\": 0"));
        let broken = bundle_json(&[broken_fixture()]);
        assert!(!broken.contains("\"errors\": 0"));
        // The catalog rides along with >= 8 distinct codes either way.
        let distinct = (1..=19)
            .filter(|i| clean.contains(&format!("BPR{i:03}")))
            .count();
        assert!(distinct >= 8, "only {distinct} catalog codes in JSON");
    }
}
