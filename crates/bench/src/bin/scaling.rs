//! Scaling benchmark for the deterministic parallel engines: runs a
//! registry scenario's fault-injection campaign (bootstrapped
//! bounded-d1 controller, default: the paper's EMN model) and the
//! batch bootstrap at several thread counts, records episodes/sec and
//! backups/sec into `BENCH_scaling.json`, and — the part that gates
//! CI — verifies that every width produces bit-identical results.
//! Exits nonzero on any determinism mismatch.
//!
//! Usage:
//! `cargo run -p bpr-bench --bin scaling --release -- \
//!     [--scenario emn] [--episodes 120] [--bootstrap-iters 24] \
//!     [--batch 8] [--seed 7] [--threads 1,2,4,8] [--max-steps 400] \
//!     [--out BENCH_scaling.json]`

use bpr_bench::experiments::bootstrapped_bounded_d1_for;
use bpr_bench::{flag, scenario_flag};
use bpr_core::bootstrap::{bootstrap_par, BootstrapConfig, BootstrapVariant};
use bpr_mdp::chain::SolveOpts;
use bpr_par::WorkPool;
use bpr_pomdp::bounds::ra_bound;
use bpr_sim::Campaign;
use std::fmt::Write as _;
use std::time::Instant;

/// Parses the comma-separated `--threads` list.
fn threads_flag(args: &[String], default: &[usize]) -> Vec<usize> {
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| {
            v.split(',')
                .map(|p| p.trim().parse::<usize>())
                .collect::<Result<Vec<_>, _>>()
                .ok()
        })
        .unwrap_or_else(|| default.to_vec())
}

struct WidthResult {
    threads: usize,
    wall_seconds: f64,
    rate: f64,
    skipped: bool,
}

fn json_results(rows: &[WidthResult], rate_key: &str) -> String {
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        if r.skipped {
            let _ = write!(out, "{{\"threads\": {}, \"skipped\": true}}", r.threads);
        } else {
            let _ = write!(
                out,
                "{{\"threads\": {}, \"wall_seconds\": {:.6}, \"{}\": {:.3}}}",
                r.threads, r.wall_seconds, rate_key, r.rate
            );
        }
    }
    out.push(']');
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let episodes = flag(&args, "--episodes", 120usize);
    let bootstrap_iters = flag(&args, "--bootstrap-iters", 24usize);
    let batch = flag(&args, "--batch", 8usize);
    let seed = flag(&args, "--seed", 7u64);
    let max_steps = flag(&args, "--max-steps", 400usize);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_scaling.json".to_string());
    let widths = threads_flag(&args, &[1, 2, 4, 8]);
    let hardware = WorkPool::default().threads();
    let registry = bpr::scenario::builtin();
    let scenario = scenario_flag(&registry, &args, "emn");
    eprintln!(
        "scaling [{}]: {episodes} campaign episodes + {bootstrap_iters} bootstrap episodes \
         at widths {widths:?} ({hardware} hardware threads)",
        scenario.name()
    );

    let model = scenario.build().expect("scenario model builds");
    let population = scenario.fault_population(&model);
    let prototype =
        bootstrapped_bounded_d1_for(&model, scenario.operator_response_time(), seed, 1e-3)
            .expect("bounded-d1 prototype builds");

    // --- Campaign scaling: episodes/sec, identical outcomes required.
    let mut campaign_rows = Vec::new();
    let mut reference: Option<Vec<bpr_sim::EpisodeOutcome>> = None;
    let mut deterministic = true;
    for &threads in &widths {
        // Oversubscribed widths measure scheduler noise, not scaling;
        // skip them (determinism across widths is covered by the tests).
        if threads > hardware {
            eprintln!("  campaign  threads={threads}: skipped (> {hardware} hardware threads)");
            campaign_rows.push(WidthResult {
                threads,
                wall_seconds: 0.0,
                rate: 0.0,
                skipped: true,
            });
            continue;
        }
        let report = Campaign::new(&model)
            .population(&population)
            .episodes(episodes)
            .max_steps(max_steps)
            .seed(seed)
            .threads(threads)
            .run(|_| Ok(prototype.clone()))
            .expect("campaign runs");
        let canonical = report.canonical_outcomes();
        match &reference {
            None => reference = Some(canonical),
            Some(expected) => {
                if *expected != canonical {
                    eprintln!("DETERMINISM VIOLATION: campaign at {threads} threads diverged");
                    deterministic = false;
                }
            }
        }
        eprintln!(
            "  campaign  threads={threads}: {:.2} episodes/sec ({:.3}s)",
            report.episodes_per_sec(),
            report.wall_seconds
        );
        campaign_rows.push(WidthResult {
            threads,
            wall_seconds: report.wall_seconds,
            rate: report.episodes_per_sec(),
            skipped: false,
        });
    }

    // --- Bootstrap scaling: backups/sec, identical reports and bound.
    let transformed = model
        .without_notification(scenario.operator_response_time())
        .expect("transform");
    let conditioning = model
        .observe_actions()
        .first()
        .copied()
        .expect("scenario model has an observe action");
    let config = BootstrapConfig {
        variant: BootstrapVariant::Random,
        iterations: bootstrap_iters,
        depth: 1,
        max_steps: 40,
        conditioning_action: conditioning,
        ..BootstrapConfig::default()
    };
    let mut bootstrap_rows = Vec::new();
    let mut boot_reference: Option<(usize, String)> = None;
    for &threads in &widths {
        if threads > hardware {
            eprintln!("  bootstrap threads={threads}: skipped (> {hardware} hardware threads)");
            bootstrap_rows.push(WidthResult {
                threads,
                wall_seconds: 0.0,
                rate: 0.0,
                skipped: true,
            });
            continue;
        }
        let pool = WorkPool::new(threads).expect("nonzero width");
        let mut bound =
            ra_bound(transformed.pomdp(), &SolveOpts::default()).expect("RA-Bound exists");
        let start = Instant::now();
        let report = bootstrap_par(&transformed, &mut bound, &config, batch, seed, &pool)
            .expect("bootstrap runs");
        let wall = start.elapsed().as_secs_f64();
        let fingerprint = (report.total_backups, bound.to_tsv());
        match &boot_reference {
            None => boot_reference = Some(fingerprint),
            Some(expected) => {
                if *expected != fingerprint {
                    eprintln!("DETERMINISM VIOLATION: bootstrap at {threads} threads diverged");
                    deterministic = false;
                }
            }
        }
        let rate = if wall > 0.0 {
            report.total_backups as f64 / wall
        } else {
            0.0
        };
        eprintln!(
            "  bootstrap threads={threads}: {:.2} backups/sec ({} backups, {:.3}s)",
            rate, report.total_backups, wall
        );
        bootstrap_rows.push(WidthResult {
            threads,
            wall_seconds: wall,
            rate,
            skipped: false,
        });
    }

    let json = format!(
        "{{\n  \"bench\": \"scaling\",\n  \"scenario\": \"{}\",\n  \"seed\": {seed},\n  \
         \"hardware_threads\": {hardware},\n  \
         \"deterministic\": {deterministic},\n  \
         \"campaign\": {{\"controller\": \"bounded-d1\", \"episodes\": {episodes}, \
         \"max_steps\": {max_steps}, \"results\": {}}},\n  \
         \"bootstrap\": {{\"iterations\": {bootstrap_iters}, \"batch\": {batch}, \
         \"results\": {}}}\n}}\n",
        scenario.name(),
        json_results(&campaign_rows, "episodes_per_sec"),
        json_results(&bootstrap_rows, "backups_per_sec"),
    );
    std::fs::write(&out_path, &json).expect("write benchmark file");
    eprintln!("wrote {out_path}");

    if !deterministic {
        eprintln!("scaling benchmark FAILED: results depend on thread count");
        std::process::exit(1);
    }
}
