//! Regenerates the paper's Table 1: per-fault recovery metrics for the
//! most-likely, heuristic (depths 1–3), bounded (depth 1), and Oracle
//! controllers under zombie-only fault injection on the EMN model.
//!
//! Usage:
//! `cargo run -p bpr-bench --bin table1 --release -- [--faults 300] [--seed 7] [--pterm 0.9999] [--cutoff 1e-3]`

use bpr_bench::experiments::{table1, Table1Config};
use bpr_bench::flag;
use bpr_sim::CampaignSummary;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let config = Table1Config {
        episodes: flag(&args, "--faults", 300usize),
        seed: flag(&args, "--seed", 7u64),
        p_term: flag(&args, "--pterm", 0.9999f64),
        gamma_cutoff: flag(&args, "--cutoff", 1e-3f64),
        ..Table1Config::default()
    };
    eprintln!(
        "running table 1 with {} fault injections per controller (paper used 10000)...",
        config.episodes
    );
    let rows = match table1(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("table1 experiment failed: {e}");
            std::process::exit(1);
        }
    };
    println!("# Table 1: Fault Injection Results (per-fault averages, zombie faults only)");
    println!("{}", CampaignSummary::table_header());
    for row in &rows {
        println!("{}", row.table_row());
        if row.unrecovered > 0 || row.unterminated > 0 {
            println!(
                "#   WARNING: {} episodes unrecovered, {} unterminated",
                row.unrecovered, row.unterminated
            );
        }
    }
    println!("# note: none of the controllers should ever quit without recovering the system");
}
