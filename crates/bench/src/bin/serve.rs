//! Chaos soak harness for the `bpr-serve` recovery daemon, driven by
//! the shared [`Scenario`] registry: any registered model — the
//! paper's EMN and two-server worlds or the generated `bpr-topo`
//! corpus — can be soaked by name.
//!
//! Two soak families, each gated hard on the daemon's contracts:
//!
//! **In-process soaks** (`--scenarios`, default `emn,two-server`)
//! drive bursty synthetic monitor-event load with `DegradedWorld`
//! fault injection, a poisoned-incident chaos drill, and a mid-soak
//! kill-and-resume:
//!
//! 1. **Zero incident loss** — every admitted incident ends in a typed
//!    terminal status; shed events carry typed, counted rejections.
//! 2. **Shard-width determinism** — canonical results are bit-identical
//!    at every requested shard width.
//! 3. **Kill/resume determinism** — a run killed mid-soak and resumed
//!    from its partitioned checkpoint reproduces the uninterrupted
//!    run's per-incident decision sequences exactly.
//! 4. **Throughput** — the EMN soak sustains at least
//!    `--min-events-per-sec` ingested events per second (default 10⁴).
//!
//! **Network chaos soaks** (`--net-scenarios`, default
//! `emn,web3tier-small,cellfleet-mid`) serve the same logical event
//! stream over a loopback TCP socket while a hostile client injects
//! mid-soak disconnects and reconnect replays, garbage bursts,
//! malformed-frame bursts (foreign version, unknown kind, oversized
//! declaration, checksum failure), partial writes, and a slow-loris
//! companion connection — then gate that:
//!
//! 5. **Transport independence** — the socket leg's canonical report
//!    equals the in-process reference bit-for-bit.
//! 6. **Frame accounting** — `frames_seen == events_delivered +
//!    rejected_frames` and no event is lost or invented under the
//!    full fault plan (no panic either; a panic fails the bench).
//! 7. **Resume over the wire** — a killed socket run resumes from its
//!    partitioned checkpoint against a client replaying from tick 0:
//!    the consumed prefix is rejected as typed stale frames and the
//!    combined run matches the reference.
//!
//! Model lint findings allowlisted by the scenario
//! (`expected_warnings`) are suppressed and counted; only unexpected
//! findings surface in the report.
//!
//! Emits `BENCH_serve.json` with per-scenario soak blocks (scenario
//! name embedded), transport counters, p50/p99 decision latency, and
//! gate outcomes.
//!
//! Usage:
//! `cargo run -p bpr-bench --bin serve --release -- \
//!     [--scenario NAME | --scenarios emn,two-server \
//!      --net-scenarios emn,web3tier-small,cellfleet-mid] \
//!     [--ticks 240] [--net-ticks 64] [--schedule bursty] [--rate 250] \
//!     [--burst 750] [--period 10] [--seed 7] [--shards 1,4] \
//!     [--max-live 8] [--queue 256] [--steps-per-round 2] \
//!     [--max-steps 60] [--deadline-ms 50] [--failures 0.05] \
//!     [--dropouts 0.05] [--corruption 0.02] [--kill-round 40] \
//!     [--chaos-incident 2] [--partitions 4] \
//!     [--min-events-per-sec 10000] [--snapshot serve.snapshot] \
//!     [--out BENCH_serve.json]`

use bpr_bench::{flag, string_flag};
use bpr_core::scenario::{Scenario, ScenarioRegistry};
use bpr_core::snapshot::{partition_path, CheckpointPolicy};
use bpr_core::RecoveryModel;
use bpr_mdp::StateId;
use bpr_serve::{
    Daemon, EventSource, Frame, IncidentStatus, Prototypes, Schedule, ServeConfig, ServeReport,
    SocketConfig, SocketSource, SyntheticEvents, TransportCounts,
};
use bpr_sim::PerturbationPlan;
use std::fmt::Write as _;
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn shards_flag(args: &[String], default: &[usize]) -> Vec<usize> {
    args.iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| {
            v.split(',')
                .map(|p| p.trim().parse::<usize>())
                .collect::<Result<Vec<_>, _>>()
                .ok()
        })
        .unwrap_or_else(|| default.to_vec())
}

/// Comma-separated scenario-name list flag; `--scenario NAME`
/// overrides every list to just `NAME` (one knob for CI smokes).
fn scenario_list(args: &[String], name: &str, default: &[&str]) -> Vec<String> {
    if let Some(one) = args
        .iter()
        .position(|a| a == "--scenario")
        .and_then(|i| args.get(i + 1))
    {
        return vec![one.clone()];
    }
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.split(',')
                .map(|p| p.trim().to_string())
                .filter(|p| !p.is_empty())
                .collect()
        })
        .unwrap_or_else(|| default.iter().map(|s| (*s).to_string()).collect())
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// A registry scenario resolved into everything a soak needs: the
/// built model, its fault population, the scenario-specific config
/// overlay (operator response time, lint allowlist), and the ladder
/// prototypes — built ONCE here and cloned into every leg's daemon,
/// because controller construction dominates startup on the larger
/// corpus models (minutes at 10³ states).
struct World<'r> {
    scenario: &'r dyn Scenario,
    model: RecoveryModel,
    faults: Vec<StateId>,
    protos: Prototypes,
}

impl World<'_> {
    fn resolve<'r>(
        registry: &'r ScenarioRegistry,
        name: &str,
        base: &ServeConfig,
    ) -> Result<World<'r>, String> {
        let scenario = registry.require(name).map_err(|e| e.to_string())?;
        let model = scenario
            .build()
            .map_err(|e| format!("{name}: model build: {e}"))?;
        let faults = scenario.fault_population(&model);
        if faults.is_empty() {
            return Err(format!("{name}: empty fault population"));
        }
        let planning_config = ServeConfig {
            operator_response_time: scenario.operator_response_time(),
            ..base.clone()
        };
        let built = Instant::now();
        let protos = Prototypes::build(&model, &planning_config)
            .map_err(|e| format!("{name}: ladder prototypes: {e}"))?;
        eprintln!(
            "[serve] {name}: ladder prototypes built in {:.1}s (shared across all legs)",
            built.elapsed().as_secs_f64()
        );
        Ok(World {
            scenario,
            model,
            faults,
            protos,
        })
    }

    fn daemon(&self, config: ServeConfig) -> Result<Daemon<'_>, String> {
        Daemon::with_prototypes(&self.model, config, self.protos.clone())
            .map_err(|e| format!("{}: {e}", self.name()))
    }

    fn name(&self) -> &str {
        self.scenario.name()
    }

    fn config(&self, base: &ServeConfig) -> ServeConfig {
        ServeConfig {
            operator_response_time: self.scenario.operator_response_time(),
            expected_warnings: self.scenario.expected_warnings(),
            ..base.clone()
        }
    }
}

fn remove_checkpoint(base: &str, partitions: usize) {
    let _ = std::fs::remove_file(base);
    for k in 0..partitions {
        let _ = std::fs::remove_file(partition_path(std::path::Path::new(base), &format!("p{k}")));
    }
}

// ---------------------------------------------------------------------------
// In-process soak (shard sweep + kill/resume drill)
// ---------------------------------------------------------------------------

struct SoakOutcome {
    report: ServeReport,
    shard_widths: Vec<usize>,
    shard_identical: bool,
    resume_identical: bool,
    resumed_from: Option<u64>,
    killed_rounds: u64,
    checkpoints_written: u64,
    snapshot_retries: u64,
}

/// Everything one world's soak shares across its five runs.
struct SoakParams {
    seed: u64,
    schedule: Schedule,
    ticks: u64,
    shards: Vec<usize>,
    kill_round: u64,
    snapshot: String,
}

#[allow(clippy::too_many_lines)]
fn soak_world(world: &World, base: &ServeConfig, p: &SoakParams) -> Result<SoakOutcome, String> {
    let name = world.name();
    let source = || {
        SyntheticEvents::new(p.seed, p.schedule.clone(), world.faults.clone(), p.ticks)
            .map_err(|e| format!("{name}: event source: {e}"))
    };
    let base = &world.config(base);

    // Reference run: first shard width, no checkpointing.
    let reference_config = ServeConfig {
        shards: p.shards[0],
        ..base.clone()
    };
    let mut daemon = world.daemon(reference_config)?;
    let reference = daemon
        .run(&mut source()?)
        .map_err(|e| format!("{name}: reference run: {e}"))?;
    let reference_canonical = reference.canonical();

    // Shard-width determinism: every width must reproduce the
    // reference bit-for-bit. The widest run is the measured one.
    let mut measured = reference.clone();
    let mut shard_identical = true;
    for &width in &p.shards[1..] {
        let config = ServeConfig {
            shards: width,
            ..base.clone()
        };
        let mut daemon = world.daemon(config)?;
        let report = daemon
            .run(&mut source()?)
            .map_err(|e| format!("{name}: width-{width} run: {e}"))?;
        if report.canonical() != reference_canonical {
            eprintln!(
                "[serve] GATE FAILURE {name}: width {width} diverged from width {}",
                p.shards[0]
            );
            shard_identical = false;
        }
        measured = report;
    }

    // Kill/resume drill: checkpoint every few rounds (count trigger)
    // plus a wall-clock trigger, kill mid-soak, resume, compare.
    let snapshot_path = format!("{}.{name}", p.snapshot);
    remove_checkpoint(&snapshot_path, base.checkpoint_partitions);
    let killed_config = ServeConfig {
        shards: *p.shards.last().expect("non-empty shards"),
        checkpoint: Some(
            CheckpointPolicy::new(&snapshot_path, 5)
                .with_every_duration(Duration::from_millis(250)),
        ),
        kill_after_rounds: Some(p.kill_round),
        ..base.clone()
    };
    let mut daemon = world.daemon(killed_config)?;
    let killed = daemon
        .run(&mut source()?)
        .map_err(|e| format!("{name}: killed run: {e}"))?;
    let resumed_config = ServeConfig {
        shards: p.shards[0],
        checkpoint: Some(CheckpointPolicy::new(&snapshot_path, 5)),
        ..base.clone()
    };
    let mut daemon = world.daemon(resumed_config)?;
    let resumed = daemon
        .run(&mut source()?)
        .map_err(|e| format!("{name}: resumed run: {e}"))?;
    let resume_identical = resumed.canonical() == reference_canonical;
    if resume_identical {
        remove_checkpoint(&snapshot_path, base.checkpoint_partitions);
    } else {
        // Leave the snapshot behind for post-mortem.
        eprintln!("[serve] GATE FAILURE {name}: kill/resume diverged from the uninterrupted run");
    }

    for (label, report) in [
        ("reference", &reference),
        ("measured", &measured),
        ("killed", &killed),
        ("resumed", &resumed),
    ] {
        if report.lost_incidents() != 0 {
            return Err(format!(
                "{name}: {label} run lost {} incidents",
                report.lost_incidents()
            ));
        }
        // Killed runs may leave events in the (persisted) queue; every
        // other event must be admitted or carry a typed shed count.
        if report.admitted + report.shed.total() + report.queued_at_exit != report.events_seen {
            return Err(format!(
                "{name}: {label} run dropped events without a typed shed reason"
            ));
        }
    }

    Ok(SoakOutcome {
        shard_widths: p.shards.clone(),
        shard_identical,
        resume_identical,
        resumed_from: resumed.resumed_from,
        killed_rounds: killed.rounds,
        checkpoints_written: killed.checkpoints_written + resumed.checkpoints_written,
        snapshot_retries: killed.snapshot_retries + resumed.snapshot_retries,
        report: measured,
    })
}

// ---------------------------------------------------------------------------
// Network chaos soak (loopback socket + hostile client + kill/resume)
// ---------------------------------------------------------------------------

/// Streams the plan's frames cleanly, in tick/seq order, with the end
/// marker. Write errors mean the daemon went away (kill drill) — the
/// client just stops.
fn stream_plan(addr: SocketAddr, plan: &SyntheticEvents) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    for tick in 0..plan.ticks() {
        for (seq, e) in plan.events_at(tick).iter().enumerate() {
            let frame = Frame::Event {
                tick,
                seq: seq as u32,
                fault: e.fault,
            };
            if stream.write_all(&frame.encode()).is_err() {
                return;
            }
        }
    }
    let _ = stream.write_all(
        &Frame::End {
            ticks: plan.ticks(),
        }
        .encode(),
    );
}

/// Streams the plan under the full network-fault plan: a mid-soak
/// disconnect with a reconnect that replays the previous tick
/// (duplicate/stale path), garbage bursts, malformed-frame bursts
/// rotating through every typed corruption, and partial writes. The
/// *logical* event sequence is exactly `stream_plan`'s — that is the
/// point: the daemon's canonical report must not notice the chaos.
fn stream_chaos(addr: SocketAddr, plan: &SyntheticEvents) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    let ticks = plan.ticks();
    let reconnect_at = (ticks / 3).max(1);
    for tick in 0..ticks {
        if tick == reconnect_at {
            // Mid-soak disconnect; the replacement connection replays
            // the previous tick, which the source must reject as
            // duplicates (or stale frames), never re-deliver.
            drop(stream);
            std::thread::sleep(Duration::from_millis(5));
            let Ok(s) = TcpStream::connect(addr) else {
                return;
            };
            stream = s;
            for (seq, e) in plan.events_at(tick - 1).iter().enumerate() {
                let frame = Frame::Event {
                    tick: tick - 1,
                    seq: seq as u32,
                    fault: e.fault,
                };
                if stream.write_all(&frame.encode()).is_err() {
                    return;
                }
            }
        }
        if tick % 7 == 3 {
            // Garbage burst between frames (no magic anywhere).
            let _ = stream.write_all(b"~~ chaos noise: not a frame ~~");
        }
        if tick % 11 == 5 {
            // Malformed frame, rotating through the typed rejections.
            let mut bad = Frame::Event {
                tick,
                seq: u32::MAX,
                fault: StateId::new(0),
            }
            .encode();
            match (tick / 11) % 4 {
                0 => bad[4] = 0x63,                                      // foreign version
                1 => bad[5] = 0x07,                                      // unknown kind
                2 => bad[6..8].copy_from_slice(&u16::MAX.to_le_bytes()), // oversized
                _ => *bad.last_mut().expect("nonempty frame") ^= 0x01,   // checksum
            }
            let _ = stream.write_all(&bad);
        }
        for (seq, e) in plan.events_at(tick).iter().enumerate() {
            let bytes = Frame::Event {
                tick,
                seq: seq as u32,
                fault: e.fault,
            }
            .encode();
            if tick % 13 == 2 && seq == 0 {
                // Partial write: half a header now, the rest after a
                // beat (must reassemble, must not trip the deadline).
                if stream.write_all(&bytes[..10]).is_err() {
                    return;
                }
                let _ = stream.flush();
                std::thread::sleep(Duration::from_millis(2));
                if stream.write_all(&bytes[10..]).is_err() {
                    return;
                }
            } else if stream.write_all(&bytes).is_err() {
                return;
            }
        }
    }
    // Hold the stream open past the source's read deadline before
    // ending it, so the slow-loris companion is provably shed while
    // the daemon is still polling (short smoke runs would otherwise
    // finish before the deadline can fire).
    std::thread::sleep(LORIS_HOLD);
    let _ = stream.write_all(&Frame::End { ticks }.encode());
}

/// How long the loris stalls mid-frame — and how long the chaos
/// client keeps the stream open so the stall is observed. Must exceed
/// [`socket_config`]'s `read_deadline` with slack.
const LORIS_HOLD: Duration = Duration::from_millis(400);

/// A slow-loris companion: sends half a frame, then stalls holding
/// the connection until past the read deadline. The source must shed
/// it (counted) without losing anything from the healthy client.
fn slow_loris(addr: SocketAddr, hold: Duration) {
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let half = Frame::Event {
            tick: 0,
            seq: u32::MAX,
            fault: StateId::new(0),
        }
        .encode();
        let _ = stream.write_all(&half[..10]);
        std::thread::sleep(hold);
    }
}

struct NetParams {
    seed: u64,
    schedule: Schedule,
    ticks: u64,
    kill_round: u64,
    snapshot: String,
    /// Loopback throughput floor, gated only where set (EMN).
    min_events_per_sec: Option<f64>,
}

struct NetOutcome {
    /// The chaos socket leg (the measured one).
    report: ServeReport,
    transport: TransportCounts,
    resumed_transport: TransportCounts,
    canonical_identical: bool,
    resume_identical: bool,
    killed_rounds: u64,
    failures: Vec<String>,
}

fn socket_config() -> SocketConfig {
    SocketConfig {
        // Tight enough that the loris (which stalls for 400 ms) is
        // shed, loose enough that deliberate 2 ms partial-write gaps
        // never are.
        read_deadline: Duration::from_millis(150),
        idle_timeout: Duration::from_secs(3),
        ..SocketConfig::default()
    }
}

fn bound_source(plan: &SyntheticEvents) -> Result<(SocketSource, SocketAddr), String> {
    let source = SocketSource::bind("127.0.0.1:0", socket_config())
        .map_err(|e| format!("socket bind: {e}"))?
        .with_stream_fingerprint(plan.fingerprint());
    let addr = source
        .local_addr()
        .map_err(|e| format!("socket addr: {e}"))?;
    Ok((source, addr))
}

#[allow(clippy::too_many_lines)]
fn net_soak(world: &World, base: &ServeConfig, p: &NetParams) -> Result<NetOutcome, String> {
    let name = world.name();
    let base = world.config(base);
    let plan = SyntheticEvents::new(p.seed, p.schedule.clone(), world.faults.clone(), p.ticks)
        .map_err(|e| format!("{name}: event plan: {e}"))?;
    let mut failures = Vec::new();

    // In-process reference: the same logical stream, no wire.
    let mut daemon = world.daemon(base.clone())?;
    let reference = daemon
        .run(&mut plan.clone())
        .map_err(|e| format!("{name}: net reference run: {e}"))?;
    let reference_canonical = reference.canonical();

    // Leg 1: the full network-fault plan over loopback.
    let (mut source, addr) = bound_source(&plan).map_err(|e| format!("{name}: {e}"))?;
    let client = {
        let plan = plan.clone();
        std::thread::spawn(move || stream_chaos(addr, &plan))
    };
    let loris = std::thread::spawn(move || slow_loris(addr, LORIS_HOLD));
    let mut daemon = world.daemon(base.clone())?;
    let chaos = daemon
        .run(&mut source)
        .map_err(|e| format!("{name}: chaos socket run: {e}"))?;
    client
        .join()
        .map_err(|_| format!("{name}: chaos client panicked"))?;
    loris
        .join()
        .map_err(|_| format!("{name}: loris client panicked"))?;
    let t = chaos
        .transport
        .ok_or_else(|| format!("{name}: socket leg reported no transport counters"))?;

    if chaos.canonical() != reference_canonical {
        failures.push(format!(
            "{name}: network chaos changed the canonical report"
        ));
    }
    if chaos.lost_incidents() != 0 {
        failures.push(format!(
            "{name}: chaos leg lost {} incidents",
            chaos.lost_incidents()
        ));
    }
    if chaos.admitted + chaos.shed.total() + chaos.queued_at_exit != chaos.events_seen {
        failures.push(format!(
            "{name}: chaos leg dropped events without a typed shed reason"
        ));
    }
    if t.frames_seen != t.events_delivered + t.rejected_frames() {
        failures.push(format!(
            "{name}: frame accounting broke: {} seen != {} delivered + {} rejected",
            t.frames_seen,
            t.events_delivered,
            t.rejected_frames()
        ));
    }
    if t.events_delivered != chaos.events_seen {
        failures.push(format!(
            "{name}: daemon saw {} events but the wire delivered {}",
            chaos.events_seen, t.events_delivered
        ));
    }
    if t.rejected_frames() == 0 {
        failures.push(format!(
            "{name}: the fault plan produced no typed rejections (chaos not exercised)"
        ));
    }
    // The shed gate only applies where the daemon keeps up with the
    // wire (the scenario carrying the throughput floor): a throttled
    // daemon stops *reading*, so a stalled client's bytes never reach
    // reassembly state and there is legitimately nothing to shed —
    // backpressure is already holding the line at the TCP socket.
    if p.min_events_per_sec.is_some() && t.slow_client_drops == 0 {
        failures.push(format!("{name}: the slow-loris client was never shed"));
    }
    if t.disconnects == 0 {
        failures.push(format!("{name}: the mid-soak disconnect never registered"));
    }
    if let Some(min) = p.min_events_per_sec {
        let eps = chaos.events_per_sec();
        if eps < min {
            failures.push(format!(
                "{name}: sustained {eps:.0} events/s over loopback < required {min:.0}"
            ));
        }
    }

    // Leg 2: kill mid-soak over the wire (partitioned checkpoint).
    let snapshot_path = format!("{}.net.{name}", p.snapshot);
    remove_checkpoint(&snapshot_path, base.checkpoint_partitions);
    let killed_config = ServeConfig {
        checkpoint: Some(CheckpointPolicy::new(&snapshot_path, 5)),
        kill_after_rounds: Some(p.kill_round),
        ..base.clone()
    };
    let (mut source, addr) = bound_source(&plan).map_err(|e| format!("{name}: {e}"))?;
    let client = {
        let plan = plan.clone();
        std::thread::spawn(move || stream_plan(addr, &plan))
    };
    let mut daemon = world.daemon(killed_config)?;
    let killed = daemon
        .run(&mut source)
        .map_err(|e| format!("{name}: killed socket run: {e}"))?;
    drop(source); // close the listener so the client unblocks
    client
        .join()
        .map_err(|_| format!("{name}: kill-leg client panicked"))?;
    if !killed.killed {
        failures.push(format!(
            "{name}: the kill drill never fired (kill round {} of {} rounds)",
            p.kill_round, killed.rounds
        ));
    }
    if killed.admitted + killed.shed.total() + killed.queued_at_exit != killed.events_seen {
        failures.push(format!(
            "{name}: killed leg dropped events without a typed shed reason"
        ));
    }

    // Leg 3: resume against a client replaying from tick 0 — the
    // consumed prefix must come back as typed stale rejections.
    let resumed_config = ServeConfig {
        checkpoint: Some(CheckpointPolicy::new(&snapshot_path, 5)),
        ..base.clone()
    };
    let (mut source, addr) = bound_source(&plan).map_err(|e| format!("{name}: {e}"))?;
    let client = {
        let plan = plan.clone();
        std::thread::spawn(move || stream_plan(addr, &plan))
    };
    let mut daemon = world.daemon(resumed_config)?;
    let resumed = daemon
        .run(&mut source)
        .map_err(|e| format!("{name}: resumed socket run: {e}"))?;
    client
        .join()
        .map_err(|_| format!("{name}: resume-leg client panicked"))?;
    let rt = resumed
        .transport
        .ok_or_else(|| format!("{name}: resumed leg reported no transport counters"))?;

    let resume_identical = resumed.canonical() == reference_canonical;
    if killed.killed && resumed.resumed_from.is_none() {
        failures.push(format!("{name}: resume over the wire never engaged"));
    }
    if !resume_identical {
        failures.push(format!(
            "{name}: wire kill/resume diverged from the uninterrupted reference"
        ));
    }
    if !resumed.partition_errors.is_empty() {
        failures.push(format!(
            "{name}: resume degraded {} checkpoint partitions on healthy files",
            resumed.partition_errors.len()
        ));
    }
    if resumed.resumed_from.is_some() && rt.rejected_stale == 0 {
        failures.push(format!(
            "{name}: the tick-0 replay produced no stale rejections"
        ));
    }
    if rt.frames_seen != rt.events_delivered + rt.rejected_frames() {
        failures.push(format!(
            "{name}: resume frame accounting broke: {} seen != {} delivered + {} rejected",
            rt.frames_seen,
            rt.events_delivered,
            rt.rejected_frames()
        ));
    }
    if resumed.events_seen != resumed.events_seen_at_start + rt.events_delivered {
        failures.push(format!(
            "{name}: resumed event accounting broke: {} != {} at start + {} delivered",
            resumed.events_seen, resumed.events_seen_at_start, rt.events_delivered
        ));
    }
    if failures.is_empty() {
        remove_checkpoint(&snapshot_path, base.checkpoint_partitions);
    }

    Ok(NetOutcome {
        canonical_identical: chaos.canonical() == reference_canonical,
        resume_identical,
        killed_rounds: killed.rounds,
        report: chaos,
        transport: t,
        resumed_transport: rt,
        failures,
    })
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

fn lint_json(report: &ServeReport) -> String {
    let lint: Vec<String> = report
        .lint_warnings
        .iter()
        .map(|d| format!("\"{}\"", json_escape(&d.to_string())))
        .collect();
    lint.join(", ")
}

fn soak_json(name: &str, outcome: &SoakOutcome) -> String {
    let r = &outcome.report;
    let widths: Vec<String> = outcome.shard_widths.iter().map(usize::to_string).collect();
    let mut out = String::new();
    let _ = write!(
        out,
        concat!(
            "    \"{name}\": {{\n",
            "      \"scenario\": \"{name}\",\n",
            "      \"events_seen\": {events},\n",
            "      \"events_per_sec\": {eps:.1},\n",
            "      \"incidents_per_sec\": {ips:.1},\n",
            "      \"wall_seconds\": {wall:.3},\n",
            "      \"ticks\": {ticks},\n",
            "      \"rounds\": {rounds},\n",
            "      \"admitted\": {admitted},\n",
            "      \"shed\": {{ \"queue_full\": {shed_queue} }},\n",
            "      \"degraded_admissions\": {degraded},\n",
            "      \"recovered\": {recovered},\n",
            "      \"terminated_faulty\": {term_faulty},\n",
            "      \"step_limit\": {step_limit},\n",
            "      \"controller_error\": {ctrl_err},\n",
            "      \"quarantined\": {quarantined},\n",
            "      \"escalated_resilient\": {esc_res},\n",
            "      \"escalated_anytime\": {esc_any},\n",
            "      \"decisions\": {decisions},\n",
            "      \"decision_latency_p50_ms\": {p50:.4},\n",
            "      \"decision_latency_p99_ms\": {p99:.4},\n",
            "      \"deadline_ms\": {deadline:.1},\n",
            "      \"deadline_misses\": {misses},\n",
            "      \"checkpoints_written\": {cps},\n",
            "      \"snapshot_retries\": {retries},\n",
            "      \"killed_after_rounds\": {killed_rounds},\n",
            "      \"resumed_from_tick\": {resumed_from},\n",
            "      \"shard_widths\": [{widths}],\n",
            "      \"shard_identical\": {shard_ok},\n",
            "      \"resume_identical\": {resume_ok},\n",
            "      \"lost_incidents\": {lost},\n",
            "      \"suppressed_lint_warnings\": {suppressed},\n",
            "      \"lint_warnings\": [{lint}]\n",
            "    }}"
        ),
        name = name,
        events = r.events_seen,
        eps = r.events_per_sec(),
        ips = r.incidents_per_sec(),
        wall = r.wall_seconds,
        ticks = r.ticks,
        rounds = r.rounds,
        admitted = r.admitted,
        shed_queue = r.shed.queue_full,
        degraded = r.degraded_admissions,
        recovered = r.count(IncidentStatus::Recovered),
        term_faulty = r.count(IncidentStatus::TerminatedFaulty),
        step_limit = r.count(IncidentStatus::StepLimit),
        ctrl_err = r.count(IncidentStatus::ControllerError),
        quarantined = r.count(IncidentStatus::Quarantined),
        esc_res = r.escalated_resilient,
        esc_any = r.escalated_anytime,
        decisions = r.decisions,
        p50 = r.latency.p50() as f64 / 1e6,
        p99 = r.latency.p99() as f64 / 1e6,
        deadline = r.deadline.as_secs_f64() * 1e3,
        misses = r.deadline_misses,
        cps = outcome.checkpoints_written,
        retries = outcome.snapshot_retries,
        killed_rounds = outcome.killed_rounds,
        resumed_from = outcome
            .resumed_from
            .map_or("null".to_string(), |t| t.to_string()),
        widths = widths.join(", "),
        shard_ok = outcome.shard_identical,
        resume_ok = outcome.resume_identical,
        lost = r.lost_incidents(),
        suppressed = r.suppressed_lint_warnings,
        lint = lint_json(r),
    );
    out
}

fn transport_json(t: &TransportCounts, indent: &str) -> String {
    format!(
        concat!(
            "{{\n",
            "{i}  \"frames_seen\": {frames},\n",
            "{i}  \"events_delivered\": {delivered},\n",
            "{i}  \"end_frames\": {ends},\n",
            "{i}  \"rejected_frames\": {rejected},\n",
            "{i}  \"rejected_garbage\": {garbage},\n",
            "{i}  \"rejected_version\": {version},\n",
            "{i}  \"rejected_kind\": {kind},\n",
            "{i}  \"rejected_oversized\": {oversized},\n",
            "{i}  \"rejected_length\": {length},\n",
            "{i}  \"rejected_checksum\": {checksum},\n",
            "{i}  \"rejected_stale\": {stale},\n",
            "{i}  \"rejected_duplicate\": {duplicate},\n",
            "{i}  \"connections\": {conns},\n",
            "{i}  \"disconnects\": {disc},\n",
            "{i}  \"slow_client_drops\": {slow},\n",
            "{i}  \"bytes_read\": {bytes}\n",
            "{i}}}"
        ),
        i = indent,
        frames = t.frames_seen,
        delivered = t.events_delivered,
        ends = t.end_frames,
        rejected = t.rejected_frames(),
        garbage = t.rejected_garbage,
        version = t.rejected_version,
        kind = t.rejected_kind,
        oversized = t.rejected_oversized,
        length = t.rejected_length,
        checksum = t.rejected_checksum,
        stale = t.rejected_stale,
        duplicate = t.rejected_duplicate,
        conns = t.connections,
        disc = t.disconnects,
        slow = t.slow_client_drops,
        bytes = t.bytes_read,
    )
}

fn net_json(name: &str, outcome: &NetOutcome) -> String {
    let r = &outcome.report;
    let gates: Vec<String> = outcome
        .failures
        .iter()
        .map(|f| format!("\"{}\"", json_escape(f)))
        .collect();
    format!(
        concat!(
            "    \"{name}\": {{\n",
            "      \"scenario\": \"{name}\",\n",
            "      \"ticks\": {ticks},\n",
            "      \"events_seen\": {events},\n",
            "      \"events_per_sec\": {eps:.1},\n",
            "      \"wall_seconds\": {wall:.3},\n",
            "      \"admitted\": {admitted},\n",
            "      \"shed\": {{ \"queue_full\": {shed_queue} }},\n",
            "      \"recovered\": {recovered},\n",
            "      \"quarantined\": {quarantined},\n",
            "      \"lost_incidents\": {lost},\n",
            "      \"canonical_identical\": {canon},\n",
            "      \"resume_identical\": {resume},\n",
            "      \"killed_after_rounds\": {killed_rounds},\n",
            "      \"suppressed_lint_warnings\": {suppressed},\n",
            "      \"lint_warnings\": [{lint}],\n",
            "      \"transport\": {transport},\n",
            "      \"resume_transport\": {resume_transport},\n",
            "      \"gate_failures\": [{gates}]\n",
            "    }}"
        ),
        name = name,
        ticks = r.ticks,
        events = r.events_seen,
        eps = r.events_per_sec(),
        wall = r.wall_seconds,
        admitted = r.admitted,
        shed_queue = r.shed.queue_full,
        recovered = r.count(IncidentStatus::Recovered),
        quarantined = r.count(IncidentStatus::Quarantined),
        lost = r.lost_incidents(),
        canon = outcome.canonical_identical,
        resume = outcome.resume_identical,
        killed_rounds = outcome.killed_rounds,
        suppressed = r.suppressed_lint_warnings,
        lint = lint_json(r),
        transport = transport_json(&outcome.transport, "      "),
        resume_transport = transport_json(&outcome.resumed_transport, "      "),
        gates = gates.join(", "),
    )
}

// ---------------------------------------------------------------------------
// main
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ticks = flag(&args, "--ticks", 240u64);
    let net_ticks = flag(&args, "--net-ticks", 64u64);
    let schedule_name = string_flag(&args, "--schedule", "bursty");
    let rate = flag(&args, "--rate", 250usize);
    let burst = flag(&args, "--burst", 750usize);
    let period = flag(&args, "--period", 10u64);
    let seed = flag(&args, "--seed", 7u64);
    let shards = shards_flag(&args, &[1, 4]);
    let max_live = flag(&args, "--max-live", 8usize);
    let queue = flag(&args, "--queue", 256usize);
    let steps_per_round = flag(&args, "--steps-per-round", 2usize);
    let max_steps = flag(&args, "--max-steps", 60usize);
    let deadline_ms = flag(&args, "--deadline-ms", 50u64);
    let failures = flag(&args, "--failures", 0.05f64);
    let dropouts = flag(&args, "--dropouts", 0.05f64);
    let corruption = flag(&args, "--corruption", 0.02f64);
    let kill_round = flag(&args, "--kill-round", 40u64);
    let chaos_incident = flag(&args, "--chaos-incident", 2u64);
    let partitions = flag(&args, "--partitions", 4usize);
    let min_events_per_sec = flag(&args, "--min-events-per-sec", 10_000.0f64);
    let snapshot = string_flag(&args, "--snapshot", "serve.snapshot");
    let out_path = string_flag(&args, "--out", "BENCH_serve.json");
    let soak_names = scenario_list(&args, "--scenarios", &["emn", "two-server"]);
    let net_names = scenario_list(
        &args,
        "--net-scenarios",
        &["emn", "web3tier-small", "cellfleet-mid"],
    );

    let schedule = match Schedule::parse(&schedule_name, rate, burst, period) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[serve] {e}");
            std::process::exit(1);
        }
    };
    if shards.is_empty() || shards.contains(&0) {
        eprintln!("[serve] --shards needs a comma list of positive widths");
        std::process::exit(1);
    }

    let plan = PerturbationPlan {
        seed: seed ^ 0x5EED_FA17,
        action_failure_prob: failures,
        monitor_dropout_prob: dropouts,
        obs_corruption_prob: corruption,
        ..PerturbationPlan::none()
    };
    let base = ServeConfig {
        max_live,
        queue_capacity: queue,
        steps_per_round,
        max_steps,
        deadline: Duration::from_millis(deadline_ms),
        plan,
        master_seed: seed,
        checkpoint_partitions: partitions.max(1),
        // The chaos drill poisons one early incident in *every* run
        // (reference, width sweep, kill/resume, socket legs), so
        // quarantine isolation is part of the determinism comparison.
        chaos_panic_incidents: vec![chaos_incident],
        verbose: true,
        ..ServeConfig::default()
    };

    let registry = bpr::scenario::builtin();
    let mut failures_seen: Vec<String> = Vec::new();
    let mut worlds: Vec<World> = Vec::new();
    for name in soak_names.iter().chain(&net_names) {
        if worlds.iter().any(|w| w.name() == name) {
            continue;
        }
        match World::resolve(&registry, name, &base) {
            Ok(w) => worlds.push(w),
            Err(e) => {
                eprintln!("[serve] {e} (available: {})", registry.names().join(", "));
                std::process::exit(2);
            }
        }
    }
    let world = |name: &str| {
        worlds
            .iter()
            .find(|w| w.name() == name)
            .expect("resolved above")
    };

    // --- In-process soaks.
    let mut soak_blocks = Vec::new();
    let mut emn_eps = 0.0f64;
    for name in &soak_names {
        let w = world(name);
        eprintln!(
            "[serve] soaking {name} ({ticks} ticks, {} schedule, shards {shards:?}, \
             kill at round {kill_round})",
            schedule.name(),
        );
        let params = SoakParams {
            seed,
            schedule: schedule.clone(),
            ticks,
            shards: shards.clone(),
            kill_round,
            snapshot: snapshot.clone(),
        };
        match soak_world(w, &base, &params) {
            Ok(outcome) => {
                let r = &outcome.report;
                eprintln!(
                    "[serve] {name}: {} events ({:.0}/s), {} admitted, {} shed, {} quarantined, \
                     p50 {:.3} ms, p99 {:.3} ms, {} deadline misses, {} lint suppressed",
                    r.events_seen,
                    r.events_per_sec(),
                    r.admitted,
                    r.shed.total(),
                    r.count(IncidentStatus::Quarantined),
                    r.latency.p50() as f64 / 1e6,
                    r.latency.p99() as f64 / 1e6,
                    r.deadline_misses,
                    r.suppressed_lint_warnings,
                );
                if !outcome.shard_identical {
                    failures_seen.push(format!("{name}: shard-width divergence"));
                }
                if !outcome.resume_identical {
                    failures_seen.push(format!("{name}: kill/resume divergence"));
                }
                if outcome.resumed_from.is_none() {
                    failures_seen.push(format!("{name}: resume never engaged"));
                }
                if r.count(IncidentStatus::Quarantined) == 0 {
                    failures_seen
                        .push(format!("{name}: chaos drill produced no quarantine record"));
                }
                if name == "emn" {
                    emn_eps = r.events_per_sec();
                    if emn_eps < min_events_per_sec {
                        failures_seen.push(format!(
                            "emn: sustained {emn_eps:.0} events/s < required {min_events_per_sec:.0}"
                        ));
                    }
                }
                soak_blocks.push(soak_json(name, &outcome));
            }
            Err(e) => {
                eprintln!("[serve] GATE FAILURE: {e}");
                failures_seen.push(e);
            }
        }
    }

    // --- Network chaos soaks.
    let mut net_blocks = Vec::new();
    for name in &net_names {
        let w = world(name);
        // EMN carries the loopback throughput floor and runs at full
        // scale; the generated corpus runs a shorter stream (its
        // models are larger, the transport contract is the same).
        let (leg_ticks, floor) = if name == "emn" {
            (ticks, Some(min_events_per_sec))
        } else {
            (net_ticks, None)
        };
        let params = NetParams {
            seed,
            schedule: schedule.clone(),
            ticks: leg_ticks,
            kill_round: kill_round.clamp(1, (leg_ticks / 2).max(1)),
            snapshot: snapshot.clone(),
            min_events_per_sec: floor,
        };
        eprintln!(
            "[serve] network chaos soak on {name} ({leg_ticks} ticks over loopback, \
             kill at round {})",
            params.kill_round
        );
        match net_soak(w, &base, &params) {
            Ok(outcome) => {
                let t = &outcome.transport;
                eprintln!(
                    "[serve] {name}: wire {} frames ({} delivered, {} rejected: \
                     {} garbage/{} version/{} kind/{} oversized/{} checksum/{} stale/{} dup), \
                     {} conns, {} disconnects, {} slow drops, {:.0} events/s",
                    t.frames_seen,
                    t.events_delivered,
                    t.rejected_frames(),
                    t.rejected_garbage,
                    t.rejected_version,
                    t.rejected_kind,
                    t.rejected_oversized,
                    t.rejected_checksum,
                    outcome.resumed_transport.rejected_stale,
                    t.rejected_duplicate,
                    t.connections,
                    t.disconnects,
                    t.slow_client_drops,
                    outcome.report.events_per_sec(),
                );
                for f in &outcome.failures {
                    eprintln!("[serve] GATE FAILURE: {f}");
                }
                failures_seen.extend(outcome.failures.iter().cloned());
                net_blocks.push(net_json(name, &outcome));
            }
            Err(e) => {
                eprintln!("[serve] GATE FAILURE: {e}");
                failures_seen.push(e);
            }
        }
    }

    let passed = failures_seen.is_empty();
    let gate_list: Vec<String> = failures_seen
        .iter()
        .map(|f| format!("\"{}\"", json_escape(f)))
        .collect();
    let scenario_list_json: Vec<String> = soak_names
        .iter()
        .map(|n| format!("\"{}\"", json_escape(n)))
        .collect();
    let net_list_json: Vec<String> = net_names
        .iter()
        .map(|n| format!("\"{}\"", json_escape(n)))
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"config\": {{\n",
            "    \"scenarios\": [{scenarios}],\n",
            "    \"net_scenarios\": [{net_scenarios}],\n",
            "    \"ticks\": {ticks},\n",
            "    \"net_ticks\": {net_ticks},\n",
            "    \"schedule\": \"{schedule}\",\n",
            "    \"rate\": {rate},\n",
            "    \"burst\": {burst},\n",
            "    \"period\": {period},\n",
            "    \"seed\": {seed},\n",
            "    \"max_live\": {max_live},\n",
            "    \"queue_capacity\": {queue},\n",
            "    \"steps_per_round\": {spr},\n",
            "    \"max_steps\": {max_steps},\n",
            "    \"kill_round\": {kill_round},\n",
            "    \"chaos_incident\": {chaos},\n",
            "    \"checkpoint_partitions\": {partitions},\n",
            "    \"min_events_per_sec\": {min_eps:.0}\n",
            "  }},\n",
            "  \"soaks\": {{\n{soaks}\n  }},\n",
            "  \"net_soaks\": {{\n{nets}\n  }},\n",
            "  \"emn_events_per_sec\": {emn_eps:.1},\n",
            "  \"gate_failures\": [{gates}],\n",
            "  \"passed\": {passed}\n",
            "}}\n"
        ),
        scenarios = scenario_list_json.join(", "),
        net_scenarios = net_list_json.join(", "),
        ticks = ticks,
        net_ticks = net_ticks,
        schedule = schedule.name(),
        rate = rate,
        burst = burst,
        period = period,
        seed = seed,
        max_live = max_live,
        queue = queue,
        spr = steps_per_round,
        max_steps = max_steps,
        kill_round = kill_round,
        chaos = chaos_incident,
        partitions = partitions.max(1),
        min_eps = min_events_per_sec,
        soaks = soak_blocks.join(",\n"),
        nets = net_blocks.join(",\n"),
        emn_eps = emn_eps,
        gates = gate_list.join(", "),
        passed = passed,
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("[serve] could not write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("[serve] wrote {out_path}");
    if !passed {
        eprintln!("[serve] FAILED: {}", failures_seen.join("; "));
        std::process::exit(1);
    }
    eprintln!("[serve] all gates passed");
}
