//! Chaos soak harness for the `bpr-serve` recovery daemon: drives
//! bursty synthetic monitor-event load through EMN and two-server
//! worlds with `DegradedWorld` fault injection, a poisoned-incident
//! chaos drill, and a mid-soak kill-and-resume — then gates hard on
//! the daemon's contracts:
//!
//! 1. **Zero incident loss** — every admitted incident ends in a typed
//!    terminal status (recovered / terminated-faulty / step-limit /
//!    controller-error / quarantined); shed events carry typed,
//!    counted rejections.
//! 2. **Shard-width determinism** — canonical results are bit-identical
//!    at every requested shard width.
//! 3. **Kill/resume determinism** — a run killed mid-soak and resumed
//!    from its snapshot reproduces the uninterrupted run's per-incident
//!    decision sequences exactly.
//! 4. **Throughput** — the EMN soak sustains at least
//!    `--min-events-per-sec` ingested events per second (default 10⁴).
//!
//! Emits `BENCH_serve.json` with p50/p99 decision latency, sustained
//! incident throughput, shed/quarantine/resume counts, and the model
//! lint warnings that were surfaced at daemon startup.
//!
//! Usage:
//! `cargo run -p bpr-bench --bin serve --release -- \
//!     [--ticks 240] [--schedule bursty] [--rate 250] [--burst 750] \
//!     [--period 10] [--seed 7] [--shards 1,4] [--max-live 8] \
//!     [--queue 256] [--steps-per-round 2] [--max-steps 60] \
//!     [--deadline-ms 50] [--failures 0.05] [--dropouts 0.05] \
//!     [--corruption 0.02] [--kill-round 40] [--chaos-incident 2] \
//!     [--min-events-per-sec 10000] [--snapshot serve.snapshot] \
//!     [--out BENCH_serve.json]`

use bpr_bench::experiments::emn_model;
use bpr_bench::flag;
use bpr_core::snapshot::CheckpointPolicy;
use bpr_core::RecoveryModel;
use bpr_emn::faults::EmnState;
use bpr_emn::two_server;
use bpr_mdp::StateId;
use bpr_serve::{Daemon, IncidentStatus, Schedule, ServeConfig, ServeReport, SyntheticEvents};
use bpr_sim::PerturbationPlan;
use std::fmt::Write as _;
use std::time::Duration;

fn shards_flag(args: &[String], default: &[usize]) -> Vec<usize> {
    args.iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| {
            v.split(',')
                .map(|p| p.trim().parse::<usize>())
                .collect::<Result<Vec<_>, _>>()
                .ok()
        })
        .unwrap_or_else(|| default.to_vec())
}

fn string_flag(args: &[String], name: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect()
}

struct WorldSpec {
    name: &'static str,
    model: RecoveryModel,
    faults: Vec<StateId>,
    /// Seconds the human operator needs when the controller gives up;
    /// EMN's default (6 h) dwarfs two-server's synthetic 50 s.
    operator_response_time: f64,
}

struct SoakOutcome {
    report: ServeReport,
    shard_widths: Vec<usize>,
    shard_identical: bool,
    resume_identical: bool,
    resumed_from: Option<u64>,
    killed_rounds: u64,
    checkpoints_written: u64,
    snapshot_retries: u64,
}

/// Everything one world's soak shares across its five runs.
struct SoakParams {
    seed: u64,
    schedule: Schedule,
    ticks: u64,
    shards: Vec<usize>,
    kill_round: u64,
    snapshot: String,
}

#[allow(clippy::too_many_lines)]
fn soak_world(spec: &WorldSpec, base: &ServeConfig, p: &SoakParams) -> Result<SoakOutcome, String> {
    let SoakParams {
        seed,
        schedule,
        ticks,
        shards,
        kill_round,
        snapshot,
    } = p;
    let (seed, ticks, kill_round) = (*seed, *ticks, *kill_round);
    let source = || {
        SyntheticEvents::new(seed, schedule.clone(), spec.faults.clone(), ticks)
            .map_err(|e| format!("{}: event source: {e}", spec.name))
    };
    let base = &ServeConfig {
        operator_response_time: spec.operator_response_time,
        ..base.clone()
    };

    // Reference run: first shard width, no checkpointing.
    let reference_config = ServeConfig {
        shards: shards[0],
        ..base.clone()
    };
    let mut daemon =
        Daemon::new(&spec.model, reference_config).map_err(|e| format!("{}: {e}", spec.name))?;
    let reference = daemon
        .run(&mut source()?)
        .map_err(|e| format!("{}: reference run: {e}", spec.name))?;
    let reference_canonical = reference.canonical();

    // Shard-width determinism: every width must reproduce the
    // reference bit-for-bit. The widest run is the measured one.
    let mut measured = reference.clone();
    let mut shard_identical = true;
    for &width in &shards[1..] {
        let config = ServeConfig {
            shards: width,
            ..base.clone()
        };
        let mut daemon =
            Daemon::new(&spec.model, config).map_err(|e| format!("{}: {e}", spec.name))?;
        let report = daemon
            .run(&mut source()?)
            .map_err(|e| format!("{}: width-{width} run: {e}", spec.name))?;
        if report.canonical() != reference_canonical {
            eprintln!(
                "[serve] GATE FAILURE {}: width {width} diverged from width {}",
                spec.name, shards[0]
            );
            shard_identical = false;
        }
        measured = report;
    }

    // Kill/resume drill: checkpoint every few rounds (count trigger)
    // plus a wall-clock trigger, kill mid-soak, resume, compare.
    let snapshot_path = format!("{snapshot}.{}", spec.name);
    let _ = std::fs::remove_file(&snapshot_path);
    let killed_config = ServeConfig {
        shards: *shards.last().expect("non-empty shards"),
        checkpoint: Some(
            CheckpointPolicy::new(&snapshot_path, 5)
                .with_every_duration(Duration::from_millis(250)),
        ),
        kill_after_rounds: Some(kill_round),
        ..base.clone()
    };
    let mut daemon =
        Daemon::new(&spec.model, killed_config).map_err(|e| format!("{}: {e}", spec.name))?;
    let killed = daemon
        .run(&mut source()?)
        .map_err(|e| format!("{}: killed run: {e}", spec.name))?;
    let resumed_config = ServeConfig {
        shards: shards[0],
        checkpoint: Some(CheckpointPolicy::new(&snapshot_path, 5)),
        ..base.clone()
    };
    let mut daemon =
        Daemon::new(&spec.model, resumed_config).map_err(|e| format!("{}: {e}", spec.name))?;
    let resumed = daemon
        .run(&mut source()?)
        .map_err(|e| format!("{}: resumed run: {e}", spec.name))?;
    let resume_identical = resumed.canonical() == reference_canonical;
    if !resume_identical {
        eprintln!(
            "[serve] GATE FAILURE {}: kill/resume diverged from the uninterrupted run",
            spec.name
        );
        // Leave the snapshot behind for post-mortem.
    } else {
        let _ = std::fs::remove_file(&snapshot_path);
    }

    for (label, report) in [
        ("reference", &reference),
        ("measured", &measured),
        ("killed", &killed),
        ("resumed", &resumed),
    ] {
        if report.lost_incidents() != 0 {
            return Err(format!(
                "{}: {label} run lost {} incidents",
                spec.name,
                report.lost_incidents()
            ));
        }
        // Killed runs may leave events in the (persisted) queue; every
        // other event must be admitted or carry a typed shed count.
        if report.admitted + report.shed.total() + report.queued_at_exit != report.events_seen {
            return Err(format!(
                "{}: {label} run dropped events without a typed shed reason",
                spec.name
            ));
        }
    }

    Ok(SoakOutcome {
        shard_widths: shards.to_vec(),
        shard_identical,
        resume_identical,
        resumed_from: resumed.resumed_from,
        killed_rounds: killed.rounds,
        checkpoints_written: killed.checkpoints_written + resumed.checkpoints_written,
        snapshot_retries: killed.snapshot_retries + resumed.snapshot_retries,
        report: measured,
    })
}

fn world_json(spec: &WorldSpec, outcome: &SoakOutcome) -> String {
    let r = &outcome.report;
    let lint: Vec<String> = r
        .lint_warnings
        .iter()
        .map(|d| format!("\"{}\"", json_escape(&d.to_string())))
        .collect();
    let widths: Vec<String> = outcome.shard_widths.iter().map(usize::to_string).collect();
    let mut out = String::new();
    let _ = write!(
        out,
        concat!(
            "    \"{name}\": {{\n",
            "      \"events_seen\": {events},\n",
            "      \"events_per_sec\": {eps:.1},\n",
            "      \"incidents_per_sec\": {ips:.1},\n",
            "      \"wall_seconds\": {wall:.3},\n",
            "      \"ticks\": {ticks},\n",
            "      \"rounds\": {rounds},\n",
            "      \"admitted\": {admitted},\n",
            "      \"shed\": {{ \"queue_full\": {shed_queue} }},\n",
            "      \"degraded_admissions\": {degraded},\n",
            "      \"recovered\": {recovered},\n",
            "      \"terminated_faulty\": {term_faulty},\n",
            "      \"step_limit\": {step_limit},\n",
            "      \"controller_error\": {ctrl_err},\n",
            "      \"quarantined\": {quarantined},\n",
            "      \"escalated_resilient\": {esc_res},\n",
            "      \"escalated_anytime\": {esc_any},\n",
            "      \"decisions\": {decisions},\n",
            "      \"decision_latency_p50_ms\": {p50:.4},\n",
            "      \"decision_latency_p99_ms\": {p99:.4},\n",
            "      \"deadline_ms\": {deadline:.1},\n",
            "      \"deadline_misses\": {misses},\n",
            "      \"checkpoints_written\": {cps},\n",
            "      \"snapshot_retries\": {retries},\n",
            "      \"killed_after_rounds\": {killed_rounds},\n",
            "      \"resumed_from_tick\": {resumed_from},\n",
            "      \"shard_widths\": [{widths}],\n",
            "      \"shard_identical\": {shard_ok},\n",
            "      \"resume_identical\": {resume_ok},\n",
            "      \"lost_incidents\": {lost},\n",
            "      \"lint_warnings\": [{lint}]\n",
            "    }}"
        ),
        name = spec.name,
        events = r.events_seen,
        eps = r.events_per_sec(),
        ips = r.incidents_per_sec(),
        wall = r.wall_seconds,
        ticks = r.ticks,
        rounds = r.rounds,
        admitted = r.admitted,
        shed_queue = r.shed.queue_full,
        degraded = r.degraded_admissions,
        recovered = r.count(IncidentStatus::Recovered),
        term_faulty = r.count(IncidentStatus::TerminatedFaulty),
        step_limit = r.count(IncidentStatus::StepLimit),
        ctrl_err = r.count(IncidentStatus::ControllerError),
        quarantined = r.count(IncidentStatus::Quarantined),
        esc_res = r.escalated_resilient,
        esc_any = r.escalated_anytime,
        decisions = r.decisions,
        p50 = r.latency.p50() as f64 / 1e6,
        p99 = r.latency.p99() as f64 / 1e6,
        deadline = r.deadline.as_secs_f64() * 1e3,
        misses = r.deadline_misses,
        cps = outcome.checkpoints_written,
        retries = outcome.snapshot_retries,
        killed_rounds = outcome.killed_rounds,
        resumed_from = outcome
            .resumed_from
            .map_or("null".to_string(), |t| t.to_string()),
        widths = widths.join(", "),
        shard_ok = outcome.shard_identical,
        resume_ok = outcome.resume_identical,
        lost = r.lost_incidents(),
        lint = lint.join(", "),
    );
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ticks = flag(&args, "--ticks", 240u64);
    let schedule_name = string_flag(&args, "--schedule", "bursty");
    let rate = flag(&args, "--rate", 250usize);
    let burst = flag(&args, "--burst", 750usize);
    let period = flag(&args, "--period", 10u64);
    let seed = flag(&args, "--seed", 7u64);
    let shards = shards_flag(&args, &[1, 4]);
    let max_live = flag(&args, "--max-live", 8usize);
    let queue = flag(&args, "--queue", 256usize);
    let steps_per_round = flag(&args, "--steps-per-round", 2usize);
    let max_steps = flag(&args, "--max-steps", 60usize);
    let deadline_ms = flag(&args, "--deadline-ms", 50u64);
    let failures = flag(&args, "--failures", 0.05f64);
    let dropouts = flag(&args, "--dropouts", 0.05f64);
    let corruption = flag(&args, "--corruption", 0.02f64);
    let kill_round = flag(&args, "--kill-round", 40u64);
    let chaos_incident = flag(&args, "--chaos-incident", 2u64);
    let min_events_per_sec = flag(&args, "--min-events-per-sec", 10_000.0f64);
    let snapshot = string_flag(&args, "--snapshot", "serve.snapshot");
    let out_path = string_flag(&args, "--out", "BENCH_serve.json");

    let schedule = match Schedule::parse(&schedule_name, rate, burst, period) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[serve] {e}");
            std::process::exit(1);
        }
    };
    if shards.is_empty() || shards.contains(&0) {
        eprintln!("[serve] --shards needs a comma list of positive widths");
        std::process::exit(1);
    }

    let plan = PerturbationPlan {
        seed: seed ^ 0x5EED_FA17,
        action_failure_prob: failures,
        monitor_dropout_prob: dropouts,
        obs_corruption_prob: corruption,
        ..PerturbationPlan::none()
    };
    let base = ServeConfig {
        max_live,
        queue_capacity: queue,
        steps_per_round,
        max_steps,
        deadline: Duration::from_millis(deadline_ms),
        plan,
        master_seed: seed,
        // The chaos drill poisons one early incident in *every* run
        // (reference, width sweep, kill/resume), so quarantine
        // isolation is part of the determinism comparison too.
        chaos_panic_incidents: vec![chaos_incident],
        verbose: true,
        ..ServeConfig::default()
    };

    let emn = match emn_model() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("[serve] emn model: {e}");
            std::process::exit(1);
        }
    };
    let two = match two_server::default_model() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("[serve] two-server model: {e}");
            std::process::exit(1);
        }
    };
    let worlds = [
        WorldSpec {
            name: "emn",
            faults: EmnState::zombies().iter().map(|s| s.state_id()).collect(),
            model: emn,
            operator_response_time: bpr_emn::EmnConfig::default().operator_response_time,
        },
        WorldSpec {
            name: "two_server",
            faults: vec![
                StateId::new(two_server::FAULT_A),
                StateId::new(two_server::FAULT_B),
            ],
            model: two,
            operator_response_time: 50.0,
        },
    ];

    let mut failures_seen = Vec::new();
    let mut blocks = Vec::new();
    let mut emn_eps = 0.0f64;
    for spec in &worlds {
        eprintln!(
            "[serve] soaking {} ({} ticks, {} schedule, shards {:?}, kill at round {kill_round})",
            spec.name,
            ticks,
            schedule.name(),
            shards
        );
        let params = SoakParams {
            seed,
            schedule: schedule.clone(),
            ticks,
            shards: shards.clone(),
            kill_round,
            snapshot: snapshot.clone(),
        };
        match soak_world(spec, &base, &params) {
            Ok(outcome) => {
                let r = &outcome.report;
                eprintln!(
                    "[serve] {}: {} events ({:.0}/s), {} admitted, {} shed, {} quarantined, \
                     p50 {:.3} ms, p99 {:.3} ms, {} deadline misses",
                    spec.name,
                    r.events_seen,
                    r.events_per_sec(),
                    r.admitted,
                    r.shed.total(),
                    r.count(IncidentStatus::Quarantined),
                    r.latency.p50() as f64 / 1e6,
                    r.latency.p99() as f64 / 1e6,
                    r.deadline_misses,
                );
                if !outcome.shard_identical {
                    failures_seen.push(format!("{}: shard-width divergence", spec.name));
                }
                if !outcome.resume_identical {
                    failures_seen.push(format!("{}: kill/resume divergence", spec.name));
                }
                if outcome.resumed_from.is_none() {
                    failures_seen.push(format!("{}: resume never engaged", spec.name));
                }
                if r.count(IncidentStatus::Quarantined) == 0 {
                    failures_seen.push(format!(
                        "{}: chaos drill produced no quarantine record",
                        spec.name
                    ));
                }
                if spec.name == "emn" {
                    emn_eps = r.events_per_sec();
                    if emn_eps < min_events_per_sec {
                        failures_seen.push(format!(
                            "emn: sustained {emn_eps:.0} events/s < required {min_events_per_sec:.0}"
                        ));
                    }
                }
                blocks.push(world_json(spec, &outcome));
            }
            Err(e) => {
                eprintln!("[serve] GATE FAILURE: {e}");
                failures_seen.push(e);
            }
        }
    }

    let passed = failures_seen.is_empty();
    let gate_list: Vec<String> = failures_seen
        .iter()
        .map(|f| format!("\"{}\"", json_escape(f)))
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"config\": {{\n",
            "    \"ticks\": {ticks},\n",
            "    \"schedule\": \"{schedule}\",\n",
            "    \"rate\": {rate},\n",
            "    \"burst\": {burst},\n",
            "    \"period\": {period},\n",
            "    \"seed\": {seed},\n",
            "    \"max_live\": {max_live},\n",
            "    \"queue_capacity\": {queue},\n",
            "    \"steps_per_round\": {spr},\n",
            "    \"max_steps\": {max_steps},\n",
            "    \"kill_round\": {kill_round},\n",
            "    \"chaos_incident\": {chaos},\n",
            "    \"min_events_per_sec\": {min_eps:.0}\n",
            "  }},\n",
            "  \"worlds\": {{\n{worlds}\n  }},\n",
            "  \"emn_events_per_sec\": {emn_eps:.1},\n",
            "  \"gate_failures\": [{gates}],\n",
            "  \"passed\": {passed}\n",
            "}}\n"
        ),
        ticks = ticks,
        schedule = schedule.name(),
        rate = rate,
        burst = burst,
        period = period,
        seed = seed,
        max_live = max_live,
        queue = queue,
        spr = steps_per_round,
        max_steps = max_steps,
        kill_round = kill_round,
        chaos = chaos_incident,
        min_eps = min_events_per_sec,
        worlds = blocks.join(",\n"),
        emn_eps = emn_eps,
        gates = gate_list.join(", "),
        passed = passed,
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("[serve] could not write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("[serve] wrote {out_path}");
    if !passed {
        eprintln!("[serve] FAILED: {}", failures_seen.join("; "));
        std::process::exit(1);
    }
    eprintln!("[serve] all gates passed");
}
