//! Static-analysis gate over the scenario registry: lints every
//! registered model (raw and after both §3.1 transforms) with
//! `bpr-lint`, prints the human-readable reports, writes the
//! machine-readable JSON bundle (reports + full lint catalog) and the
//! corpus manifest, and exits non-zero if any error-severity finding
//! — or any warning outside a scenario's allowlist — exists. This is
//! the CI soundness gate.
//!
//! Usage:
//! `cargo run -p bpr-bench --bin modelcheck --release -- \
//!     [--scenario name[,name...]] [--out MODELCHECK.json] \
//!     [--manifest MODELCHECK_manifest.json] [--broken] [--quiet] \
//!     [--list-scenarios]`
//!
//! By default every scenario in `bpr::scenario::builtin()` is linted
//! (the paper's EMN and two-server models plus the generated
//! `bpr-topo` corpus); `--scenario` restricts the gate to a
//! comma-separated subset. `--broken` additionally lints the
//! deliberately corrupted fixture, demonstrating (and letting tests
//! assert) the non-zero exit path.

use bpr_bench::modelcheck::{broken_report, bundle_json, lint_one, manifest_json, ScenarioReport};
use bpr_bench::string_flag;
use bpr_core::lint::Severity;
use bpr_core::scenario::Scenario;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let broken = args.iter().any(|a| a == "--broken");
    let quiet = args.iter().any(|a| a == "--quiet");
    let out_path = string_flag(&args, "--out", "MODELCHECK.json");
    let manifest_path = string_flag(&args, "--manifest", "MODELCHECK_manifest.json");

    let registry = bpr::scenario::builtin();
    if args.iter().any(|a| a == "--list-scenarios") {
        for scenario in registry.iter() {
            println!("{:<16} {}", scenario.name(), scenario.description());
        }
        return;
    }
    let selection = string_flag(&args, "--scenario", &registry.names().join(","));
    let mut scenarios: Vec<&dyn Scenario> = Vec::new();
    for name in selection.split(',').map(str::trim) {
        match registry.require(name) {
            Ok(scenario) => scenarios.push(scenario),
            Err(e) => {
                eprintln!("modelcheck: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut reports: Vec<ScenarioReport> = Vec::new();
    for scenario in &scenarios {
        match lint_one(*scenario) {
            Ok(rows) => reports.extend(rows),
            Err(e) => {
                eprintln!(
                    "modelcheck: building scenario '{}' failed: {e}",
                    scenario.name()
                );
                std::process::exit(2);
            }
        }
    }
    if broken {
        reports.push(broken_report());
    }

    if !quiet {
        for r in &reports {
            print!("{}", r.report.render());
            println!();
        }
    }

    let json = bundle_json(&reports);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("modelcheck: could not write {out_path}: {e}");
        std::process::exit(2);
    }
    match manifest_json(&scenarios) {
        Ok(manifest) => {
            if let Err(e) = std::fs::write(&manifest_path, &manifest) {
                eprintln!("modelcheck: could not write {manifest_path}: {e}");
                std::process::exit(2);
            }
        }
        Err(e) => {
            eprintln!("modelcheck: building the manifest failed: {e}");
            std::process::exit(2);
        }
    }

    let errors: usize = reports
        .iter()
        .map(|r| r.report.count(Severity::Error))
        .sum();
    let warnings: usize = reports.iter().map(|r| r.report.count(Severity::Warn)).sum();
    let unexpected: usize = reports.iter().map(|r| r.unexpected_warnings).sum();
    println!(
        "modelcheck: {} scenario(s), {} model stage(s), {errors} error(s), \
         {warnings} warning(s) ({unexpected} outside allowlists) -> {out_path}, {manifest_path}",
        scenarios.len(),
        reports.len()
    );
    if errors > 0 || unexpected > 0 {
        std::process::exit(1);
    }
}
