//! Static-analysis gate over the paper's models: lints the EMN and
//! two-server recovery models (raw and after both §3.1 transforms)
//! with `bpr-lint`, prints the human-readable reports, writes the
//! machine-readable JSON bundle (reports + full lint catalog), and
//! exits non-zero if any error-severity finding exists — the CI
//! soundness gate.
//!
//! Usage:
//! `cargo run -p bpr-bench --bin modelcheck --release -- \
//!     [--out MODELCHECK.json] [--broken] [--quiet]`
//!
//! `--broken` additionally lints the deliberately corrupted fixture,
//! demonstrating (and letting tests assert) the non-zero exit path.

use bpr_bench::modelcheck::{broken_fixture, bundle_json, lint_paper_models};
use bpr_core::lint::Severity;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let broken = args.iter().any(|a| a == "--broken");
    let quiet = args.iter().any(|a| a == "--quiet");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "MODELCHECK.json".to_string());

    let mut reports = match lint_paper_models() {
        Ok(reports) => reports,
        Err(e) => {
            eprintln!("modelcheck: building the paper models failed: {e}");
            std::process::exit(2);
        }
    };
    if broken {
        reports.push(broken_fixture());
    }

    if !quiet {
        for r in &reports {
            print!("{}", r.render());
            println!();
        }
    }

    let json = bundle_json(&reports);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("modelcheck: could not write {out_path}: {e}");
        std::process::exit(2);
    }

    let errors: usize = reports.iter().map(|r| r.count(Severity::Error)).sum();
    let warnings: usize = reports.iter().map(|r| r.count(Severity::Warn)).sum();
    println!(
        "modelcheck: {} model stage(s), {errors} error(s), {warnings} warning(s) -> {out_path}",
        reports.len()
    );
    if errors > 0 {
        std::process::exit(1);
    }
}
