//! Demonstrates the bound-existence claims of paper §3.1 on the EMN
//! model: the RA-Bound converges under both recovery transforms, the
//! BI-POMDP bound diverges, and the blind-policy bound diverges with
//! recovery notification but becomes finite once the terminate action
//! exists. Also reports the QMDP/FIB upper bounds (the paper's
//! future-work extension).
//!
//! Usage: `cargo run -p bpr-bench --bin bounds_compare --release`

use bpr_bench::experiments::bounds_comparison;

fn main() {
    for (notified, title) in [
        (true, "with recovery notification (S_phi absorbing)"),
        (
            false,
            "without recovery notification (terminate action added)",
        ),
    ] {
        println!("# EMN model, {title}");
        println!(
            "{:<24} {:>24} {:>12}",
            "bound", "value at uniform belief", "vectors"
        );
        match bounds_comparison(notified) {
            Ok(reports) => {
                for r in reports {
                    match r.value_at_uniform {
                        Some(v) => {
                            println!("{:<24} {:>24.2} {:>12}", r.name, v, r.n_vectors)
                        }
                        None => println!("{:<24} {:>24} {:>12}", r.name, "diverges", "-"),
                    }
                }
            }
            Err(e) => {
                eprintln!("bounds comparison failed: {e}");
                std::process::exit(1);
            }
        }
        println!();
    }
}
