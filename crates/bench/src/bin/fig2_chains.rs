//! Prints the RA-Bound Markov chains of the paper's Figure 2 for the
//! two-server model: (a) with recovery notification — null-fault states
//! made absorbing and free — and (b) without recovery notification —
//! the terminate state/action added with termination rewards
//! `r(s, a_T) = r̄(s)·t_op`. Also solves each chain (Eq. 5) to show the
//! per-state RA-Bound values.
//!
//! Usage: `cargo run -p bpr-bench --bin fig2_chains -- [--top 4.0]`

use bpr_bench::flag;
use bpr_emn::two_server;
use bpr_mdp::chain::{MarkovChain, SolveOpts};

fn print_chain(title: &str, chain: &MarkovChain, labels: &[String]) {
    println!("# {title}");
    println!("{:<14} {:>12}  transitions", "state", "mean reward");
    for s in 0..chain.n_states() {
        let row: Vec<String> = (0..chain.n_states())
            .filter(|&t| chain.transition_prob(s, t) > 0.0)
            .map(|t| format!("{} ({:.3})", labels[t], chain.transition_prob(s, t)))
            .collect();
        println!(
            "{:<14} {:>12.4}  -> {}",
            labels[s],
            chain.reward(s),
            row.join(", ")
        );
    }
    match chain.expected_total_reward(&SolveOpts::default()) {
        Ok(v) => {
            let pretty: Vec<String> = v
                .iter()
                .enumerate()
                .map(|(s, x)| format!("{} = {:.4}", labels[s], x))
                .collect();
            println!("RA-Bound values V-(s): {}", pretty.join(", "));
        }
        Err(e) => println!("RA-Bound solve failed: {e}"),
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let top = flag(&args, "--top", 4.0f64);
    let model = two_server::default_model().expect("two-server model builds");

    // Figure 2(a): with recovery notification.
    let notified = model.with_notification().expect("transform");
    let chain = notified.mdp().uniform_random_chain();
    let labels: Vec<String> = (0..notified.n_states())
        .map(|s| notified.mdp().state_label(s).to_string())
        .collect();
    print_chain(
        "Figure 2(a): RA-Bound chain WITH recovery notification",
        &chain,
        &labels,
    );

    // Figure 2(b): without recovery notification (terminate action).
    let t = model.without_notification(top).expect("transform");
    let chain = t.pomdp().mdp().uniform_random_chain();
    let labels: Vec<String> = (0..t.pomdp().n_states())
        .map(|s| t.pomdp().mdp().state_label(s).to_string())
        .collect();
    print_chain(
        &format!("Figure 2(b): RA-Bound chain WITHOUT recovery notification (t_op = {top})"),
        &chain,
        &labels,
    );
}
