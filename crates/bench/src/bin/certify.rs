//! Certified-bound gate over the scenario registry: checks every
//! planning kernel's claimed lower bound against the
//! kernel-independent certificates from `bpr-verify` (conditional-plan
//! under-approximation below, MDP ceiling above), runs the
//! BPR100-series policy-graph analysis on each compiled controller,
//! writes the per-belief gap rows to `CERTIFY.json`, and exits
//! non-zero on any soundness violation, dominance shortfall, or
//! error-severity finding. This is the CI certification gate.
//!
//! Usage:
//! `cargo run -p bpr-bench --bin certify --release -- \
//!     [--scenario name[,name...]] [--out CERTIFY.json] \
//!     [--sweeps N] [--refine N] [--max-nodes N] [--broken] \
//!     [--quiet] [--list-scenarios]`
//!
//! Defaults to the paper-scale scenarios (`emn`, `two-server`,
//! `web3tier-small`); `--broken` additionally certifies the seeded
//! corrupted-hyperplane fixture, demonstrating (and letting tests
//! assert) the non-zero exit path.

use bpr_bench::certify::{broken_certificate, certify_json, certify_scenario, CertifyConfig};
use bpr_bench::{flag, string_flag};
use bpr_core::scenario::Scenario;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let broken = args.iter().any(|a| a == "--broken");
    let quiet = args.iter().any(|a| a == "--quiet");
    let out_path = string_flag(&args, "--out", "CERTIFY.json");

    let registry = bpr::scenario::builtin();
    if args.iter().any(|a| a == "--list-scenarios") {
        for scenario in registry.iter() {
            println!("{:<22} {}", scenario.name(), scenario.description());
        }
        return;
    }

    let mut cfg = CertifyConfig::default();
    cfg.oracle.sweeps = flag(&args, "--sweeps", cfg.oracle.sweeps);
    cfg.refine_rounds = flag(&args, "--refine", cfg.refine_rounds);
    cfg.verify.max_nodes = flag(&args, "--max-nodes", cfg.verify.max_nodes);

    let selection = string_flag(&args, "--scenario", "emn,two-server,web3tier-small");
    let mut scenarios: Vec<&dyn Scenario> = Vec::new();
    for name in selection.split(',').map(str::trim) {
        match registry.require(name) {
            Ok(scenario) => scenarios.push(scenario),
            Err(e) => {
                eprintln!("certify: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut certificates = Vec::new();
    for scenario in &scenarios {
        match certify_scenario(*scenario, &cfg) {
            Ok(cert) => certificates.push(cert),
            Err(e) => {
                eprintln!("certify: scenario '{}' failed: {e}", scenario.name());
                std::process::exit(2);
            }
        }
    }
    if broken {
        match broken_certificate(&cfg) {
            Ok(cert) => certificates.push(cert),
            Err(e) => {
                eprintln!("certify: broken fixture failed to build: {e}");
                std::process::exit(2);
            }
        }
    }

    if !quiet {
        for cert in &certificates {
            println!(
                "== {}: {} ({} rows, {} error finding(s), oracle {} sweeps x {} points)",
                cert.scenario,
                if cert.passes() { "PASS" } else { "FAIL" },
                cert.rows.len(),
                cert.errors(),
                cert.oracle_sweeps,
                cert.oracle_points
            );
            for row in &cert.rows {
                println!(
                    "  {:>9} probe {:>2}: checked {:>14.6} in [{:>14.6}, {:>14.6}] \
                     gap_floor {:>10.3e} gap_ceil {:>10.3e}{}{}",
                    row.variant,
                    row.probe,
                    row.checked,
                    row.floor,
                    row.ceiling,
                    row.checked - row.floor,
                    row.ceiling - row.checked,
                    if row.sound { "" } else { "  UNSOUND" },
                    if row.dominated { "" } else { "  UNDOMINATED" }
                );
            }
            for report in &cert.reports {
                print!("{}", report.render());
            }
        }
    }

    let json = certify_json(&certificates);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("certify: could not write {out_path}: {e}");
        std::process::exit(2);
    }

    let failing: Vec<&str> = certificates
        .iter()
        .filter(|c| !c.passes())
        .map(|c| c.scenario.as_str())
        .collect();
    println!(
        "certify: {} scenario(s), {} gap row(s), {} failing -> {out_path}",
        certificates.len(),
        certificates.iter().map(|c| c.rows.len()).sum::<usize>(),
        failing.len()
    );
    if !failing.is_empty() {
        eprintln!("certify: failing: {}", failing.join(", "));
        std::process::exit(1);
    }
}
