//! Ablation studies over the design choices called out in DESIGN.md:
//!
//! 1. Operator response time `t_op` — how the termination-reward knob
//!    trades recovery aggressiveness against cost (paper §3.1 remark).
//! 2. Bounded-controller tree depth.
//! 3. SOR relaxation factor for the RA-Bound solve (paper §3.1 uses
//!    Gauss–Seidel with successive over-relaxation).
//! 4. Bound-vector storage cap (paper §4.3's finite-storage remark).
//! 5. Path-monitor coverage — how diagnosis quality feeds recovery cost.
//! 6. Bootstrap refinement vs. dense PBVI-style grid refinement of the
//!    RA-Bound.
//! 7. Path-probe routing (random 50/50 vs fixed disjoint monitor
//!    routes) under both the bounded and a diagnose-then-fix
//!    controller — the "path diversity" knob of the paper's Fig. 4.
//!
//! Usage: `cargo run -p bpr-bench --bin ablations --release -- \
//!     [--scenario emn] [--faults 120] [--seed 7] [--threads N]`
//!
//! Ablations 1–4 and 6 run on any registry scenario (resolved through
//! `bpr::scenario::builtin()`); 5 and 7 sweep `EmnConfig` knobs that
//! only exist on the paper's model and are skipped elsewhere.
//! Campaigns fan across `--threads` workers (default: all hardware
//! threads); results are bit-identical whatever the width.

use bpr_bench::{flag, scenario_flag};
use bpr_core::bootstrap::{bootstrap, BootstrapConfig, BootstrapVariant};
use bpr_core::{BoundedConfig, BoundedController};
use bpr_emn::actions::EmnAction;
use bpr_emn::faults::EmnState;
use bpr_mdp::chain::SolveOpts;
use bpr_par::WorkPool;
use bpr_pomdp::bounds::ra_bound;
use bpr_sim::{Campaign, CampaignSummary};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let episodes = flag(&args, "--faults", 120usize);
    let seed = flag(&args, "--seed", 7u64);
    let threads = flag(&args, "--threads", WorkPool::default().threads());
    let registry = bpr::scenario::builtin();
    let scenario = scenario_flag(&registry, &args, "emn");
    let model = scenario.build().expect("registry scenario builds");
    let faults = scenario.fault_population(&model);
    let t_op = scenario.operator_response_time();
    let conditioning = *model
        .observe_actions()
        .first()
        .expect("ablations need an observe action to condition the bootstrap on");
    // Depth-2 bootstrap trees branch with |A|·|O| per level — fine on
    // paper-scale models, minutes on the generated corpus; fall back
    // to depth 1 past EMN scale (same rule the experiments use).
    let boot_depth = if model.base().n_states() > 64 { 1 } else { 2 };

    let run_bounded = |top: f64, depth: usize, cap: Option<usize>| -> CampaignSummary {
        let transformed = model.without_notification(top).expect("transform succeeds");
        let mut bound =
            ra_bound(transformed.pomdp(), &SolveOpts::default()).expect("RA-Bound exists");
        let mut rng = StdRng::seed_from_u64(seed);
        bootstrap(
            &transformed,
            &mut bound,
            &BootstrapConfig {
                variant: BootstrapVariant::Average,
                iterations: 10,
                depth: boot_depth,
                max_steps: 40,
                vector_cap: cap,
                conditioning_action: conditioning,
                ..BootstrapConfig::default()
            },
            &mut rng,
        )
        .expect("bootstrap succeeds");
        let proto = BoundedController::with_bound(
            transformed,
            bound,
            BoundedConfig {
                depth,
                vector_cap: cap,
                gamma_cutoff: 1e-3,
                ..BoundedConfig::default()
            },
        )
        .expect("controller builds");
        Campaign::new(&model)
            .population(&faults)
            .episodes(episodes)
            .seed(seed)
            .threads(threads)
            .run(|_| Ok(proto.clone()))
            .expect("campaign runs")
            .summary
    };

    println!(
        "# Ablation 1: operator response time t_op ({}, bounded-d1, {episodes} faults)",
        scenario.name()
    );
    println!("{:>12} {}", "t_op(s)", CampaignSummary::table_header());
    for top in [600.0, 3600.0, 21_600.0, 86_400.0] {
        let s = run_bounded(top, 1, None);
        println!("{:>12} {}", top, s.table_row());
    }
    println!();

    println!("# Ablation 2: bounded-controller tree depth (t_op = {t_op}s)");
    println!("{:>6} {}", "depth", CampaignSummary::table_header());
    for depth in [1usize, 2] {
        let s = run_bounded(t_op, depth, None);
        println!("{:>6} {}", depth, s.table_row());
    }
    println!();

    println!("# Ablation 3: SOR relaxation factor for the RA-Bound solve");
    let transformed = model.without_notification(t_op).expect("transform");
    let chain = transformed.pomdp().mdp().uniform_random_chain();
    println!("{:>8} {:>16}", "omega", "V-(uniform-ish)");
    for omega in [0.8, 1.0, 1.2, 1.5, 1.8] {
        let opts = SolveOpts {
            omega,
            ..SolveOpts::default()
        };
        match chain.expected_total_reward(&opts) {
            Ok(v) => {
                let mean: f64 = v.iter().sum::<f64>() / v.len() as f64;
                println!("{:>8.2} {:>16.2}", omega, mean);
            }
            Err(e) => println!("{:>8.2} solve failed: {e}", omega),
        }
    }
    println!();

    println!("# Ablation 4: bound-vector storage cap (paper §4.3)");
    println!("{:>6} {}", "cap", CampaignSummary::table_header());
    for cap in [1usize, 2, 4, 8, 16] {
        let s = run_bounded(t_op, 1, Some(cap));
        println!("{:>6} {}", cap, s.table_row());
    }
    println!();

    if scenario.name() == "emn" {
        println!("# Ablation 5: path-monitor coverage (bounded-d1, zombie faults)");
        println!("{:>10} {}", "coverage", CampaignSummary::table_header());
        for coverage in [0.6, 0.8, 0.95, 0.999] {
            let cfg = bpr_emn::EmnConfig {
                path_coverage: coverage,
                ..bpr_emn::EmnConfig::default()
            };
            let model_c = bpr_emn::build_model(&cfg).expect("model builds");
            let transformed = model_c
                .without_notification(cfg.operator_response_time)
                .expect("transform");
            let bound = ra_bound(transformed.pomdp(), &SolveOpts::default()).expect("RA-Bound");
            let proto = BoundedController::with_bound(
                transformed,
                bound,
                BoundedConfig {
                    depth: 1,
                    gamma_cutoff: 1e-3,
                    ..BoundedConfig::default()
                },
            )
            .expect("controller");
            let zombies_c: Vec<_> = EmnState::zombies().iter().map(|s| s.state_id()).collect();
            let s = Campaign::new(&model_c)
                .population(&zombies_c)
                .episodes(episodes)
                .seed(seed)
                .threads(threads)
                .run(|_| Ok(proto.clone()))
                .expect("campaign")
                .summary;
            println!("{:>10.3} {}", coverage, s.table_row());
        }
        println!();
    } else {
        println!(
            "# Ablation 5: path-monitor coverage — EmnConfig knob, skipped on '{}'",
            scenario.name()
        );
        println!();
    }

    println!("# Ablation 6: refinement strategy for the RA-Bound (value at uniform fault belief)");
    {
        use bpr_pomdp::bounds::{pbvi_refine, PbviOpts, ValueBound};
        use bpr_pomdp::Belief;
        let transformed = model.without_notification(t_op).expect("transform");
        let n = transformed.pomdp().n_states();
        let probe = {
            let mut weights = vec![0.0; n];
            for &fault in &faults {
                weights[fault.index()] = 1.0 / faults.len() as f64;
            }
            Belief::from_probs(weights).expect("probe belief")
        };
        let raw = ra_bound(transformed.pomdp(), &SolveOpts::default()).expect("RA-Bound");
        println!(
            "{:<28} {:>14} {:>10}",
            "strategy", "cost@uniform", "vectors"
        );
        println!(
            "{:<28} {:>14.1} {:>10}",
            "RA only",
            -raw.value(&probe),
            raw.len()
        );
        let mut boot = raw.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        bootstrap(
            &transformed,
            &mut boot,
            &BootstrapConfig {
                variant: BootstrapVariant::Average,
                iterations: 20,
                depth: 1,
                max_steps: 40,
                conditioning_action: conditioning,
                ..BootstrapConfig::default()
            },
            &mut rng,
        )
        .expect("bootstrap");
        println!(
            "{:<28} {:>14.1} {:>10}",
            "bootstrap x20 (Average)",
            -boot.value(&probe),
            boot.len()
        );
        let mut grid = raw.clone();
        // Resolution 1 on the simplex is just the vertices; use it as
        // the cheap dense sweep.
        pbvi_refine(
            transformed.pomdp(),
            &mut grid,
            &PbviOpts {
                resolution: 1,
                sweeps: 20,
                ..PbviOpts::default()
            },
        )
        .expect("pbvi refine");
        println!(
            "{:<28} {:>14.1} {:>10}",
            "vertex-grid PBVI x20",
            -grid.value(&probe),
            grid.len()
        );
    }
    println!();

    if scenario.name() != "emn" {
        println!(
            "# Ablation 7: path-probe routing — EmnConfig knob, skipped on '{}'",
            scenario.name()
        );
        return;
    }
    println!("# Ablation 7: path-probe routing x controller (zombie faults)");
    println!(
        "{:>16} {:>14} {}",
        "routing",
        "controller",
        CampaignSummary::table_header()
    );
    for routing in [
        bpr_emn::PathRouting::RandomPerProbe,
        bpr_emn::PathRouting::FixedDisjoint,
    ] {
        let cfg = bpr_emn::EmnConfig {
            path_routing: routing,
            ..bpr_emn::EmnConfig::default()
        };
        let model_r = bpr_emn::build_model(&cfg).expect("model builds");
        let zombies_r: Vec<_> = EmnState::zombies().iter().map(|s| s.state_id()).collect();

        let transformed = model_r
            .without_notification(cfg.operator_response_time)
            .expect("transform");
        let mut bound = ra_bound(transformed.pomdp(), &SolveOpts::default()).expect("RA-Bound");
        let mut rng = StdRng::seed_from_u64(seed);
        bootstrap(
            &transformed,
            &mut bound,
            &BootstrapConfig {
                variant: BootstrapVariant::Average,
                iterations: 10,
                depth: 2,
                max_steps: 40,
                conditioning_action: EmnAction::Observe.action_id(),
                ..BootstrapConfig::default()
            },
            &mut rng,
        )
        .expect("bootstrap");
        let bounded = BoundedController::with_bound(
            transformed,
            bound,
            BoundedConfig {
                depth: 1,
                gamma_cutoff: 1e-3,
                ..BoundedConfig::default()
            },
        )
        .expect("controller");
        let s = Campaign::new(&model_r)
            .population(&zombies_r)
            .episodes(episodes)
            .seed(seed)
            .threads(threads)
            .run(|_| Ok(bounded.clone()))
            .expect("campaign")
            .summary;
        println!(
            "{:>16} {:>14} {}",
            format!("{routing:?}"),
            "bounded-d1",
            s.table_row()
        );

        let s = Campaign::new(&model_r)
            .population(&zombies_r)
            .episodes(episodes)
            .seed(seed)
            .threads(threads)
            .run(|_| {
                bpr_core::baselines::DiagnoseThenFixController::new(model_r.clone(), 0.7, 0.9999)
            })
            .expect("campaign")
            .summary;
        println!(
            "{:>16} {:>14} {}",
            format!("{routing:?}"),
            "diagnose-fix",
            s.table_row()
        );
    }
}
