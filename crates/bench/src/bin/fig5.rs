//! Regenerates the paper's Figure 5: iterative lower-bound improvement
//! (panel a) and bound-vector growth (panel b) on the EMN model, for
//! the Random and Average bootstrap variants.
//!
//! Usage:
//! `cargo run -p bpr-bench --bin fig5 --release -- [--iterations 20] [--seed 7] [--csv fig5.csv]`

use bpr_bench::experiments::fig5;
use bpr_bench::flag;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iterations = flag(&args, "--iterations", 20usize);
    let seed = flag(&args, "--seed", 7u64);
    let csv_path = flag(&args, "--csv", String::new());

    let series = match fig5(iterations, seed) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fig5 experiment failed: {e}");
            std::process::exit(1);
        }
    };

    println!("# Figure 5(a): upper bound on cost (-V at uniform belief) per iteration");
    println!("# Figure 5(b): number of bound vectors per iteration");
    println!(
        "{:<10} {:>22} {:>18} {:>22} {:>18}",
        "iteration", "random-cost-bound", "random-vectors", "average-cost-bound", "average-vectors"
    );
    let (random, average) = (&series[0].records, &series[1].records);
    for i in 0..iterations.max(1) {
        let r = random.get(i);
        let a = average.get(i);
        println!(
            "{:<10} {:>22.2} {:>18} {:>22.2} {:>18}",
            i + 1,
            r.map_or(f64::NAN, |x| -x.bound_at_uniform),
            r.map_or(0, |x| x.n_vectors),
            a.map_or(f64::NAN, |x| -x.bound_at_uniform),
            a.map_or(0, |x| x.n_vectors),
        );
    }
    if let (Some(rf), Some(rl)) = (random.first(), random.last()) {
        println!(
            "# random:  bound improved {:.2} -> {:.2} (cost), vectors {} -> {}",
            -rf.bound_at_uniform, -rl.bound_at_uniform, rf.n_vectors, rl.n_vectors
        );
    }
    if let (Some(af), Some(al)) = (average.first(), average.last()) {
        println!(
            "# average: bound improved {:.2} -> {:.2} (cost), vectors {} -> {}",
            -af.bound_at_uniform, -al.bound_at_uniform, af.n_vectors, al.n_vectors
        );
    }
    if !csv_path.is_empty() {
        let mut csv = String::from(
            "iteration,random_cost_bound,random_vectors,average_cost_bound,average_vectors\n",
        );
        for i in 0..iterations {
            let r = random.get(i);
            let a = average.get(i);
            csv.push_str(&format!(
                "{},{},{},{},{}\n",
                i + 1,
                r.map_or(f64::NAN, |x| -x.bound_at_uniform),
                r.map_or(0, |x| x.n_vectors),
                a.map_or(f64::NAN, |x| -x.bound_at_uniform),
                a.map_or(0, |x| x.n_vectors),
            ));
        }
        if let Err(e) = std::fs::write(&csv_path, csv) {
            eprintln!("failed to write {csv_path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {csv_path}");
    }
}
