//! Planning-throughput benchmark for the lumped + fused tree-expansion
//! kernel: measures decisions/sec and nodes/sec on any registry
//! scenario (default: the paper's EMN model) for the retained legacy
//! path, the fused workspace path on the lumped quotient (cold: cache
//! cleared per decision; warm: epoch-keyed cross-decision reuse), and
//! root-parallel expansion at several widths — all in the same run, so
//! the reported speedups compare like with like.
//!
//! Four properties gate the run (exit nonzero on violation):
//!
//! 1. the fused decision on the lumped quotient is **value-identical**
//!    to the legacy decision on the full model — bit-identical when the
//!    lumping is the identity, within 1e-9 otherwise (same action, same
//!    node count, matching root and per-action values);
//! 2. warm (cross-decision cached) decisions are bit-identical to cold;
//! 3. root-parallel decisions are bit-identical to sequential at every
//!    requested width;
//! 4. steady-state fused decisions perform **zero heap allocations**
//!    (counted by a tallying global allocator in this binary only).
//!
//! Results land in `BENCH_planning_<scenario>.json`.
//!
//! Usage:
//! `cargo run -p bpr-bench --bin planning --release -- \
//!     [--scenario emn] [--decisions 40] [--depth 2] [--cutoff 1e-3] \
//!     [--threads 1,2,4] [--min-speedup 0.0] [--out PATH.json]`

// The one sanctioned `unsafe` user in the workspace: implementing
// `GlobalAlloc` is inherently unsafe, and the zero-allocation gate
// needs a counting allocator. Everything else inherits
// `unsafe_code = "deny"` from the workspace lint table.
#![allow(unsafe_code)]

use bpr_bench::{flag, scenario_flag};
use bpr_mdp::chain::SolveOpts;
use bpr_par::WorkPool;
use bpr_pomdp::bounds::ra_bound;
use bpr_pomdp::tree::Decision;
use bpr_pomdp::{tree, Belief, CacheEpoch, PlanWorkspace};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A pass-through allocator that counts allocation events. Lives in
/// this binary only — the libraries stay `forbid(unsafe_code)`; the
/// planner's zero-allocation claim is verified here from the outside.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn threads_flag(args: &[String], default: &[usize]) -> Vec<usize> {
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| {
            v.split(',')
                .map(|p| p.trim().parse::<usize>())
                .collect::<Result<Vec<_>, _>>()
                .ok()
        })
        .unwrap_or_else(|| default.to_vec())
}

struct PathResult {
    wall_seconds: f64,
    decisions_per_sec: f64,
    nodes_per_sec: f64,
    nodes_per_decision: f64,
}

fn rates(decisions: usize, nodes: usize, wall: f64) -> PathResult {
    PathResult {
        wall_seconds: wall,
        decisions_per_sec: decisions as f64 / wall,
        nodes_per_sec: nodes as f64 / wall,
        nodes_per_decision: nodes as f64 / decisions as f64,
    }
}

fn write_path(out: &mut String, name: &str, r: &PathResult) {
    let _ = write!(
        out,
        "\"{}\": {{\"wall_seconds\": {:.6}, \"decisions_per_sec\": {:.3}, \
         \"nodes_per_sec\": {:.1}, \"nodes_per_decision\": {:.1}}}",
        name, r.wall_seconds, r.decisions_per_sec, r.nodes_per_sec, r.nodes_per_decision
    );
}

fn write_u64s(out: &mut String, values: &[u64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

/// The value-identity gate between the legacy decision on the full
/// model and the fused decision on the lumped quotient: bit-identical
/// when the lump is the identity, 1e-9-close otherwise (actions and
/// node counts must always match exactly — lumping preserves both).
fn check_value_identity(legacy: &Decision, fused: &Decision, identity: bool) {
    if identity {
        if fused != legacy {
            eprintln!(
                "DIVERGENCE: fused decision differs from legacy under identity lump\n  \
                 legacy: {legacy:?}\n  fused:  {fused:?}"
            );
            std::process::exit(1);
        }
        return;
    }
    let tol = 1e-9;
    let values_match = (fused.value - legacy.value).abs() <= tol
        && fused.q_values.len() == legacy.q_values.len()
        && fused
            .q_values
            .iter()
            .zip(&legacy.q_values)
            .all(|(a, b)| (a - b).abs() <= tol);
    if fused.action != legacy.action
        || fused.nodes_expanded != legacy.nodes_expanded
        || !values_match
    {
        eprintln!(
            "DIVERGENCE: lumped fused decision is not value-identical to legacy\n  \
             legacy: {legacy:?}\n  fused:  {fused:?}"
        );
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let decisions = flag(&args, "--decisions", 40usize).max(1);
    let depth = flag(&args, "--depth", 2usize).max(1);
    let cutoff = flag(&args, "--cutoff", 1e-3f64);
    let min_speedup = flag(&args, "--min-speedup", 0.0f64);
    let widths = threads_flag(&args, &[1, 2, 4]);

    let registry = bpr::scenario::builtin();
    let scenario = scenario_flag(&registry, &args, "emn");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("BENCH_planning_{}.json", scenario.name()));
    let model = scenario
        .build()
        .expect("scenario model builds")
        .without_notification(scenario.operator_response_time())
        .expect("transform succeeds");
    let pomdp = model.pomdp();
    let bound = ra_bound(pomdp, &SolveOpts::default()).expect("RA-Bound exists");
    let belief = Belief::uniform(pomdp.n_states());
    println!(
        "planning benchmark: {} ({} states, {} actions, {} observations), \
         depth {depth}, cutoff {cutoff:e}, {decisions} decisions per path",
        scenario.name(),
        pomdp.n_states(),
        pomdp.n_actions(),
        pomdp.n_observations()
    );

    // --- Lump the transformed model; the fused paths plan on the
    // quotient and the certificate projects the benchmark belief.
    let lump_start = Instant::now();
    let (qmodel, certificate) = model.lump().expect("lumping succeeds");
    let lump_seconds = lump_start.elapsed().as_secs_f64();
    let qpomdp = qmodel.pomdp();
    let qbound = ra_bound(qpomdp, &SolveOpts::default()).expect("quotient RA-Bound exists");
    let qbelief = certificate.project(&belief);
    let identity = certificate.is_identity();
    println!(
        "  lump:   {} -> {} states ({} merged classes) in {:.3}ms{}",
        certificate.n_full(),
        certificate.n_quotient(),
        certificate.n_full() - certificate.n_quotient(),
        lump_seconds * 1e3,
        if identity { " [identity]" } else { "" }
    );

    // --- Legacy path (per-node successor rebuild, fresh allocations)
    // on the full model: the before side of every speedup.
    let legacy_ref = tree::legacy::expand_with_cutoff(pomdp, &belief, depth, &bound, 1.0, cutoff)
        .expect("legacy expansion succeeds");
    let start = Instant::now();
    let mut legacy_nodes = 0usize;
    for _ in 0..decisions {
        let d = tree::legacy::expand_with_cutoff(pomdp, &belief, depth, &bound, 1.0, cutoff)
            .expect("legacy expansion succeeds");
        legacy_nodes += d.nodes_expanded;
    }
    let legacy = rates(decisions, legacy_nodes, start.elapsed().as_secs_f64());
    println!(
        "  legacy: {:.1} decisions/sec, {:.0} nodes/sec",
        legacy.decisions_per_sec, legacy.nodes_per_sec
    );

    // --- Fused workspace path on the quotient, cache cleared per
    // decision (cold): isolates the lump + SIMD kernel speedup.
    let mut ws = PlanWorkspace::new();
    for _ in 0..2 {
        // Warm-up: populate the scratch arena, frames, and cache tables.
        tree::expand_with_workspace(qpomdp, &qbelief, depth, &qbound, 1.0, cutoff, &mut ws)
            .expect("fused expansion succeeds");
    }
    check_value_identity(&legacy_ref, ws.decision(), identity);
    let cold_ref = ws.decision().clone();
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    let mut cold_nodes = 0usize;
    for _ in 0..decisions {
        tree::expand_with_workspace(qpomdp, &qbelief, depth, &qbound, 1.0, cutoff, &mut ws)
            .expect("fused expansion succeeds");
        cold_nodes += ws.decision().nodes_expanded;
    }
    let cold_wall = start.elapsed().as_secs_f64();
    let cold_allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    let fused_cold = rates(decisions, cold_nodes, cold_wall);
    println!(
        "  fused (cold):  {:.1} decisions/sec, {:.0} nodes/sec, {} allocations over {} decisions",
        fused_cold.decisions_per_sec, fused_cold.nodes_per_sec, cold_allocs, decisions
    );

    // --- Fused workspace path, epoch-keyed (warm): the cache persists
    // across decisions under one (model fingerprint, bound generation,
    // β, γ) epoch, so repeated decisions reuse each other's τ-vectors.
    let epoch = CacheEpoch {
        model_fingerprint: qpomdp.fingerprint(),
        bound_generation: qbound.generation(),
        beta_bits: 1.0f64.to_bits(),
        cutoff_bits: cutoff.to_bits(),
    };
    for _ in 0..2 {
        tree::expand_with_workspace_epoch(
            qpomdp, &qbelief, depth, &qbound, 1.0, cutoff, epoch, &mut ws,
        )
        .expect("epoch expansion succeeds");
    }
    if ws.decision() != &cold_ref {
        eprintln!(
            "DIVERGENCE: warm (cross-decision cached) decision differs from cold\n  \
             cold: {cold_ref:?}\n  warm: {:?}",
            ws.decision()
        );
        std::process::exit(1);
    }
    ws.reset_stats();
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    let mut warm_nodes = 0usize;
    for _ in 0..decisions {
        tree::expand_with_workspace_epoch(
            qpomdp, &qbelief, depth, &qbound, 1.0, cutoff, epoch, &mut ws,
        )
        .expect("epoch expansion succeeds");
        warm_nodes += ws.decision().nodes_expanded;
    }
    let warm_wall = start.elapsed().as_secs_f64();
    let steady_allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    let fused = rates(decisions, warm_nodes, warm_wall);
    let allocs_per_decision = steady_allocs as f64 / decisions as f64;
    let stats = ws.stats().clone();
    println!(
        "  fused (warm):  {:.1} decisions/sec, {:.0} nodes/sec, {} allocations over {} decisions, \
         cache {}/{} hits/misses ({} cross-decision)",
        fused.decisions_per_sec,
        fused.nodes_per_sec,
        steady_allocs,
        decisions,
        stats.cache_hits,
        stats.cache_misses,
        stats.cross_decision_hits
    );
    if cold_allocs != 0 || steady_allocs != 0 {
        eprintln!(
            "ALLOCATION GATE: {cold_allocs} cold + {steady_allocs} warm heap allocations in \
             {decisions} steady-state fused decisions each (expected 0)"
        );
        std::process::exit(1);
    }

    let speedup = fused.decisions_per_sec / legacy.decisions_per_sec;
    let cold_speedup = fused_cold.decisions_per_sec / legacy.decisions_per_sec;
    println!("  speedup (fused over legacy): {speedup:.2}x warm, {cold_speedup:.2}x cold");
    if speedup < min_speedup {
        eprintln!("SPEEDUP GATE: {speedup:.2}x < required {min_speedup:.2}x");
        std::process::exit(1);
    }

    // --- Root-parallel expansion, gated on exact Decision equality.
    let sequential = tree::expand_with_cutoff(pomdp, &belief, depth, &bound, 1.0, cutoff)
        .expect("sequential expansion succeeds");
    let mut parallel_rows = String::from("[");
    for (i, &width) in widths.iter().enumerate() {
        let pool = WorkPool::new(width).expect("positive width");
        let first = tree::expand_par(pomdp, &belief, depth, &bound, 1.0, cutoff, &pool)
            .expect("parallel expansion succeeds");
        if first != sequential {
            eprintln!(
                "DIVERGENCE: parallel decision at width {width} differs from sequential\n  \
                 sequential: {sequential:?}\n  parallel:   {first:?}"
            );
            std::process::exit(1);
        }
        let start = Instant::now();
        let mut nodes = 0usize;
        for _ in 0..decisions {
            let d = tree::expand_par(pomdp, &belief, depth, &bound, 1.0, cutoff, &pool)
                .expect("parallel expansion succeeds");
            nodes += d.nodes_expanded;
        }
        let r = rates(decisions, nodes, start.elapsed().as_secs_f64());
        println!(
            "  parallel x{width}: {:.1} decisions/sec (bit-identical to sequential)",
            r.decisions_per_sec
        );
        if i > 0 {
            parallel_rows.push_str(", ");
        }
        let _ = write!(
            parallel_rows,
            "{{\"threads\": {width}, \"wall_seconds\": {:.6}, \"decisions_per_sec\": {:.3}, \
             \"bit_identical\": true}}",
            r.wall_seconds, r.decisions_per_sec
        );
    }
    parallel_rows.push(']');

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"model\": \"{}\", \"depth\": {depth}, \"gamma_cutoff\": {cutoff:e}, \
         \"decisions\": {decisions},\n  \
         \"lump\": {{\"full_states\": {}, \"quotient_states\": {}, \"merged_classes\": {}, \
         \"identity\": {identity}, \"lump_seconds\": {lump_seconds:.6}}},\n  ",
        scenario.name(),
        certificate.n_full(),
        certificate.n_quotient(),
        certificate.n_full() - certificate.n_quotient(),
    );
    write_path(&mut json, "legacy", &legacy);
    json.push_str(",\n  ");
    write_path(&mut json, "fused_cold", &fused_cold);
    json.push_str(",\n  ");
    write_path(&mut json, "fused", &fused);
    let _ = write!(
        json,
        ",\n  \"allocations_per_decision\": {allocs_per_decision:.3},\n  \
         \"cache\": {{\"hits\": {}, \"misses\": {}, \"cross_decision_hits\": {},\n    \
         \"hits_by_depth\": ",
        stats.cache_hits, stats.cache_misses, stats.cross_decision_hits
    );
    write_u64s(&mut json, &stats.cache_hits_by_depth);
    json.push_str(", \"misses_by_depth\": ");
    write_u64s(&mut json, &stats.cache_misses_by_depth);
    let _ = write!(
        json,
        "}},\n  \"speedup_fused_over_legacy\": {speedup:.3}, \
         \"speedup_cold_over_legacy\": {cold_speedup:.3},\n  \"parallel\": {parallel_rows}\n}}\n",
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");
}
