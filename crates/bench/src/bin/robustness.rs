//! Degraded-world robustness sweep: action-failure probability ×
//! monitor-dropout rate on the EMN model (zombie faults), comparing
//! the paper's controllers against the hardened resilient decorator.
//!
//! Usage:
//! `cargo run -p bpr-bench --bin robustness --release -- \
//!     [--episodes 60] [--seed 7] [--failures 0.0,0.2] [--dropouts 0.0,0.1] \
//!     [--corruption 0.0] [--secondary 0.0] [--max-secondary 0] [--threads N]`
//!
//! Campaigns fan across `--threads` workers (default: all hardware
//! threads); results are bit-identical whatever the width.

use bpr_bench::experiments::{robustness_sweep, RobustnessConfig};
use bpr_bench::flag;
use bpr_par::WorkPool;

/// Parses a comma-separated probability list flag.
fn list_flag(args: &[String], name: &str, default: &[f64]) -> Vec<f64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| {
            v.split(',')
                .map(|p| p.trim().parse::<f64>())
                .collect::<Result<Vec<_>, _>>()
                .ok()
        })
        .unwrap_or_else(|| default.to_vec())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let config = RobustnessConfig {
        episodes: flag(&args, "--episodes", 60usize),
        seed: flag(&args, "--seed", 7u64),
        failure_probs: list_flag(&args, "--failures", &[0.0, 0.2]),
        dropout_probs: list_flag(&args, "--dropouts", &[0.0, 0.1]),
        obs_corruption_prob: flag(&args, "--corruption", 0.0f64),
        secondary_fault_prob: flag(&args, "--secondary", 0.0f64),
        max_secondary_faults: flag(&args, "--max-secondary", 0usize),
        threads: flag(&args, "--threads", WorkPool::default().threads()),
        ..RobustnessConfig::default()
    };
    eprintln!(
        "robustness sweep: {} episodes per controller per cell, {} cells...",
        config.episodes,
        config.failure_probs.len() * config.dropout_probs.len()
    );
    let cells = match robustness_sweep(&config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("robustness sweep failed: {e}");
            std::process::exit(1);
        }
    };
    println!("# Robustness sweep (EMN zombies): recovery under a degraded world");
    for cell in &cells {
        println!(
            "\n## action-failure {:.2}, monitor-dropout {:.2}",
            cell.action_failure_prob, cell.monitor_dropout_prob
        );
        println!(
            "{:<22} {:>9} {:>10} {:>8} {:>9} {:>8} {:>7} {:>8}",
            "Algorithm", "Recovery", "Cost", "Retries", "Escalate", "Resets", "Abort", "Unterm"
        );
        for row in &cell.rows {
            let s = &row.summary;
            println!(
                "{:<22} {:>8.1}% {:>10.2} {:>8.2} {:>9.2} {:>8.2} {:>7} {:>8}",
                s.controller,
                100.0 * s.recovery_rate(),
                s.mean_cost,
                s.mean_retries,
                s.mean_escalations,
                s.mean_belief_resets,
                row.aborted,
                s.unterminated,
            );
        }
    }
    println!("\n# note: aborted episodes (controller errors) count as unrecovered");
}
