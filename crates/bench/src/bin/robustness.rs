//! Degraded-world robustness sweep: action-failure probability ×
//! monitor-dropout rate on a registry scenario's model and fault
//! population (default: the paper's EMN model, zombie faults),
//! comparing the paper's controllers against the hardened resilient
//! decorator.
//!
//! Usage:
//! `cargo run -p bpr-bench --bin robustness --release -- \
//!     [--scenario emn] [--episodes 60] [--seed 7] [--failures 0.0,0.2] \
//!     [--dropouts 0.0,0.1] [--corruption 0.0] [--secondary 0.0] \
//!     [--max-secondary 0] [--bootstrap-iters 10] [--bootstrap-depth 2] \
//!     [--threads N] [--lump] [--out BENCH_robustness.json]`
//!
//! `--lump` plans the bounded rows on the lumped (state-aggregated)
//! quotient — sound by the lumping certificate; the rows are renamed
//! with a `+lump` suffix.
//!
//! On the 10³+-state generated scenarios pass `--bootstrap-depth 1`:
//! the paper's depth-2 bootstrap schedule is sized for the 14-state
//! EMN model.
//!
//! Campaigns fan across `--threads` workers (default: all hardware
//! threads); results are bit-identical whatever the width.
//!
//! Besides the stdout table, the sweep lands in `--out` as JSON with
//! quarantine counts and the per-fault-mode perturbation statistics
//! (failed actions, dropped/corrupted observations, injected
//! secondary faults) in the same shape `bench --bin serve` uses for
//! its shed counters, so the two robustness surfaces are directly
//! comparable.

use bpr_bench::experiments::{robustness_sweep_for, RobustnessCell, RobustnessConfig};
use bpr_bench::{flag, scenario_flag, string_flag};
use bpr_par::WorkPool;
use std::fmt::Write as _;

/// Parses a comma-separated probability list flag.
fn list_flag(args: &[String], name: &str, default: &[f64]) -> Vec<f64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| {
            v.split(',')
                .map(|p| p.trim().parse::<f64>())
                .collect::<Result<Vec<_>, _>>()
                .ok()
        })
        .unwrap_or_else(|| default.to_vec())
}

/// Renders the sweep as hand-formatted JSON (same idiom as the other
/// BENCH emitters — no serde in the workspace).
fn sweep_json(scenario: &str, config: &RobustnessConfig, cells: &[RobustnessCell]) -> String {
    let mut cell_blocks = Vec::new();
    for cell in cells {
        let mut rows = Vec::new();
        for row in &cell.rows {
            let s = &row.summary;
            let p = &row.perturbations;
            let mut out = String::new();
            let _ = write!(
                out,
                concat!(
                    "        {{\n",
                    "          \"controller\": \"{ctrl}\",\n",
                    "          \"episodes\": {episodes},\n",
                    "          \"recovery_rate\": {recovery:.4},\n",
                    "          \"mean_cost\": {cost:.4},\n",
                    "          \"mean_retries\": {retries:.4},\n",
                    "          \"mean_escalations\": {escalations:.4},\n",
                    "          \"mean_belief_resets\": {resets:.4},\n",
                    "          \"unrecovered\": {unrecovered},\n",
                    "          \"unterminated\": {unterminated},\n",
                    "          \"aborted\": {aborted},\n",
                    "          \"quarantined\": {quarantined},\n",
                    "          \"perturbations\": {{\n",
                    "            \"failed_actions\": {failed},\n",
                    "            \"dropped_observations\": {dropped},\n",
                    "            \"corrupted_observations\": {corrupted},\n",
                    "            \"injected_faults\": {injected}\n",
                    "          }}\n",
                    "        }}"
                ),
                ctrl = s.controller,
                episodes = s.episodes,
                recovery = s.recovery_rate(),
                cost = s.mean_cost,
                retries = s.mean_retries,
                escalations = s.mean_escalations,
                resets = s.mean_belief_resets,
                unrecovered = s.unrecovered,
                unterminated = s.unterminated,
                aborted = row.aborted,
                quarantined = row.quarantined,
                failed = p.failed_actions,
                dropped = p.dropped_observations,
                corrupted = p.corrupted_observations,
                injected = p.injected_faults,
            );
            rows.push(out);
        }
        let mut block = String::new();
        let _ = write!(
            block,
            concat!(
                "    {{\n",
                "      \"action_failure_prob\": {failure},\n",
                "      \"monitor_dropout_prob\": {dropout},\n",
                "      \"rows\": [\n{rows}\n      ]\n",
                "    }}"
            ),
            failure = cell.action_failure_prob,
            dropout = cell.monitor_dropout_prob,
            rows = rows.join(",\n"),
        );
        cell_blocks.push(block);
    }
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"robustness\",\n",
            "  \"scenario\": \"{scenario}\",\n",
            "  \"config\": {{\n",
            "    \"episodes\": {episodes},\n",
            "    \"seed\": {seed},\n",
            "    \"obs_corruption_prob\": {corruption},\n",
            "    \"secondary_fault_prob\": {secondary},\n",
            "    \"max_secondary_faults\": {max_secondary},\n",
            "    \"lump\": {lump}\n",
            "  }},\n",
            "  \"cells\": [\n{cells}\n  ]\n",
            "}}\n"
        ),
        scenario = scenario,
        episodes = config.episodes,
        seed = config.seed,
        corruption = config.obs_corruption_prob,
        secondary = config.secondary_fault_prob,
        max_secondary = config.max_secondary_faults,
        lump = config.lump,
        cells = cell_blocks.join(",\n"),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = string_flag(&args, "--out", "BENCH_robustness.json");
    let config = RobustnessConfig {
        episodes: flag(&args, "--episodes", 60usize),
        seed: flag(&args, "--seed", 7u64),
        failure_probs: list_flag(&args, "--failures", &[0.0, 0.2]),
        dropout_probs: list_flag(&args, "--dropouts", &[0.0, 0.1]),
        obs_corruption_prob: flag(&args, "--corruption", 0.0f64),
        secondary_fault_prob: flag(&args, "--secondary", 0.0f64),
        max_secondary_faults: flag(&args, "--max-secondary", 0usize),
        bootstrap_iters: flag(&args, "--bootstrap-iters", 10usize),
        bootstrap_depth: flag(&args, "--bootstrap-depth", 2usize),
        threads: flag(&args, "--threads", WorkPool::default().threads()),
        lump: args.iter().any(|a| a == "--lump"),
        ..RobustnessConfig::default()
    };
    let registry = bpr::scenario::builtin();
    let scenario = scenario_flag(&registry, &args, "emn");
    eprintln!(
        "robustness sweep [{}]: {} episodes per controller per cell, {} cells...",
        scenario.name(),
        config.episodes,
        config.failure_probs.len() * config.dropout_probs.len()
    );
    let cells = match robustness_sweep_for(scenario, &config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("robustness sweep failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "# Robustness sweep ({}): recovery under a degraded world",
        scenario.name()
    );
    for cell in &cells {
        println!(
            "\n## action-failure {:.2}, monitor-dropout {:.2}",
            cell.action_failure_prob, cell.monitor_dropout_prob
        );
        println!(
            "{:<22} {:>9} {:>10} {:>8} {:>9} {:>8} {:>7} {:>8} {:>7} {:>8}",
            "Algorithm",
            "Recovery",
            "Cost",
            "Retries",
            "Escalate",
            "Resets",
            "Abort",
            "Unterm",
            "Quar",
            "Perturb"
        );
        for row in &cell.rows {
            let s = &row.summary;
            println!(
                "{:<22} {:>8.1}% {:>10.2} {:>8.2} {:>9.2} {:>8.2} {:>7} {:>8} {:>7} {:>8}",
                s.controller,
                100.0 * s.recovery_rate(),
                s.mean_cost,
                s.mean_retries,
                s.mean_escalations,
                s.mean_belief_resets,
                row.aborted,
                s.unterminated,
                row.quarantined,
                row.perturbations.total(),
            );
        }
    }
    println!("\n# note: aborted episodes (controller errors) count as unrecovered");
    let json = sweep_json(scenario.name(), &config, &cells);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("robustness: could not write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("robustness: wrote {out_path}");
}
