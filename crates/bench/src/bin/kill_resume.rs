//! Kill-and-resume drill for the durable runtime: runs a campaign on
//! a registry scenario (`--scenario`, default `emn`) once
//! uninterrupted, then "kills" a checkpointed run at a seeded random
//! checkpoint boundary and resumes it — asserting the resumed run
//! reproduces the uninterrupted run's canonical outcomes bit-for-bit
//! at every requested thread count. Also drills snapshot corruption
//! (must degrade cleanly, not panic), the durable bootstrap, and
//! measures checkpoint overhead. Exits nonzero on any mismatch and
//! leaves the snapshot behind for post-mortem; on success the snapshot
//! files are cleaned up.
//!
//! Usage:
//! `cargo run -p bpr-bench --bin kill_resume --release -- \
//!     [--scenario emn] [--episodes 60] [--every 5] [--seed 7] \
//!     [--threads 1,2,4] [--max-steps 400] [--bootstrap-iters 24] \
//!     [--batch 8] [--snapshot kill_resume.snapshot] \
//!     [--out BENCH_kill_resume.json]`

use bpr_bench::experiments::bootstrapped_bounded_d1_for;
use bpr_bench::{flag, scenario_flag, string_flag};
use bpr_core::bootstrap::{
    bootstrap_par, bootstrap_par_durable, BootstrapConfig, BootstrapVariant,
};
use bpr_core::snapshot::CheckpointPolicy;
use bpr_core::ActionId;
use bpr_mdp::chain::SolveOpts;
use bpr_par::WorkPool;
use bpr_pomdp::bounds::ra_bound;
use bpr_sim::Campaign;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

fn threads_flag(args: &[String], default: &[usize]) -> Vec<usize> {
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| {
            v.split(',')
                .map(|p| p.trim().parse::<usize>())
                .collect::<Result<Vec<_>, _>>()
                .ok()
        })
        .unwrap_or_else(|| default.to_vec())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let episodes = flag(&args, "--episodes", 60usize);
    let every = flag(&args, "--every", 5usize).max(1);
    let seed = flag(&args, "--seed", 7u64);
    let max_steps = flag(&args, "--max-steps", 400usize);
    let bootstrap_iters = flag(&args, "--bootstrap-iters", 24usize);
    let batch = flag(&args, "--batch", 8usize);
    let snapshot_path = string_flag(&args, "--snapshot", "kill_resume.snapshot");
    let out_path = string_flag(&args, "--out", "BENCH_kill_resume.json");
    // Unlike the scaling bench, widths here are a *correctness* check
    // (resume must be thread-count invariant), so oversubscribing the
    // hardware is fine and nothing is skipped.
    let widths: Vec<usize> = threads_flag(&args, &[1, 2, 4])
        .into_iter()
        .filter(|&t| t >= 1)
        .collect();
    let widths = if widths.is_empty() { vec![1] } else { widths };

    let registry = bpr::scenario::builtin();
    let scenario = scenario_flag(&registry, &args, "emn");
    let scenario_name = scenario.name().to_string();

    // The kill point: a seeded-random checkpoint boundary strictly
    // inside the run, so resume always has work left to do.
    let rounds = episodes.div_ceil(every);
    let kill_round = if rounds > 1 {
        StdRng::seed_from_u64(seed ^ 0x6b69_6c6c).gen_range(1..rounds)
    } else {
        1
    };
    let kill_point = (kill_round * every).min(episodes);
    eprintln!(
        "kill_resume[{scenario_name}]: {episodes} episodes, checkpoint every {every}, \
         kill at episode {kill_point}, widths {widths:?}"
    );

    let model = scenario.build().expect("scenario model builds");
    let zombies = scenario.fault_population(&model);
    assert!(!zombies.is_empty(), "scenario has no fault population");
    let operator_response_time = scenario.operator_response_time();
    let prototype = bootstrapped_bounded_d1_for(&model, operator_response_time, seed, 1e-3)
        .expect("bounded-d1 prototype builds");
    let session = |episodes: usize, threads: usize, checkpoint: bool| {
        let mut c = Campaign::new(&model)
            .population(&zombies)
            .episodes(episodes)
            .max_steps(max_steps)
            .seed(seed)
            .threads(threads);
        if checkpoint {
            c = c.checkpoint(&snapshot_path, every);
        }
        c.run(|_| Ok(prototype.clone())).expect("campaign runs")
    };
    let mut failed = false;

    // --- Reference: uninterrupted, no checkpointing.
    let start = Instant::now();
    let reference = session(episodes, 1, false);
    let plain_wall = start.elapsed().as_secs_f64();

    // --- Checkpoint overhead: the same run, checkpointing every round.
    let _ = std::fs::remove_file(&snapshot_path);
    let start = Instant::now();
    let checkpointed = session(episodes, 1, true);
    let durable_wall = start.elapsed().as_secs_f64();
    let overhead = if plain_wall > 0.0 {
        durable_wall / plain_wall - 1.0
    } else {
        0.0
    };
    if checkpointed.canonical_outcomes() != reference.canonical_outcomes() {
        eprintln!("MISMATCH: checkpointing changed campaign results");
        failed = true;
    }
    eprintln!(
        "  overhead: plain {plain_wall:.3}s, checkpointed {durable_wall:.3}s \
         ({} checkpoints, {:+.1}%)",
        checkpointed.checkpoints_written,
        overhead * 100.0
    );

    // --- Kill at the boundary, then resume at every width.
    let _ = std::fs::remove_file(&snapshot_path);
    let killed = session(kill_point, 1, true);
    assert_eq!(killed.resumed_from, None, "killed run must start fresh");
    let frozen = std::fs::read(&snapshot_path).expect("snapshot exists after the killed run");
    let mut resumes = Vec::new();
    for &threads in &widths {
        std::fs::write(&snapshot_path, &frozen).expect("restore snapshot");
        let resumed = session(episodes, threads, true);
        let ok = resumed.resumed_from == Some(kill_point)
            && resumed.snapshot_error.is_none()
            && resumed.canonical_outcomes() == reference.canonical_outcomes();
        if !ok {
            eprintln!(
                "MISMATCH: resume at {threads} threads diverged \
                 (resumed_from {:?}, snapshot_error {:?})",
                resumed.resumed_from, resumed.snapshot_error
            );
            failed = true;
        }
        eprintln!(
            "  resume threads={threads}: from episode {:?}, bit-identical: {ok}",
            resumed.resumed_from
        );
        resumes.push((threads, ok));
    }

    // --- Corruption drill: a bit-flipped snapshot must degrade to a
    // fresh run with a typed error, never a panic or wrong results.
    let mut corrupt = frozen.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x10;
    std::fs::write(&snapshot_path, &corrupt).expect("write corrupted snapshot");
    let recovered = session(episodes, 1, true);
    let corruption_ok = recovered.resumed_from.is_none()
        && recovered.snapshot_error.is_some()
        && recovered.canonical_outcomes() == reference.canonical_outcomes();
    if !corruption_ok {
        eprintln!(
            "MISMATCH: corrupted snapshot was not handled cleanly \
             (resumed_from {:?}, snapshot_error {:?})",
            recovered.resumed_from, recovered.snapshot_error
        );
        failed = true;
    }
    eprintln!(
        "  corruption: fell back cleanly ({})",
        recovered
            .snapshot_error
            .as_ref()
            .map_or_else(|| "no error?".to_string(), |e| e.to_string())
    );

    // --- Durable bootstrap: kill at a shorter target, resume, compare
    // against the straight-through parallel bootstrap.
    let boot_snapshot = format!("{snapshot_path}.bootstrap");
    let _ = std::fs::remove_file(&boot_snapshot);
    let transformed = model
        .without_notification(operator_response_time)
        .expect("transform");
    // Condition the bootstrap on the scenario's first observe action
    // (every registry model tags at least one monitor sweep; action 0
    // is the documented fallback).
    let conditioning_action = model
        .observe_actions()
        .first()
        .copied()
        .unwrap_or_else(|| ActionId::new(0));
    let config = BootstrapConfig {
        variant: BootstrapVariant::Random,
        iterations: bootstrap_iters,
        depth: 1,
        max_steps: 40,
        conditioning_action,
        ..BootstrapConfig::default()
    };
    let pool = WorkPool::new(widths[widths.len() - 1]).expect("nonzero width");
    let mut straight = ra_bound(transformed.pomdp(), &SolveOpts::default()).expect("RA-Bound");
    let straight_report = bootstrap_par(&transformed, &mut straight, &config, batch, seed, &pool)
        .expect("bootstrap runs");
    let kill_iters = (bootstrap_iters / 2).max(1);
    let policy = CheckpointPolicy::new(&boot_snapshot, 1);
    let mut durable = ra_bound(transformed.pomdp(), &SolveOpts::default()).expect("RA-Bound");
    let short_config = BootstrapConfig {
        iterations: kill_iters,
        ..config.clone()
    };
    bootstrap_par_durable(
        &transformed,
        &mut durable,
        &short_config,
        batch,
        seed,
        &pool,
        &policy,
    )
    .expect("killed bootstrap runs");
    let mut resumed_bound = ra_bound(transformed.pomdp(), &SolveOpts::default()).expect("RA-Bound");
    let durable_report = bootstrap_par_durable(
        &transformed,
        &mut resumed_bound,
        &config,
        batch,
        seed,
        &pool,
        &policy,
    )
    .expect("resumed bootstrap runs");
    let bootstrap_ok = durable_report.resumed_from.is_some()
        && durable_report.report == straight_report
        && resumed_bound.to_tsv() == straight.to_tsv();
    if !bootstrap_ok {
        eprintln!(
            "MISMATCH: durable bootstrap diverged (resumed_from {:?})",
            durable_report.resumed_from
        );
        failed = true;
    }
    eprintln!(
        "  bootstrap: killed at {kill_iters}/{bootstrap_iters} episodes, \
         resumed bit-identical: {bootstrap_ok}"
    );

    let mut resume_json = String::from("[");
    for (i, (threads, ok)) in resumes.iter().enumerate() {
        if i > 0 {
            resume_json.push_str(", ");
        }
        let _ = write!(
            resume_json,
            "{{\"threads\": {threads}, \"bit_identical\": {ok}}}"
        );
    }
    resume_json.push(']');
    let json = format!(
        "{{\n  \"bench\": \"kill_resume\",\n  \"scenario\": \"{scenario_name}\",\n  \
         \"seed\": {seed},\n  \"episodes\": {episodes},\n  \
         \"checkpoint_every\": {every},\n  \"kill_point\": {kill_point},\n  \
         \"plain_wall_seconds\": {plain_wall:.6},\n  \
         \"checkpointed_wall_seconds\": {durable_wall:.6},\n  \
         \"checkpoint_overhead\": {overhead:.4},\n  \
         \"checkpoints_written\": {},\n  \
         \"resumes\": {resume_json},\n  \"corruption_fallback\": {corruption_ok},\n  \
         \"bootstrap_resume\": {bootstrap_ok},\n  \"passed\": {}\n}}\n",
        checkpointed.checkpoints_written, !failed,
    );
    std::fs::write(&out_path, &json).expect("write benchmark file");
    eprintln!("wrote {out_path}");

    if failed {
        eprintln!("kill_resume FAILED: snapshots kept at {snapshot_path}[.bootstrap]");
        std::process::exit(1);
    }
    let _ = std::fs::remove_file(&snapshot_path);
    let _ = std::fs::remove_file(&boot_snapshot);
}
