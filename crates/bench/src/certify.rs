//! The `certify` gate: checks the planning kernels' *claimed* lower
//! bounds against the kernel-independent certificates from
//! `bpr-verify`, scenario by scenario.
//!
//! For each scenario three bound variants are certified at the
//! scenario's probe beliefs:
//!
//! * `ra` — the stock [`BoundedController`] (RA-Bound + termination
//!   plane + startup sweeps),
//! * `bootstrap` — the Table-1 bootstrap-improved controller
//!   ([`crate::experiments::bootstrapped_bounded_d1_for`]),
//! * `lumped` — the fused lumped-kernel controller planning on the
//!   monitor-aliasing quotient
//!   ([`crate::experiments::bootstrapped_bounded_lumped`]).
//!
//! Each variant's bound is measured *through the reference kernel
//! configuration* ([`BoundedConfig::default`]: no vector cap, 1e-6
//! observation cutoff) — the variants differ in how the bound was
//! *built*, not in the harness reading it — and is first warmed over
//! the oracle's own point set (state corners, the uniform belief, the
//! probes) through the production `begin`/`decide` path. The raw
//! bounds only back up where their builders happened to look (the
//! bootstrap builders additionally evict under a vector cap), so they
//! may sit below a probe-targeted oracle while being perfectly sound;
//! after the kernel's own backups over the same points the oracle
//! sweeps, its advertised values must dominate the certified
//! conditional-plan values. Then, per probe:
//!
//! * **soundness** — the advertised value must not exceed the
//!   certified MDP ceiling ([`bpr_verify::mdp_ceiling`]); a claim
//!   above full-observability optimum is definitively corrupt;
//! * **dominance** — the advertised value must not fall below the
//!   certified under-approximation ([`bpr_verify::certified_lower_bound`])
//!   built from exact conditional-plan backups at those same probes.
//!
//! On top of the per-belief gap rows, every variant's compiled policy
//! graph runs through the BPR100-series analyzer, and the lumped
//! variant is additionally checked for full-vs-quotient decision
//! agreement (BPR105). Any error-severity finding fails the gate —
//! this is what `bench --bin certify` exits non-zero on in CI.

use std::fmt::Write as _;

use bpr_core::lint::{LintReport, Severity};
use bpr_core::scenario::Scenario;
use bpr_core::{
    BoundedConfig, BoundedController, Error, LumpedController, RecoveryController, TerminatedModel,
};
use bpr_pomdp::Belief;
use bpr_verify::{
    certified_lower_bound, mdp_ceiling, verify_controller, verify_lumped, Oracle, OracleOpts,
    VerifyConfig,
};

use crate::experiments::{bootstrapped_bounded, bootstrapped_bounded_lumped};

/// Knobs for the certification gate.
#[derive(Debug, Clone)]
pub struct CertifyConfig {
    /// Oracle construction effort (sweeps, grid).
    pub oracle: OracleOpts,
    /// Policy-graph analyzer settings (node budget, quantization,
    /// bound-achievement tolerance).
    pub verify: VerifyConfig,
    /// Production `begin`/`decide` warm-up rounds over the oracle's
    /// point set before the advertised values are read (see the module
    /// docs for why); matches the oracle's sweep count by default.
    pub refine_rounds: usize,
    /// Relative slack for the ceiling/floor comparisons.
    pub tolerance: f64,
    /// Bootstrap seed for the `bootstrap` and `lumped` variants.
    pub seed: u64,
    /// Successor-probability cutoff handed to the bootstrap builders.
    /// Kept at the reference kernel's 1e-6: coarser cutoffs drop
    /// branch mass during backups, inflating vectors past true plan
    /// values (which BPR102 then rightly flags).
    pub gamma_cutoff: f64,
}

impl Default for CertifyConfig {
    fn default() -> CertifyConfig {
        CertifyConfig {
            oracle: OracleOpts::default(),
            verify: VerifyConfig {
                // Enough to close the paper-scale graphs; corpus-scale
                // scenarios truncate with a warning, which is fine for
                // a gate keyed on error findings.
                max_nodes: 512,
                ..VerifyConfig::default()
            },
            refine_rounds: 3,
            tolerance: 1e-9,
            seed: 7,
            gamma_cutoff: 1e-6,
        }
    }
}

/// One `(variant, probe)` certification row.
#[derive(Debug, Clone)]
pub struct GapRow {
    /// Bound variant (`"ra"`, `"bootstrap"`, `"lumped"`).
    pub variant: &'static str,
    /// Probe index into the scenario's [`Scenario::probe_beliefs`].
    pub probe: usize,
    /// The kernel's advertised bound value at the probe (after
    /// warm-up).
    pub checked: f64,
    /// The certified under-approximation at the probe.
    pub floor: f64,
    /// The certified MDP ceiling mixed under the probe.
    pub ceiling: f64,
    /// `checked <= ceiling` (within tolerance): the claim is
    /// consistent with full-observability optimum.
    pub sound: bool,
    /// `checked >= floor` (within tolerance): the warmed kernel
    /// dominates the certified conditional-plan value.
    pub dominated: bool,
}

/// Everything certify establishes about one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioCertificate {
    /// Registry name (or `"broken-bound"` for the fixture).
    pub scenario: String,
    /// Per-`(variant, probe)` gap rows.
    pub rows: Vec<GapRow>,
    /// Policy-graph analyzer reports (one per variant, plus the
    /// full-vs-quotient consistency report).
    pub reports: Vec<LintReport>,
    /// Oracle effort actually spent (sweeps, grid points).
    pub oracle_sweeps: usize,
    /// Grid points backed up per oracle sweep.
    pub oracle_points: usize,
}

impl ScenarioCertificate {
    /// Error-severity findings across all reports.
    pub fn errors(&self) -> usize {
        self.reports.iter().map(|r| r.count(Severity::Error)).sum()
    }

    /// Rows violating soundness (claim above the certified ceiling).
    pub fn unsound_rows(&self) -> usize {
        self.rows.iter().filter(|r| !r.sound).count()
    }

    /// Rows where the warmed kernel fails to dominate the oracle.
    pub fn undominated_rows(&self) -> usize {
        self.rows.iter().filter(|r| !r.dominated).count()
    }

    /// The gate predicate: no error findings, no unsound rows, no
    /// dominance shortfalls.
    pub fn passes(&self) -> bool {
        self.errors() == 0 && self.unsound_rows() == 0 && self.undominated_rows() == 0
    }
}

/// Extends base-space probe beliefs with zero `s_T` mass so they live
/// in the transformed space the oracle and bounds speak.
fn transformed_probes(transformed: &TerminatedModel, probes: &[Belief]) -> Vec<Belief> {
    let n = transformed.pomdp().n_states();
    probes
        .iter()
        .map(|p| {
            let mut w = p.probs().to_vec();
            w.resize(n, 0.0);
            Belief::from_probs(w).expect("probe beliefs stay normalised under s_T extension")
        })
        .collect()
}

/// The warm-up point set for a model: every state corner, the uniform
/// belief, and the caller's probes — the same shape the oracle sweeps
/// over, so `refine_rounds` kernel backups track the oracle's depth.
fn warm_points(model: &TerminatedModel, probes: &[Belief]) -> Vec<Belief> {
    let n = model.pomdp().n_states();
    let mut points: Vec<Belief> = (0..n)
        .map(|s| Belief::point(n, bpr_core::StateId::new(s)))
        .collect();
    points.push(Belief::uniform(n));
    points.extend(probes.iter().cloned());
    points
}

/// Re-homes a variant's bound in the reference kernel configuration
/// and warms it over `points` through the production path, letting the
/// kernel's own online backups refine the bound where the gap rows
/// will read it.
fn rehome_and_warm(
    model: &TerminatedModel,
    bound: bpr_pomdp::bounds::VectorSetBound,
    points: &[Belief],
    rounds: usize,
) -> Result<BoundedController, Error> {
    let mut controller =
        BoundedController::with_bound(model.clone(), bound, BoundedConfig::default())?;
    for _ in 0..rounds {
        for point in points {
            controller.begin(point.clone(), None)?;
            let _ = controller.decide()?;
        }
    }
    Ok(controller)
}

/// Builds the gap rows for one variant from its advertised values at
/// the transformed probes.
fn gap_rows(
    variant: &'static str,
    advertised: &[f64],
    tprobes: &[Belief],
    oracle: &Oracle,
    ceiling: &[f64],
    tolerance: f64,
) -> Vec<GapRow> {
    advertised
        .iter()
        .zip(tprobes)
        .enumerate()
        .map(|(i, (&checked, probe))| {
            let floor = oracle.value(probe.probs());
            let upper: f64 = probe.probs().iter().zip(ceiling).map(|(p, v)| p * v).sum();
            let slack = tolerance * (1.0 + checked.abs());
            GapRow {
                variant,
                probe: i,
                checked,
                floor,
                ceiling: upper,
                sound: checked <= upper + slack,
                dominated: checked >= floor - slack,
            }
        })
        .collect()
}

/// Certifies one scenario: builds the three bound variants, warms them
/// at the scenario's probes, and checks every advertised value against
/// the kernel-independent floor and ceiling plus the BPR100-series
/// policy analysis.
///
/// # Errors
///
/// Propagates model construction, transform, bootstrap, and analyzer
/// failures.
pub fn certify_scenario(
    scenario: &dyn Scenario,
    cfg: &CertifyConfig,
) -> Result<ScenarioCertificate, Error> {
    let model = scenario.build()?;
    let t_op = scenario.operator_response_time();
    let transformed = model.without_notification(t_op)?;
    let probes = scenario.probe_beliefs(&model);
    let tprobes = transformed_probes(&transformed, &probes);
    let oracle = certified_lower_bound(&transformed, &tprobes, &cfg.oracle);
    let ceiling = mdp_ceiling(&transformed, 100_000, 1e-12);

    let mut rows = Vec::new();
    let mut reports = Vec::new();
    let points = warm_points(&transformed, &tprobes);

    // ra: the stock controller's startup bound (RA-Bound + termination
    // plane + vertex sweeps).
    let ra_seed = BoundedController::new(transformed.clone(), BoundedConfig::default())?;
    let ra = rehome_and_warm(
        &transformed,
        ra_seed.bound().clone(),
        &points,
        cfg.refine_rounds,
    )?;
    let outcome = verify_controller(
        &format!("{} ra", scenario.name()),
        &ra,
        &probes,
        &cfg.verify,
    )?;
    reports.push(outcome.report);
    let advertised: Vec<f64> = tprobes
        .iter()
        .map(|p| {
            ra.bound()
                .best_vector_quiet(p.probs())
                .map_or(f64::NEG_INFINITY, |(_, v)| v)
        })
        .collect();
    rows.extend(gap_rows(
        "ra",
        &advertised,
        &tprobes,
        &oracle,
        &ceiling,
        cfg.tolerance,
    ));

    // bootstrap: the bootstrap-improved bound, on the depth-1 schedule
    // the generated scenarios use (depth-2 trees at the reference
    // 1e-6 cutoff are minutes of work on 10²-state noisy-monitor
    // models, for the same certified claims).
    let boot_built = bootstrapped_bounded(&model, t_op, cfg.seed, cfg.gamma_cutoff, 10, 1)?;
    let boot = rehome_and_warm(
        &transformed,
        boot_built.bound().clone(),
        &points,
        cfg.refine_rounds,
    )?;
    let outcome = verify_controller(
        &format!("{} bootstrap", scenario.name()),
        &boot,
        &probes,
        &cfg.verify,
    )?;
    reports.push(outcome.report);
    let advertised: Vec<f64> = tprobes
        .iter()
        .map(|p| {
            boot.bound()
                .best_vector_quiet(p.probs())
                .map_or(f64::NEG_INFINITY, |(_, v)| v)
        })
        .collect();
    rows.extend(gap_rows(
        "bootstrap",
        &advertised,
        &tprobes,
        &oracle,
        &ceiling,
        cfg.tolerance,
    ));

    // Full-vs-quotient decision agreement (BPR105) is checked on a
    // *matched stock pair* — identical deterministic construction on
    // both sides of the certificate. Comparing across different bound
    // constructions (or after warm-up refined only one side) would
    // flag legitimate tie-breaking differences, not lump bugs.
    let (quotient_stock, certificate) = transformed.lump()?;
    let inner_stock = BoundedController::new(quotient_stock, BoundedConfig::default())?;
    let lumped_stock = LumpedController::new(inner_stock, certificate);
    reports.push(verify_lumped(
        scenario.name(),
        &ra_seed,
        &lumped_stock,
        &probes,
        &cfg.verify,
    )?);

    // lumped: the fused quotient kernel's bootstrap-improved bound,
    // re-homed on the quotient model and warmed at the projected
    // points. Advertised values are read at the projected probes — the
    // certificate's exact aggregation makes them claims about the full
    // model too.
    let lumped: LumpedController<BoundedController> =
        bootstrapped_bounded_lumped(&model, t_op, cfg.seed, cfg.gamma_cutoff, 10, 1)?;
    let certificate = lumped.certificate();
    let qprobes: Vec<Belief> = tprobes
        .iter()
        .map(|p| Belief::from_probs(certificate.project_weights(p.probs())).map_err(Error::Pomdp))
        .collect::<Result<_, _>>()?;
    let qmodel = lumped.inner().model().clone();
    let qpoints = warm_points(&qmodel, &qprobes);
    let lump_ctl = rehome_and_warm(
        &qmodel,
        lumped.inner().bound().clone(),
        &qpoints,
        cfg.refine_rounds,
    )?;
    let outcome = verify_controller(
        &format!("{} lumped", scenario.name()),
        &lump_ctl,
        &qprobes,
        &cfg.verify,
    )?;
    reports.push(outcome.report);
    let advertised: Vec<f64> = qprobes
        .iter()
        .map(|p| {
            lump_ctl
                .bound()
                .best_vector_quiet(p.probs())
                .map_or(f64::NEG_INFINITY, |(_, v)| v)
        })
        .collect();
    rows.extend(gap_rows(
        "lumped",
        &advertised,
        &tprobes,
        &oracle,
        &ceiling,
        cfg.tolerance,
    ));

    Ok(ScenarioCertificate {
        scenario: scenario.name().to_string(),
        rows,
        reports,
        oracle_sweeps: oracle.sweeps(),
        oracle_points: oracle.points(),
    })
}

/// The seeded broken-bound fixture: a stock two-server controller with
/// a corrupted hyperplane injected — a near-zero plane that dominance
/// pruning happily *accepts* (it claims more value everywhere) but
/// that no conditional plan can achieve. Certify must flag it both
/// ways: the claim exceeds the certified MDP ceiling at every probe,
/// and the BPR102 bound-achievement check fires on the policy graph.
///
/// # Errors
///
/// Propagates model construction failures (the fixture model itself is
/// the valid two-server scenario).
pub fn broken_certificate(cfg: &CertifyConfig) -> Result<ScenarioCertificate, Error> {
    let scenario = bpr_emn::TwoServerScenario::default();
    let model = scenario.build()?;
    let t_op = scenario.operator_response_time();
    let transformed = model.without_notification(t_op)?;
    let probes = scenario.probe_beliefs(&model);
    let tprobes = transformed_probes(&transformed, &probes);
    let oracle = certified_lower_bound(&transformed, &tprobes, &cfg.oracle);
    let ceiling = mdp_ceiling(&transformed, 100_000, 1e-12);

    let n = transformed.pomdp().n_states();
    let mut controller = BoundedController::new(transformed, BoundedConfig::default())?;
    controller
        .bound_mut()
        .add_vector(vec![-1e-9; n])
        .map_err(Error::Pomdp)?;

    let outcome = verify_controller("broken-bound ra", &controller, &probes, &cfg.verify)?;
    let advertised: Vec<f64> = tprobes
        .iter()
        .map(|p| {
            controller
                .bound()
                .best_vector_quiet(p.probs())
                .map_or(f64::NEG_INFINITY, |(_, v)| v)
        })
        .collect();
    let rows = gap_rows(
        "ra",
        &advertised,
        &tprobes,
        &oracle,
        &ceiling,
        cfg.tolerance,
    );
    Ok(ScenarioCertificate {
        scenario: "broken-bound".to_string(),
        rows,
        reports: vec![outcome.report],
        oracle_sweeps: oracle.sweeps(),
        oracle_points: oracle.points(),
    })
}

/// Renders the certificates as the `CERTIFY.json` document: per-belief
/// gap rows, per-variant policy reports, and the pass/fail verdicts CI
/// keys on.
pub fn certify_json(certificates: &[ScenarioCertificate]) -> String {
    let mut out = String::from("{\"certificates\": [");
    for (i, cert) in certificates.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"scenario\": \"{}\", \"passes\": {}, \"errors\": {}, \
             \"oracle_sweeps\": {}, \"oracle_points\": {}, \"rows\": [",
            cert.scenario,
            cert.passes(),
            cert.errors(),
            cert.oracle_sweeps,
            cert.oracle_points
        );
        for (j, row) in cert.rows.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"variant\": \"{}\", \"probe\": {}, \"checked\": {:.12}, \
                 \"floor\": {:.12}, \"ceiling\": {:.12}, \"gap_to_floor\": {:.12}, \
                 \"gap_to_ceiling\": {:.12}, \"sound\": {}, \"dominated\": {}}}",
                row.variant,
                row.probe,
                row.checked,
                row.floor,
                row.ceiling,
                row.checked - row.floor,
                row.ceiling - row.checked,
                row.sound,
                row.dominated
            );
        }
        out.push_str("], \"reports\": [");
        for (j, report) in cert.reports.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&report.to_json());
        }
        out.push_str("]}");
    }
    let failing = certificates.iter().filter(|c| !c.passes()).count();
    let _ = write!(out, "], \"failing\": {failing}}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_server_certifies_clean() {
        let cert = certify_scenario(
            &bpr_emn::TwoServerScenario::default(),
            &CertifyConfig::default(),
        )
        .unwrap();
        assert!(
            cert.passes(),
            "errors={} unsound={} undominated={}\n{:#?}",
            cert.errors(),
            cert.unsound_rows(),
            cert.undominated_rows(),
            cert.rows
        );
        // Three variants × (1 uniform + 2 point probes).
        assert_eq!(cert.rows.len(), 9);
    }

    #[test]
    fn broken_bound_fixture_fails_both_gates() {
        let cert = broken_certificate(&CertifyConfig::default()).unwrap();
        assert!(!cert.passes());
        assert!(cert.unsound_rows() > 0, "{:#?}", cert.rows);
        assert!(cert.errors() > 0, "{:#?}", cert.reports);
    }

    #[test]
    fn certify_json_carries_gap_columns_and_verdicts() {
        let cert = certify_scenario(
            &bpr_emn::TwoServerScenario::default(),
            &CertifyConfig::default(),
        )
        .unwrap();
        let json = certify_json(&[cert]);
        assert!(json.contains("\"gap_to_floor\""));
        assert!(json.contains("\"gap_to_ceiling\""));
        assert!(json.contains("\"passes\": true"));
        assert!(json.contains("\"failing\": 0"));
    }
}
