//! Shared experiment plumbing for the `bpr` reproduction binaries.
//!
//! Each public function regenerates one artifact of the paper's
//! evaluation (Section 5); the `src/bin/*` binaries are thin wrappers
//! that print the results. See `EXPERIMENTS.md` at the repository root
//! for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certify;
pub mod experiments;
pub mod modelcheck;

/// Minimal command-line flag parsing for the experiment binaries:
/// `--name value` pairs, with defaults.
pub fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// String-valued `--name value` flag with a default (used for
/// `--scenario` and `--out` across the bench binaries).
pub fn string_flag(args: &[String], name: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

/// Resolves `--scenario <name>` (defaulting to `default`) against the
/// built-in registry, exiting with status 2 and the available names on
/// an unknown scenario — the shared lookup path of the bench binaries.
pub fn scenario_flag<'r>(
    registry: &'r bpr_core::scenario::ScenarioRegistry,
    args: &[String],
    default: &str,
) -> &'r dyn bpr_core::scenario::Scenario {
    let name = string_flag(args, "--scenario", default);
    match registry.require(&name) {
        Ok(scenario) => scenario,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parses_and_defaults() {
        let args: Vec<String> = ["--faults", "250", "--seed", "9"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag(&args, "--faults", 10usize), 250);
        assert_eq!(flag(&args, "--seed", 1u64), 9);
        assert_eq!(flag(&args, "--missing", 42i32), 42);
        // Unparseable values fall back to the default.
        let bad: Vec<String> = ["--faults", "abc"].iter().map(|s| s.to_string()).collect();
        assert_eq!(flag(&bad, "--faults", 7usize), 7);
    }
}
