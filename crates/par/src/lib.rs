//! A small, dependency-free work pool for the deterministic parallel
//! engines of the `bpr` workspace.
//!
//! The design goal is *determinism first*: results must be bit-identical
//! whatever the thread count. [`WorkPool::map`] therefore imposes a
//! contract on the mapped closure — it must be a pure function of the
//! item index and item value — and in exchange guarantees that the
//! output vector is ordered by index, independent of how chunks were
//! scheduled across workers. Randomised work items derive their own RNG
//! from `(master_seed, index)` via [`rand::split_seed`] /
//! [`rand::SeedableRng::seed_from_stream`] instead of threading one
//! mutable generator through the loop.
//!
//! Workers are scoped `std::thread`s spawned per call (`bpr` workloads
//! are seconds-to-minutes long; spawn cost is noise), pulling chunks
//! from a shared atomic cursor so stragglers self-balance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

pub use rand::split_seed;

/// Errors of pool construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A pool must have at least one worker.
    ZeroThreads,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::ZeroThreads => write!(f, "work pool needs at least one thread"),
        }
    }
}

impl std::error::Error for PoolError {}

/// A work item that panicked under [`WorkPool::map_indices_isolated`]
/// and was quarantined instead of tearing down the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantined {
    /// Index of the poisoned work item.
    pub index: usize,
    /// The captured panic payload (or a placeholder for non-string
    /// payloads).
    pub payload: String,
}

impl std::fmt::Display for Quarantined {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "work item {} panicked: {}", self.index, self.payload)
    }
}

impl std::error::Error for Quarantined {}

/// A fixed-width work pool over scoped `std::thread` workers.
///
/// The pool itself is trivially cheap (it only records the width);
/// threads are spawned inside each `map`-family call via
/// [`std::thread::scope`], so borrowed items and closures need no
/// `'static` bound.
///
/// # Determinism contract
///
/// The closures passed to [`WorkPool::map`] / [`WorkPool::try_map`]
/// must be pure functions of `(index, item)`: no shared mutable state,
/// no reliance on execution order. Under that contract the returned
/// vector is bit-identical for every pool width, including 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkPool {
    threads: NonZeroUsize,
}

impl WorkPool {
    /// Creates a pool of `threads` workers.
    ///
    /// # Errors
    ///
    /// [`PoolError::ZeroThreads`] if `threads` is zero.
    pub fn new(threads: usize) -> Result<WorkPool, PoolError> {
        NonZeroUsize::new(threads)
            .map(|threads| WorkPool { threads })
            .ok_or(PoolError::ZeroThreads)
    }

    /// A single-worker pool: every `map` runs inline on the caller's
    /// thread. Useful as the reference run in determinism checks.
    pub fn serial() -> WorkPool {
        WorkPool {
            threads: NonZeroUsize::MIN,
        }
    }

    /// A pool as wide as the hardware: `std::thread::available_parallelism`,
    /// falling back to 1 when the platform cannot tell.
    pub fn with_available_parallelism() -> WorkPool {
        WorkPool {
            threads: std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// The number of workers.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Applies `f` to every index in `0..n`, returning results in index
    /// order. `f` must be pure per the determinism contract.
    ///
    /// # Panics
    ///
    /// Re-raises panics from `f` on the calling thread.
    pub fn map_indices<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_indices_with(n, || (), |(), i| f(i))
    }

    /// [`WorkPool::map_indices`] with **per-worker scratch state**: each
    /// worker thread builds one `S` via `init` and threads it mutably
    /// through every item it processes. This is the entry point for
    /// allocation-heavy work (e.g. planning workspaces) where the
    /// scratch should be constructed once per worker, not once per item.
    ///
    /// The determinism contract extends naturally: `f(&mut s, i)` must
    /// return a value that depends only on `i` — the scratch may carry
    /// buffers and memoised *exact* intermediate results between items,
    /// but must never change what `f` returns for a given index. Under
    /// that contract the output is bit-identical for every pool width
    /// and every assignment of items to workers. `S` needs no `Send`
    /// bound: scratch is created and dropped inside its worker.
    ///
    /// # Panics
    ///
    /// Re-raises panics from `init` or `f` on the calling thread.
    pub fn map_indices_with<S, T, I, F>(&self, n: usize, init: I, f: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        let width = self.threads.get();
        if width == 1 || n <= 1 {
            let mut scratch = init();
            return (0..n).map(|i| f(&mut scratch, i)).collect();
        }
        // ~4 chunks per worker balances stragglers against cursor
        // contention; the chunk walk inside a worker is in index order,
        // but correctness never depends on scheduling — results land in
        // their index slot regardless.
        let chunk = (n / (width * 4)).max(1);
        let workers = width.min(n.div_ceil(chunk));
        let cursor = AtomicUsize::new(0);
        let init = &init;
        let f = &f;
        let cursor = &cursor;
        let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut scratch = init();
                        let mut local: Vec<(usize, T)> = Vec::new();
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            for i in start..(start + chunk).min(n) {
                                local.push((i, f(&mut scratch, i)));
                            }
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(local) => {
                        for (i, value) in local {
                            results[i] = Some(value);
                        }
                    }
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });
        results
            .into_iter()
            .map(|slot| slot.expect("every index in 0..n was claimed by exactly one chunk"))
            .collect()
    }

    /// [`WorkPool::map_indices`] with **panic isolation**: each call of
    /// `f` runs under [`std::panic::catch_unwind`], so one poisoned
    /// work item is reported as a [`Quarantined`] entry in its index
    /// slot instead of tearing down the whole batch. All other items
    /// still run to completion, in their usual index slots.
    ///
    /// The quarantine captures the panic payload when it is a `String`
    /// or `&str` (the overwhelmingly common case: `panic!`, `assert!`,
    /// `unwrap`, `expect`); other payload types are reported as opaque.
    ///
    /// Note the standard panic hook still runs per panic (stderr
    /// backtrace noise); callers wanting silence can install their own
    /// hook.
    pub fn map_indices_isolated<T, F>(&self, n: usize, f: F) -> Vec<Result<T, Quarantined>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let f = &f;
        self.map_indices(n, move |i| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))).map_err(|payload| {
                let payload = if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else {
                    "non-string panic payload".to_string()
                };
                Quarantined { index: i, payload }
            })
        })
    }

    /// Applies `f` to every item, returning results in item order.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        self.map_indices(items.len(), |i| f(i, &items[i]))
    }

    /// Fallible [`WorkPool::map`]: all items are processed, and on
    /// failure the error of the *smallest* failing index is returned —
    /// the same error a serial loop would hit first, whatever the pool
    /// width.
    ///
    /// # Errors
    ///
    /// The lowest-index error produced by `f`, if any.
    pub fn try_map<I, T, E, F>(&self, items: &[I], f: F) -> Result<Vec<T>, E>
    where
        I: Sync,
        T: Send,
        E: Send,
        F: Fn(usize, &I) -> Result<T, E> + Sync,
    {
        let mut out = Vec::with_capacity(items.len());
        for result in self.map_indices(items.len(), |i| f(i, &items[i])) {
            out.push(result?);
        }
        Ok(out)
    }
}

impl Default for WorkPool {
    /// Defaults to hardware width ([`WorkPool::with_available_parallelism`]).
    fn default() -> WorkPool {
        WorkPool::with_available_parallelism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn zero_threads_is_rejected() {
        assert_eq!(WorkPool::new(0), Err(PoolError::ZeroThreads));
        assert!(WorkPool::new(1).is_ok());
        assert_eq!(WorkPool::serial().threads(), 1);
        assert!(WorkPool::default().threads() >= 1);
    }

    #[test]
    fn map_preserves_index_order_across_widths() {
        let items: Vec<u64> = (0..997).collect();
        let reference: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for width in [1usize, 2, 3, 8] {
            let pool = WorkPool::new(width).unwrap();
            assert_eq!(
                pool.map(&items, |_, &x| x * x + 1),
                reference,
                "width {width}"
            );
        }
    }

    #[test]
    fn seeded_streams_are_width_independent() {
        // The intended idiom: each item derives its RNG from
        // (master, index). Draw counts differ per item to prove no
        // cross-item stream sharing.
        let draw = |i: usize| -> f64 {
            let mut rng = StdRng::seed_from_stream(99, i as u64);
            (0..=i % 5).map(|_| rng.gen::<f64>()).sum()
        };
        let serial = WorkPool::serial().map_indices(64, draw);
        let wide = WorkPool::new(7).unwrap().map_indices(64, draw);
        assert_eq!(serial, wide);
    }

    #[test]
    fn try_map_returns_the_lowest_index_error() {
        let items: Vec<usize> = (0..100).collect();
        for width in [1usize, 4] {
            let pool = WorkPool::new(width).unwrap();
            let result = pool.try_map(&items, |_, &x| if x % 30 == 17 { Err(x) } else { Ok(x) });
            assert_eq!(result, Err(17), "width {width}");
        }
        let ok = WorkPool::new(4)
            .unwrap()
            .try_map(&items, |_, &x| Ok::<_, ()>(x));
        assert_eq!(ok.unwrap(), items);
    }

    #[test]
    fn scratch_is_reused_within_a_worker() {
        // Count scratch constructions: at most one per worker, and the
        // output must match the scratch-free path at every width.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let reference: Vec<usize> = (0..200).map(|i| i * 3).collect();
        for width in [1usize, 2, 4] {
            let pool = WorkPool::new(width).unwrap();
            let builds = AtomicUsize::new(0);
            let out = pool.map_indices_with(
                200,
                || {
                    builds.fetch_add(1, Ordering::Relaxed);
                    Vec::<usize>::new()
                },
                |scratch, i| {
                    scratch.push(i);
                    i * 3
                },
            );
            assert_eq!(out, reference, "width {width}");
            assert!(
                builds.load(Ordering::Relaxed) <= width,
                "width {width}: {} scratch builds",
                builds.load(Ordering::Relaxed)
            );
        }
    }

    #[test]
    fn empty_and_tiny_inputs_work() {
        let pool = WorkPool::new(8).unwrap();
        assert_eq!(pool.map_indices(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.map_indices(1, |i| i), vec![0]);
        assert_eq!(pool.map_indices(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn isolated_map_quarantines_the_poisoned_item() {
        for width in [1usize, 4] {
            let pool = WorkPool::new(width).unwrap();
            let results = pool.map_indices_isolated(8, |i| {
                assert!(i != 5, "boom at {i}");
                i * 10
            });
            assert_eq!(results.len(), 8, "width {width}");
            for (i, r) in results.iter().enumerate() {
                if i == 5 {
                    let q = r.as_ref().unwrap_err();
                    assert_eq!(q.index, 5);
                    assert!(q.payload.contains("boom at 5"), "payload: {}", q.payload);
                    assert!(q.to_string().contains("work item 5"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 10);
                }
            }
        }
    }

    #[test]
    fn isolated_map_with_no_panics_matches_plain_map() {
        let pool = WorkPool::new(3).unwrap();
        let isolated: Vec<usize> = pool
            .map_indices_isolated(64, |i| i + 1)
            .into_iter()
            .map(Result::unwrap)
            .collect();
        assert_eq!(isolated, pool.map_indices(64, |i| i + 1));
    }

    #[test]
    fn worker_panics_propagate() {
        let pool = WorkPool::new(2).unwrap();
        let result = std::panic::catch_unwind(|| {
            pool.map_indices(8, |i| {
                assert!(i != 5, "boom");
                i
            })
        });
        assert!(result.is_err());
    }
}
