//! The EMN e-commerce case study of the paper's Section 5, plus the
//! didactic two-server model of Figure 1(a).
//!
//! The target system is a deployment of AT&T's Enterprise Messaging
//! Network platform: a classic 3-tier architecture with two protocol
//! gateways (HTTP and voice) in front, two EMN application servers in
//! the middle, and a database at the back, spread over three hosts.
//! Component monitors ping individual components; two path monitors
//! drive synthetic requests through the whole stack.
//!
//! This crate turns that description into a validated
//! [`bpr_core::RecoveryModel`]:
//!
//! * [`topology`] — components, hosts, and the request paths.
//! * [`faults`] — the 14-state fault space (null + 5 crashes + 3 host
//!   crashes + 5 zombies).
//! * [`actions`] — 5 restarts, 3 reboots, and the monitor sweep, with
//!   the paper's durations.
//! * [`monitors`] — the 7 monitors and their firing probabilities,
//!   giving a 2⁷-observation model.
//! * [`EmnConfig`] / [`build_model`] — parameterised model generation.
//! * [`two_server`] — the 3-state warm-up model from Figure 1(a).
//! * [`requests`] — a request-level workload description used by the
//!   discrete-event validation in `bpr-sim`.
//!
//! # Examples
//!
//! ```
//! use bpr_emn::{build_model, EmnConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = build_model(&EmnConfig::default())?;
//! assert_eq!(model.base().n_states(), 14);
//! assert_eq!(model.base().n_actions(), 9);
//! assert_eq!(model.base().n_observations(), 128);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actions;
mod config;
pub mod faults;
mod model;
pub mod monitors;
pub mod requests;
pub mod scenario;
pub mod topology;
pub mod two_server;

pub use config::{EmnConfig, PathRouting};
pub use model::build_model;
pub use scenario::{EmnScenario, TwoServerScenario};
