//! [`Scenario`] implementations for the paper's models, so the benches
//! and examples can select them through the shared registry alongside
//! the generated `bpr-topo` corpus.

use crate::config::EmnConfig;
use crate::faults::EmnState;
use crate::two_server::{self, TwoServerConfig};
use bpr_core::lint::LintCode;
use bpr_core::scenario::Scenario;
use bpr_core::{Error, RecoveryModel, StateId};

/// The info-level findings both paper models carry *by design* on the
/// raw (pre-§3.1-transform) POMDP: crash states only reachable through
/// fault injection (BPR013) and the random-chain divergence that the
/// no-notification transform resolves (BPR019). Serving harnesses
/// allowlist these so their reports surface only new findings.
fn paper_model_expected_warnings() -> Vec<LintCode> {
    vec![LintCode::OrphanState, LintCode::DivergentRandomChain]
}

/// The paper's Section 5 EMN case study (14 states, 9 actions, 2⁷
/// observations) as a registry scenario.
#[derive(Debug, Clone, Default)]
pub struct EmnScenario {
    /// Model parameters; [`EmnConfig::default`] is the paper's setup.
    pub config: EmnConfig,
}

impl Scenario for EmnScenario {
    fn name(&self) -> &str {
        "emn"
    }

    fn description(&self) -> &str {
        "paper §5 EMN testbed: 3-tier e-commerce stack, 14 states, 7 monitors"
    }

    fn build(&self) -> Result<RecoveryModel, Error> {
        crate::build_model(&self.config)
    }

    fn operator_response_time(&self) -> f64 {
        self.config.operator_response_time
    }

    /// The paper's evaluation regime: silent zombie faults, which the
    /// ping monitors cannot see — crashes are trivially diagnosable.
    fn fault_population(&self, _model: &RecoveryModel) -> Vec<StateId> {
        EmnState::zombies()
            .into_iter()
            .map(|s| s.state_id())
            .collect()
    }

    fn expected_warnings(&self) -> Vec<LintCode> {
        paper_model_expected_warnings()
    }
}

/// The operator response time the modelcheck gate and benches use for
/// the two-server no-notification transform (the model's costs are in
/// abstract steps, not seconds).
pub const TWO_SERVER_OPERATOR_RESPONSE_TIME: f64 = 10.0;

/// The didactic Figure 1(a) two-server model as a registry scenario.
#[derive(Debug, Clone, Default)]
pub struct TwoServerScenario {
    /// Monitor accuracy parameters.
    pub config: TwoServerConfig,
}

impl Scenario for TwoServerScenario {
    fn name(&self) -> &str {
        "two-server"
    }

    fn description(&self) -> &str {
        "figure 1(a) warm-up: two redundant servers, one noisy monitor"
    }

    fn build(&self) -> Result<RecoveryModel, Error> {
        two_server::model(&self.config)
    }

    fn operator_response_time(&self) -> f64 {
        TWO_SERVER_OPERATOR_RESPONSE_TIME
    }

    fn expected_warnings(&self) -> Vec<LintCode> {
        paper_model_expected_warnings()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpr_core::scenario::lint_scenario;

    #[test]
    fn emn_scenario_builds_the_paper_model() {
        let s = EmnScenario::default();
        let m = s.build().unwrap();
        assert_eq!(m.base().n_states(), 14);
        assert_eq!(s.operator_response_time(), 21_600.0);
        let zombies = s.fault_population(&m);
        assert_eq!(zombies.len(), 5);
        for z in zombies {
            assert!(!m.is_null(z));
        }
    }

    #[test]
    fn paper_scenarios_lint_clean_and_allowlist_only_the_designed_findings() {
        use bpr_core::scenario::unexpected_warnings;
        for s in [
            Box::new(EmnScenario::default()) as Box<dyn Scenario>,
            Box::new(TwoServerScenario::default()),
        ] {
            let allow = s.expected_warnings();
            assert_eq!(
                allow,
                vec![LintCode::OrphanState, LintCode::DivergentRandomChain]
            );
            for r in lint_scenario(s.as_ref()).unwrap() {
                assert!(!r.has_errors(), "{}", r.render());
                assert!(unexpected_warnings(&r, &allow).is_empty(), "{}", r.render());
            }
        }
    }
}
