//! Components, hosts, and request paths of the EMN deployment (Fig. 4).

use std::fmt;

/// The five software components of the EMN deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// HTTP gateway (HG) — front-end for 80 % of the traffic.
    HttpGateway,
    /// Voice gateway (VG) — front-end for 20 % of the traffic.
    VoiceGateway,
    /// EMN application server 1 (S1).
    Server1,
    /// EMN application server 2 (S2).
    Server2,
    /// The back-end database (DB).
    Database,
}

impl Component {
    /// All components, in canonical (index) order.
    pub const ALL: [Component; 5] = [
        Component::HttpGateway,
        Component::VoiceGateway,
        Component::Server1,
        Component::Server2,
        Component::Database,
    ];

    /// Canonical index (0..5) used in state/action numbering.
    pub fn index(self) -> usize {
        match self {
            Component::HttpGateway => 0,
            Component::VoiceGateway => 1,
            Component::Server1 => 2,
            Component::Server2 => 3,
            Component::Database => 4,
        }
    }

    /// The component with the given canonical index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 5`.
    pub fn from_index(index: usize) -> Component {
        Component::ALL[index]
    }

    /// The host this component is deployed on.
    ///
    /// Deployment (per the SRDS'05 description of the same testbed):
    /// HostA runs both gateways, HostB runs S1, HostC runs S2 and the
    /// database.
    pub fn host(self) -> Host {
        match self {
            Component::HttpGateway | Component::VoiceGateway => Host::A,
            Component::Server1 => Host::B,
            Component::Server2 | Component::Database => Host::C,
        }
    }

    /// The short label used in state/action names.
    pub fn short_name(self) -> &'static str {
        match self {
            Component::HttpGateway => "HG",
            Component::VoiceGateway => "VG",
            Component::Server1 => "S1",
            Component::Server2 => "S2",
            Component::Database => "DB",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// The three hosts of the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Host {
    /// Hosts the HTTP and voice gateways.
    A,
    /// Hosts EMN server 1.
    B,
    /// Hosts EMN server 2 and the database.
    C,
}

impl Host {
    /// All hosts, in canonical (index) order.
    pub const ALL: [Host; 3] = [Host::A, Host::B, Host::C];

    /// Canonical index (0..3) used in state/action numbering.
    pub fn index(self) -> usize {
        match self {
            Host::A => 0,
            Host::B => 1,
            Host::C => 2,
        }
    }

    /// The host with the given canonical index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 3`.
    pub fn from_index(index: usize) -> Host {
        Host::ALL[index]
    }

    /// The components deployed on this host.
    pub fn components(self) -> Vec<Component> {
        Component::ALL
            .into_iter()
            .filter(|c| c.host() == self)
            .collect()
    }

    /// The short label used in state/action names.
    pub fn short_name(self) -> &'static str {
        match self {
            Host::A => "hostA",
            Host::B => "hostB",
            Host::C => "hostC",
        }
    }
}

impl fmt::Display for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// The protocol classes carried by the system, with their traffic share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// HTTP requests — 80 % of the traffic in the paper's setup.
    Http,
    /// Voice requests — the remaining 20 %.
    Voice,
}

impl Protocol {
    /// Both protocols.
    pub const ALL: [Protocol; 2] = [Protocol::Http, Protocol::Voice];

    /// The gateway fronting this protocol.
    pub fn gateway(self) -> Component {
        match self {
            Protocol::Http => Component::HttpGateway,
            Protocol::Voice => Component::VoiceGateway,
        }
    }
}

/// The fraction of end-to-end requests dropped when `is_down(c)` holds
/// for the broken components, given per-protocol traffic shares.
///
/// A request of protocol `p` traverses `gateway(p) → S_i → DB` with the
/// server drawn 50/50; it is dropped if any component on its path is
/// down. Zombie components count as down — they accept requests and
/// fail them.
pub fn drop_fraction(http_share: f64, is_down: impl Fn(Component) -> bool) -> f64 {
    let voice_share = 1.0 - http_share;
    let mut dropped = 0.0;
    for p in Protocol::ALL {
        let share = match p {
            Protocol::Http => http_share,
            Protocol::Voice => voice_share,
        };
        let gateway_down = is_down(p.gateway());
        let db_down = is_down(Component::Database);
        let s1_down = is_down(Component::Server1);
        let s2_down = is_down(Component::Server2);
        let p_drop = if gateway_down || db_down {
            1.0
        } else {
            0.5 * f64::from(u8::from(s1_down)) + 0.5 * f64::from(u8::from(s2_down))
        };
        dropped += share * p_drop;
    }
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_indices_roundtrip() {
        for c in Component::ALL {
            assert_eq!(Component::from_index(c.index()), c);
        }
        assert_eq!(Component::HttpGateway.to_string(), "HG");
    }

    #[test]
    fn host_assignment_matches_deployment() {
        assert_eq!(
            Host::A.components(),
            vec![Component::HttpGateway, Component::VoiceGateway]
        );
        assert_eq!(Host::B.components(), vec![Component::Server1]);
        assert_eq!(
            Host::C.components(),
            vec![Component::Server2, Component::Database]
        );
        for h in Host::ALL {
            assert_eq!(Host::from_index(h.index()), h);
            for c in h.components() {
                assert_eq!(c.host(), h);
            }
        }
        assert_eq!(Host::B.to_string(), "hostB");
    }

    #[test]
    fn protocol_gateways() {
        assert_eq!(Protocol::Http.gateway(), Component::HttpGateway);
        assert_eq!(Protocol::Voice.gateway(), Component::VoiceGateway);
    }

    #[test]
    fn drop_fraction_of_single_faults() {
        let f = |down: Component| drop_fraction(0.8, |c| c == down);
        assert!((f(Component::HttpGateway) - 0.8).abs() < 1e-12);
        assert!((f(Component::VoiceGateway) - 0.2).abs() < 1e-12);
        assert!((f(Component::Server1) - 0.5).abs() < 1e-12);
        assert!((f(Component::Server2) - 0.5).abs() < 1e-12);
        assert!((f(Component::Database) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn drop_fraction_of_compound_failures() {
        // Both servers down kills everything that got past a gateway.
        let both = drop_fraction(0.8, |c| {
            matches!(c, Component::Server1 | Component::Server2)
        });
        assert!((both - 1.0).abs() < 1e-12);
        // HostA down (both gateways) kills everything.
        let host_a = drop_fraction(0.8, |c| c.host() == Host::A);
        assert!((host_a - 1.0).abs() < 1e-12);
        // Nothing down drops nothing.
        assert_eq!(drop_fraction(0.8, |_| false), 0.0);
    }

    #[test]
    fn drop_fraction_respects_traffic_mix() {
        let f = drop_fraction(0.5, |c| c == Component::HttpGateway);
        assert!((f - 0.5).abs() < 1e-12);
    }
}
