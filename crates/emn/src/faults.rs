//! The 14-state fault space of the EMN model (paper §5).

use crate::topology::{Component, Host};
use bpr_mdp::StateId;
use std::fmt;

/// A system state of the EMN model: the null-fault state or one of 13
/// faults (5 component crashes, 3 host crashes, 5 component zombies).
///
/// A *zombie* component still answers pings but silently fails its real
/// work — the fault class that only the path monitors can (partially)
/// see, and the one the paper's experiments inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EmnState {
    /// No activated fault.
    Null,
    /// A single component has crashed.
    Crash(Component),
    /// An entire host (and every component on it) has crashed.
    HostCrash(Host),
    /// A component has turned into a zombie.
    Zombie(Component),
}

/// Number of states in the EMN model.
pub const N_STATES: usize = 14;

impl EmnState {
    /// All states in canonical index order: Null, 5 crashes, 3 host
    /// crashes, 5 zombies.
    pub fn all() -> Vec<EmnState> {
        let mut v = Vec::with_capacity(N_STATES);
        v.push(EmnState::Null);
        v.extend(Component::ALL.into_iter().map(EmnState::Crash));
        v.extend(Host::ALL.into_iter().map(EmnState::HostCrash));
        v.extend(Component::ALL.into_iter().map(EmnState::Zombie));
        v
    }

    /// The canonical state index (the [`StateId`] in the POMDP).
    pub fn index(self) -> usize {
        match self {
            EmnState::Null => 0,
            EmnState::Crash(c) => 1 + c.index(),
            EmnState::HostCrash(h) => 6 + h.index(),
            EmnState::Zombie(c) => 9 + c.index(),
        }
    }

    /// The state id in the generated POMDP.
    pub fn state_id(self) -> StateId {
        StateId::new(self.index())
    }

    /// Decodes a canonical index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= N_STATES`.
    pub fn from_index(index: usize) -> EmnState {
        match index {
            0 => EmnState::Null,
            1..=5 => EmnState::Crash(Component::from_index(index - 1)),
            6..=8 => EmnState::HostCrash(Host::from_index(index - 6)),
            9..=13 => EmnState::Zombie(Component::from_index(index - 9)),
            _ => panic!("EMN state index {index} out of bounds (< {N_STATES})"),
        }
    }

    /// Whether component `c` is effectively *down* in this state —
    /// crashed, zombied, or on a crashed host. Zombies count as down
    /// because the requests routed to them are lost.
    pub fn is_down(self, c: Component) -> bool {
        match self {
            EmnState::Null => false,
            EmnState::Crash(x) => x == c,
            EmnState::HostCrash(h) => c.host() == h,
            EmnState::Zombie(x) => x == c,
        }
    }

    /// Whether component `c` answers pings in this state. Crashed
    /// components and components on crashed hosts do not; zombies do.
    pub fn answers_ping(self, c: Component) -> bool {
        match self {
            EmnState::Crash(x) => x != c,
            EmnState::HostCrash(h) => c.host() != h,
            EmnState::Null | EmnState::Zombie(_) => true,
        }
    }

    /// The zombie states (the fault class injected in the paper's
    /// experiments).
    pub fn zombies() -> Vec<EmnState> {
        Component::ALL.into_iter().map(EmnState::Zombie).collect()
    }

    /// The 13 fault states (everything but [`EmnState::Null`]).
    pub fn faults() -> Vec<EmnState> {
        EmnState::all().into_iter().skip(1).collect()
    }
}

impl fmt::Display for EmnState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmnState::Null => write!(f, "Null"),
            EmnState::Crash(c) => write!(f, "Crash({c})"),
            EmnState::HostCrash(h) => write!(f, "Crash({h})"),
            EmnState::Zombie(c) => write!(f, "Zombie({c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_states_roundtrip() {
        let all = EmnState::all();
        assert_eq!(all.len(), N_STATES);
        for (i, s) in all.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(EmnState::from_index(i), *s);
            assert_eq!(s.state_id().index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn decoding_past_the_end_panics() {
        EmnState::from_index(14);
    }

    #[test]
    fn downness_of_host_crash_covers_hosted_components() {
        let s = EmnState::HostCrash(Host::C);
        assert!(s.is_down(Component::Server2));
        assert!(s.is_down(Component::Database));
        assert!(!s.is_down(Component::Server1));
        assert!(!s.is_down(Component::HttpGateway));
    }

    #[test]
    fn zombies_answer_pings_but_are_down() {
        let s = EmnState::Zombie(Component::Server1);
        assert!(s.is_down(Component::Server1));
        assert!(s.answers_ping(Component::Server1));
        let crash = EmnState::Crash(Component::Server1);
        assert!(!crash.answers_ping(Component::Server1));
        assert!(crash.answers_ping(Component::Server2));
    }

    #[test]
    fn host_crash_silences_pings() {
        let s = EmnState::HostCrash(Host::A);
        assert!(!s.answers_ping(Component::HttpGateway));
        assert!(!s.answers_ping(Component::VoiceGateway));
        assert!(s.answers_ping(Component::Database));
    }

    #[test]
    fn fault_and_zombie_listings() {
        assert_eq!(EmnState::faults().len(), 13);
        assert_eq!(EmnState::zombies().len(), 5);
        assert!(!EmnState::faults().contains(&EmnState::Null));
    }

    #[test]
    fn display_labels_are_informative() {
        assert_eq!(EmnState::Null.to_string(), "Null");
        assert_eq!(
            EmnState::Crash(Component::Database).to_string(),
            "Crash(DB)"
        );
        assert_eq!(EmnState::HostCrash(Host::B).to_string(), "Crash(hostB)");
        assert_eq!(
            EmnState::Zombie(Component::Server1).to_string(),
            "Zombie(S1)"
        );
    }
}
