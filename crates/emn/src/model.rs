//! Generation of the EMN recovery model POMDP.

use crate::actions::{EmnAction, N_ACTIONS};
use crate::config::EmnConfig;
use crate::faults::{EmnState, N_STATES};
use crate::monitors::{self, N_OBSERVATIONS};
use crate::topology::drop_fraction;
use bpr_core::blueprint::{assemble, ModelBlueprint};
use bpr_core::{Error, RecoveryModel};
use bpr_pomdp::ObservationId;

/// The fraction of requests dropped while `action` executes in `state`:
/// the union of the fault's effect and the components the action takes
/// offline.
fn drop_during(state: EmnState, action: EmnAction, config: &EmnConfig) -> f64 {
    let down_by_action = action.components_taken_down();
    drop_fraction(config.http_share, |c| {
        state.is_down(c) || down_by_action.contains(&c)
    })
}

/// The wall-clock duration of an action under `config`.
fn duration(action: EmnAction, config: &EmnConfig) -> f64 {
    use crate::topology::Component as C;
    match action {
        EmnAction::Restart(C::HttpGateway) => config.hg_restart_duration,
        EmnAction::Restart(C::VoiceGateway) => config.vg_restart_duration,
        EmnAction::Restart(C::Server1 | C::Server2) => config.server_restart_duration,
        EmnAction::Restart(C::Database) => config.db_restart_duration,
        EmnAction::Reboot(_) => config.host_reboot_duration,
        EmnAction::Observe => config.monitor_duration,
    }
}

/// Builds the paper's 14-state / 9-action / 128-observation EMN
/// recovery model.
///
/// * Transitions are deterministic (§5): the matching restart/reboot
///   fixes a fault, everything else leaves the state unchanged.
/// * Rewards are `-(drop fraction while the action runs) · duration` —
///   costs accrue at the rate of requests being dropped, both from the
///   fault itself and from components made unavailable by the recovery
///   action.
/// * Observations are the joint outputs of the 7 monitors
///   (see [`crate::monitors`]).
/// * The system lacks recovery notification (zombies are invisible to
///   ping monitors), so controllers should apply
///   [`RecoveryModel::without_notification`] with
///   `config.operator_response_time`.
///
/// # Errors
///
/// * [`Error::InvalidInput`] for invalid configurations.
/// * Propagates model-validation failures (none are expected for valid
///   configurations).
pub fn build_model(config: &EmnConfig) -> Result<RecoveryModel, Error> {
    config
        .validate()
        .map_err(|detail| Error::InvalidInput { detail })?;
    assemble(&EmnBlueprint { config })
}

/// The EMN model expressed as a [`ModelBlueprint`]: the declarative
/// recipe [`assemble`] compiles through the shared builder pipeline.
/// Holds an already-validated config.
struct EmnBlueprint<'c> {
    config: &'c EmnConfig,
}

impl ModelBlueprint for EmnBlueprint<'_> {
    fn n_states(&self) -> usize {
        N_STATES
    }
    fn n_actions(&self) -> usize {
        N_ACTIONS
    }
    fn n_observations(&self) -> usize {
        N_OBSERVATIONS
    }
    fn state_label(&self, s: usize) -> String {
        EmnState::from_index(s).to_string()
    }
    fn action_label(&self, a: usize) -> String {
        EmnAction::from_index(a).to_string()
    }
    fn observation_label(&self, o: usize) -> String {
        monitors::label(ObservationId::new(o))
    }
    fn action_duration(&self, a: usize) -> f64 {
        duration(EmnAction::from_index(a), self.config)
    }
    fn transitions(&self, s: usize, a: usize, out: &mut Vec<(usize, f64)>) {
        let (s, a) = (EmnState::from_index(s), EmnAction::from_index(a));
        out.push((a.apply(s).index(), 1.0));
    }
    fn reward(&self, s: usize, a: usize) -> f64 {
        let (s, a) = (EmnState::from_index(s), EmnAction::from_index(a));
        -drop_during(s, a, self.config) * duration(a, self.config)
    }
    fn observation_row(&self, entered: usize, out: &mut Vec<(usize, f64)>) {
        let s = EmnState::from_index(entered);
        for mask in 0..N_OBSERVATIONS {
            let q = monitors::observation_prob(ObservationId::new(mask), s, self.config);
            if q > 0.0 {
                out.push((mask, q));
            }
        }
    }
    fn null_states(&self) -> Vec<usize> {
        vec![EmnState::Null.index()]
    }
    fn idle_rate(&self, s: usize) -> f64 {
        let s = EmnState::from_index(s);
        -drop_fraction(self.config.http_share, |c| s.is_down(c))
    }
    fn observe_actions(&self) -> Vec<usize> {
        vec![EmnAction::Observe.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Component, Host};
    use bpr_mdp::StateId;

    fn model() -> RecoveryModel {
        build_model(&EmnConfig::default()).unwrap()
    }

    #[test]
    fn dimensions_match_the_paper() {
        let m = model();
        assert_eq!(m.base().n_states(), 14);
        assert_eq!(m.base().n_actions(), 9);
        assert_eq!(m.base().n_observations(), 128);
        assert_eq!(m.null_states(), &[StateId::new(0)]);
        assert_eq!(m.fault_states().len(), 13);
    }

    #[test]
    fn labels_are_wired_through() {
        let m = model();
        assert_eq!(m.base().mdp().state_label(0), "Null");
        assert_eq!(m.base().mdp().state_label(9), "Zombie(HG)");
        assert_eq!(m.base().mdp().action_label(8), "Observe");
        assert_eq!(m.base().mdp().action_label(5), "Reboot(hostA)");
        assert_eq!(m.base().observation_label(0), "all-clear");
    }

    #[test]
    fn durations_match_the_paper() {
        let m = model();
        let d = |a: EmnAction| m.base().mdp().duration(a.index());
        assert_eq!(d(EmnAction::Reboot(Host::A)), 300.0);
        assert_eq!(d(EmnAction::Restart(Component::Database)), 240.0);
        assert_eq!(d(EmnAction::Restart(Component::VoiceGateway)), 120.0);
        assert_eq!(d(EmnAction::Restart(Component::HttpGateway)), 60.0);
        assert_eq!(d(EmnAction::Restart(Component::Server1)), 60.0);
        assert_eq!(d(EmnAction::Observe), 5.0);
    }

    #[test]
    fn rewards_combine_fault_and_action_unavailability() {
        let m = model();
        let r = |s: EmnState, a: EmnAction| m.base().mdp().reward(s.index(), a.index());
        // Observing while S1 is a zombie: half the traffic drops for 5 s.
        assert!(
            (r(EmnState::Zombie(Component::Server1), EmnAction::Observe) + 0.5 * 5.0).abs() < 1e-9
        );
        // Restarting the DB in the Null state: everything drops for 240 s.
        assert!((r(EmnState::Null, EmnAction::Restart(Component::Database)) + 240.0).abs() < 1e-9);
        // Observing in Null is free.
        assert_eq!(r(EmnState::Null, EmnAction::Observe), 0.0);
        // Restarting S2 while S1 is zombie: both servers down -> all
        // traffic drops for 60 s.
        assert!(
            (r(
                EmnState::Zombie(Component::Server1),
                EmnAction::Restart(Component::Server2)
            ) + 60.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn transitions_are_deterministic_fixes() {
        let m = model();
        let s = EmnState::Zombie(Component::Database);
        let fix = EmnAction::Restart(Component::Database);
        assert_eq!(
            m.base()
                .mdp()
                .transition_prob(s.index(), fix.index(), EmnState::Null.index()),
            1.0
        );
        let wrong = EmnAction::Restart(Component::Server1);
        assert_eq!(
            m.base()
                .mdp()
                .transition_prob(s.index(), wrong.index(), s.index()),
            1.0
        );
    }

    #[test]
    fn every_fault_has_recovery_actions_identified() {
        let m = model();
        for s in EmnState::faults() {
            let actions = m.recovery_actions_for(s.state_id());
            assert!(!actions.is_empty(), "no recovery action for {s}");
        }
        // The cheapest action for a DB zombie is the DB restart, not a
        // host C reboot (240 s of full outage beats 300 s).
        let a = m
            .cheapest_recovery_action(EmnState::Zombie(Component::Database).state_id())
            .unwrap();
        assert_eq!(a, EmnAction::Restart(Component::Database).action_id());
    }

    #[test]
    fn cheapest_recovery_for_server_zombie_is_its_restart() {
        let m = model();
        let a = m
            .cheapest_recovery_action(EmnState::Zombie(Component::Server1).state_id())
            .unwrap();
        assert_eq!(a, EmnAction::Restart(Component::Server1).action_id());
    }

    #[test]
    fn rates_match_idle_drop_fractions() {
        let m = model();
        assert_eq!(m.rates()[0], 0.0);
        assert!((m.rates()[EmnState::Zombie(Component::Server1).index()] + 0.5).abs() < 1e-12);
        assert!((m.rates()[EmnState::Crash(Component::Database).index()] + 1.0).abs() < 1e-12);
        assert!((m.rates()[EmnState::HostCrash(Host::A).index()] + 1.0).abs() < 1e-12);
        assert!((m.rates()[EmnState::Zombie(Component::VoiceGateway).index()] + 0.2).abs() < 1e-12);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = EmnConfig {
            http_share: 2.0,
            ..EmnConfig::default()
        };
        assert!(matches!(build_model(&cfg), Err(Error::InvalidInput { .. })));
    }

    #[test]
    fn transform_without_notification_succeeds() {
        let m = model();
        let cfg = EmnConfig::default();
        let t = m.without_notification(cfg.operator_response_time).unwrap();
        assert_eq!(t.pomdp().n_states(), 15);
        assert_eq!(t.pomdp().n_actions(), 10);
        assert_eq!(t.pomdp().n_observations(), 129);
        // Termination reward for a DB crash: full outage for 6 hours.
        assert!(
            (t.pomdp()
                .mdp()
                .reward(EmnState::Crash(Component::Database).index(), 9)
                + 21_600.0)
                .abs()
                < 1e-6
        );
    }
}
