//! The monitoring subsystem: five component (ping) monitors and two
//! path monitors, and the observation encoding.
//!
//! An observation of the EMN POMDP is the joint output of all seven
//! monitors, encoded as a 7-bit mask (bit set = "monitor reports a
//! failure"), giving `2⁷ = 128` observations. Monitors fire
//! independently given the system state, so
//! `q(mask | s) = Π_m p_m(s)^{bit} (1 − p_m(s))^{1−bit}`.

use crate::config::EmnConfig;
use crate::faults::EmnState;
use crate::topology::{Component, Protocol};
use bpr_pomdp::ObservationId;
use std::fmt;

/// One of the seven monitors of the EMN deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Monitor {
    /// Ping-based monitor of a single component (HGMon, VGMon, S1Mon,
    /// S2Mon, DBMon).
    Component(Component),
    /// End-to-end monitor driving a synthetic HTTP request (HPathMon).
    HttpPath,
    /// End-to-end monitor driving a synthetic voice request (VPathMon).
    VoicePath,
}

/// Number of monitors (and bits in an observation mask).
pub const N_MONITORS: usize = 7;

/// Number of observations (`2^N_MONITORS`).
pub const N_OBSERVATIONS: usize = 1 << N_MONITORS;

impl Monitor {
    /// All monitors in canonical bit order.
    pub fn all() -> Vec<Monitor> {
        let mut v: Vec<Monitor> = Component::ALL.into_iter().map(Monitor::Component).collect();
        v.push(Monitor::HttpPath);
        v.push(Monitor::VoicePath);
        v
    }

    /// The bit this monitor occupies in the observation mask.
    pub fn bit(self) -> usize {
        match self {
            Monitor::Component(c) => c.index(),
            Monitor::HttpPath => 5,
            Monitor::VoicePath => 6,
        }
    }

    /// Probability that this monitor reports a failure in state `s`,
    /// under the coverage/false-positive parameters of `config`.
    ///
    /// * Component monitors detect components that stop answering pings
    ///   (crashes and host crashes) with probability
    ///   `component_coverage`; zombies keep answering, so only the
    ///   false-positive rate fires.
    /// * Path monitors send one synthetic request down
    ///   `gateway → S_i → DB` with the server drawn 50/50 and report a
    ///   failure (with probability `path_coverage`) when any component
    ///   on the sampled path is down. The 50/50 draw is the paper's
    ///   "path diversity": a single zombie server is caught only half
    ///   the time.
    pub fn firing_prob(self, s: EmnState, config: &EmnConfig) -> f64 {
        match self {
            Monitor::Component(c) => {
                if s.answers_ping(c) {
                    config.component_false_positive
                } else {
                    config.component_coverage
                }
            }
            Monitor::HttpPath => path_firing_prob(Protocol::Http, s, config),
            Monitor::VoicePath => path_firing_prob(Protocol::Voice, s, config),
        }
    }
}

impl fmt::Display for Monitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Monitor::Component(c) => write!(f, "{c}Mon"),
            Monitor::HttpPath => write!(f, "HPathMon"),
            Monitor::VoicePath => write!(f, "VPathMon"),
        }
    }
}

fn path_firing_prob(protocol: Protocol, s: EmnState, config: &EmnConfig) -> f64 {
    use crate::config::PathRouting;
    let gateway_down = s.is_down(protocol.gateway());
    let db_down = s.is_down(Component::Database);
    let p_broken = if gateway_down || db_down {
        1.0
    } else {
        match config.path_routing {
            PathRouting::RandomPerProbe => {
                0.5 * f64::from(u8::from(s.is_down(Component::Server1)))
                    + 0.5 * f64::from(u8::from(s.is_down(Component::Server2)))
            }
            PathRouting::FixedDisjoint => {
                let probed = match protocol {
                    Protocol::Http => Component::Server1,
                    Protocol::Voice => Component::Server2,
                };
                f64::from(u8::from(s.is_down(probed)))
            }
        }
    };
    config.path_coverage * p_broken + config.path_false_positive * (1.0 - p_broken)
}

/// Whether `monitor` reports a failure in observation `mask`.
pub fn fired(mask: ObservationId, monitor: Monitor) -> bool {
    mask.index() & (1 << monitor.bit()) != 0
}

/// Encodes per-monitor outputs into an observation id.
///
/// `outputs[i]` corresponds to the monitor with bit `i` (the canonical
/// order of [`Monitor::all`]).
pub fn encode(outputs: [bool; N_MONITORS]) -> ObservationId {
    let mut mask = 0usize;
    for (i, &b) in outputs.iter().enumerate() {
        if b {
            mask |= 1 << i;
        }
    }
    ObservationId::new(mask)
}

/// The probability of a full observation mask in state `s`:
/// the product of independent per-monitor firing probabilities.
pub fn observation_prob(mask: ObservationId, s: EmnState, config: &EmnConfig) -> f64 {
    let mut p = 1.0;
    for m in Monitor::all() {
        let f = m.firing_prob(s, config);
        p *= if fired(mask, m) { f } else { 1.0 - f };
    }
    p
}

/// A human-readable label for an observation mask, e.g.
/// `"S1Mon,HPathMon"` (empty mask = `"all-clear"`).
pub fn label(mask: ObservationId) -> String {
    let names: Vec<String> = Monitor::all()
        .into_iter()
        .filter(|m| fired(mask, *m))
        .map(|m| m.to_string())
        .collect();
    if names.is_empty() {
        "all-clear".to_string()
    } else {
        names.join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Host;

    fn config() -> EmnConfig {
        EmnConfig::default()
    }

    #[test]
    fn monitor_bits_are_unique_and_dense() {
        let mut bits: Vec<usize> = Monitor::all().into_iter().map(Monitor::bit).collect();
        bits.sort_unstable();
        assert_eq!(bits, (0..N_MONITORS).collect::<Vec<_>>());
    }

    #[test]
    fn component_monitor_sees_crashes_not_zombies() {
        let cfg = config();
        let mon = Monitor::Component(Component::Server1);
        assert_eq!(
            mon.firing_prob(EmnState::Crash(Component::Server1), &cfg),
            cfg.component_coverage
        );
        assert_eq!(
            mon.firing_prob(EmnState::Zombie(Component::Server1), &cfg),
            cfg.component_false_positive
        );
        assert_eq!(
            mon.firing_prob(EmnState::Null, &cfg),
            cfg.component_false_positive
        );
        // Host crash silences every hosted component.
        assert_eq!(
            Monitor::Component(Component::Database).firing_prob(EmnState::HostCrash(Host::C), &cfg),
            cfg.component_coverage
        );
    }

    #[test]
    fn path_monitor_catches_zombie_servers_half_the_time() {
        let cfg = config();
        let p = Monitor::HttpPath.firing_prob(EmnState::Zombie(Component::Server1), &cfg);
        let expected = cfg.path_coverage * 0.5 + cfg.path_false_positive * 0.5;
        assert!((p - expected).abs() < 1e-12);
    }

    #[test]
    fn path_monitor_always_catches_gateway_and_db_faults() {
        let cfg = config();
        for s in [
            EmnState::Zombie(Component::HttpGateway),
            EmnState::Crash(Component::Database),
            EmnState::HostCrash(Host::C), // DB down
        ] {
            assert_eq!(
                Monitor::HttpPath.firing_prob(s, &cfg),
                cfg.path_coverage,
                "state {s}"
            );
        }
        // Voice path does not care about the HTTP gateway.
        assert_eq!(
            Monitor::VoicePath.firing_prob(EmnState::Zombie(Component::HttpGateway), &cfg),
            cfg.path_false_positive
        );
    }

    #[test]
    fn fixed_disjoint_routing_localises_server_zombies() {
        use crate::config::PathRouting;
        let cfg = EmnConfig {
            path_routing: PathRouting::FixedDisjoint,
            ..EmnConfig::default()
        };
        // HTTP path probes S1 only: an S1 zombie fires HPathMon with
        // full coverage and VPathMon only as a false positive.
        let s1 = EmnState::Zombie(Component::Server1);
        assert_eq!(Monitor::HttpPath.firing_prob(s1, &cfg), cfg.path_coverage);
        assert_eq!(
            Monitor::VoicePath.firing_prob(s1, &cfg),
            cfg.path_false_positive
        );
        let s2 = EmnState::Zombie(Component::Server2);
        assert_eq!(
            Monitor::HttpPath.firing_prob(s2, &cfg),
            cfg.path_false_positive
        );
        assert_eq!(Monitor::VoicePath.firing_prob(s2, &cfg), cfg.path_coverage);
    }

    #[test]
    fn random_routing_makes_server_zombies_observation_clones() {
        use bpr_pomdp::diagnosis::{observation_distribution, total_variation};
        let model = crate::build_model(&EmnConfig::default()).unwrap();
        let a = crate::actions::EmnAction::Observe.action_id();
        let p1 = observation_distribution(
            model.base(),
            EmnState::Zombie(Component::Server1).state_id(),
            a,
        );
        let p2 = observation_distribution(
            model.base(),
            EmnState::Zombie(Component::Server2).state_id(),
            a,
        );
        assert!(total_variation(&p1, &p2) < 1e-12, "expected clones");
        // With fixed disjoint routing they separate.
        let cfg = EmnConfig {
            path_routing: crate::config::PathRouting::FixedDisjoint,
            ..EmnConfig::default()
        };
        let model = crate::build_model(&cfg).unwrap();
        let p1 = observation_distribution(
            model.base(),
            EmnState::Zombie(Component::Server1).state_id(),
            a,
        );
        let p2 = observation_distribution(
            model.base(),
            EmnState::Zombie(Component::Server2).state_id(),
            a,
        );
        assert!(total_variation(&p1, &p2) > 0.5);
    }

    #[test]
    fn observation_probs_sum_to_one_in_every_state() {
        let cfg = config();
        for s in EmnState::all() {
            let total: f64 = (0..N_OBSERVATIONS)
                .map(|m| observation_prob(ObservationId::new(m), s, &cfg))
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "state {s}: total {total}");
        }
    }

    #[test]
    fn encode_and_fired_roundtrip() {
        let mask = encode([true, false, false, true, false, true, false]);
        assert!(fired(mask, Monitor::Component(Component::HttpGateway)));
        assert!(fired(mask, Monitor::Component(Component::Server2)));
        assert!(fired(mask, Monitor::HttpPath));
        assert!(!fired(mask, Monitor::VoicePath));
        assert!(!fired(mask, Monitor::Component(Component::VoiceGateway)));
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(label(ObservationId::new(0)), "all-clear");
        let mask = encode([false, false, true, false, false, true, false]);
        assert_eq!(label(mask), "S1Mon,HPathMon");
    }

    #[test]
    fn all_clear_is_most_likely_in_null() {
        let cfg = config();
        let p_clear = observation_prob(ObservationId::new(0), EmnState::Null, &cfg);
        for m in 1..N_OBSERVATIONS {
            assert!(p_clear >= observation_prob(ObservationId::new(m), EmnState::Null, &cfg));
        }
    }
}
