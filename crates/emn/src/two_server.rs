//! The didactic two-server model of the paper's Figure 1(a).
//!
//! Two redundant servers `a` and `b`; one of them may be faulty. The
//! controller can restart either server (cost 0.5 if it was the faulty
//! one being fixed... no — cost 0.5 for a restart that completes
//! recovery, 1.0 for a wasted step) or just observe. Monitors report
//! which server *appears* to have failed, with tunable noise.

use bpr_core::{Error, RecoveryModel};
use bpr_mdp::{ActionId, MdpBuilder, StateId};
use bpr_pomdp::PomdpBuilder;

/// State index of `Fault(a)`.
pub const FAULT_A: usize = 0;
/// State index of `Fault(b)`.
pub const FAULT_B: usize = 1;
/// State index of the null-fault state.
pub const NULL: usize = 2;

/// Action index of `Restart(a)`.
pub const RESTART_A: usize = 0;
/// Action index of `Restart(b)`.
pub const RESTART_B: usize = 1;
/// Action index of `Observe`.
pub const OBSERVE: usize = 2;

/// Observation index of "a appears to have failed".
pub const OBS_A_FAILED: usize = 0;
/// Observation index of "b appears to have failed".
pub const OBS_B_FAILED: usize = 1;
/// Observation index of "all clear".
pub const OBS_CLEAR: usize = 2;

/// Monitor accuracy of the two-server model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoServerConfig {
    /// Probability the monitor blames the right server when one is
    /// faulty.
    pub accuracy: f64,
    /// Probability of a false alarm ("x appears failed") when the
    /// system is healthy; split evenly between the two servers.
    pub false_alarm: f64,
}

impl Default for TwoServerConfig {
    fn default() -> TwoServerConfig {
        TwoServerConfig {
            accuracy: 0.85,
            false_alarm: 0.04,
        }
    }
}

/// Builds the Figure 1(a) recovery model.
///
/// Restarting the faulty server recovers the system at cost 0.5; any
/// other restart wastes a step at cost 1.0 (0.5 in the null state);
/// observing costs 1.0 in a faulty state and nothing when healthy.
/// Cost rates (used for termination rewards) are 1 per unit time in a
/// fault state.
///
/// # Errors
///
/// Propagates model-validation failures for out-of-range
/// configurations (e.g. `accuracy` so low that observation rows stop
/// being distributions).
pub fn model(config: &TwoServerConfig) -> Result<RecoveryModel, Error> {
    if !(0.0..=1.0).contains(&config.accuracy) || !(0.0..=1.0).contains(&config.false_alarm) {
        return Err(Error::InvalidInput {
            detail: "two-server monitor parameters must be probabilities".into(),
        });
    }
    let mut mb = MdpBuilder::new(3, 3);
    mb.state_label(FAULT_A, "Fault(a)")
        .state_label(FAULT_B, "Fault(b)")
        .state_label(NULL, "Null");
    mb.action_label(RESTART_A, "Restart(a)")
        .action_label(RESTART_B, "Restart(b)")
        .action_label(OBSERVE, "Observe");
    mb.transition(FAULT_A, RESTART_A, NULL, 1.0)
        .reward(FAULT_A, RESTART_A, -0.5);
    mb.transition(FAULT_B, RESTART_A, FAULT_B, 1.0)
        .reward(FAULT_B, RESTART_A, -1.0);
    mb.transition(NULL, RESTART_A, NULL, 1.0)
        .reward(NULL, RESTART_A, -0.5);
    mb.transition(FAULT_A, RESTART_B, FAULT_A, 1.0)
        .reward(FAULT_A, RESTART_B, -1.0);
    mb.transition(FAULT_B, RESTART_B, NULL, 1.0)
        .reward(FAULT_B, RESTART_B, -0.5);
    mb.transition(NULL, RESTART_B, NULL, 1.0)
        .reward(NULL, RESTART_B, -0.5);
    mb.transition(FAULT_A, OBSERVE, FAULT_A, 1.0)
        .reward(FAULT_A, OBSERVE, -1.0);
    mb.transition(FAULT_B, OBSERVE, FAULT_B, 1.0)
        .reward(FAULT_B, OBSERVE, -1.0);
    mb.transition(NULL, OBSERVE, NULL, 1.0)
        .reward(NULL, OBSERVE, 0.0);

    let acc = config.accuracy;
    let miss = 1.0 - acc;
    let fa = config.false_alarm;
    let mut pb = PomdpBuilder::new(mb.build().map_err(Error::Mdp)?, 3);
    pb.observation_label(OBS_A_FAILED, "a-appears-failed")
        .observation_label(OBS_B_FAILED, "b-appears-failed")
        .observation_label(OBS_CLEAR, "all-clear");
    for a in 0..3 {
        // In Fault(a): blame a with prob acc, blame b or miss with the
        // remainder split 1:2 toward a clean bill.
        pb.observation(FAULT_A, a, OBS_A_FAILED, acc)
            .observation(FAULT_A, a, OBS_B_FAILED, miss / 3.0)
            .observation(FAULT_A, a, OBS_CLEAR, 2.0 * miss / 3.0);
        pb.observation(FAULT_B, a, OBS_B_FAILED, acc)
            .observation(FAULT_B, a, OBS_A_FAILED, miss / 3.0)
            .observation(FAULT_B, a, OBS_CLEAR, 2.0 * miss / 3.0);
        pb.observation(NULL, a, OBS_A_FAILED, fa / 2.0)
            .observation(NULL, a, OBS_B_FAILED, fa / 2.0)
            .observation(NULL, a, OBS_CLEAR, 1.0 - fa);
    }
    RecoveryModel::new(
        pb.build().map_err(Error::Pomdp)?,
        vec![StateId::new(NULL)],
        vec![-1.0, -1.0, 0.0],
        vec![ActionId::new(OBSERVE)],
    )
}

/// Convenience constructor with the default monitor parameters.
///
/// # Errors
///
/// Never fails for the default configuration; the `Result` mirrors
/// [`model`].
pub fn default_model() -> Result<RecoveryModel, Error> {
    model(&TwoServerConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_valid() {
        let m = default_model().unwrap();
        assert_eq!(m.base().n_states(), 3);
        assert_eq!(m.base().n_actions(), 3);
        assert_eq!(m.base().n_observations(), 3);
        assert_eq!(m.null_states(), &[StateId::new(NULL)]);
        assert!(m.is_observe(ActionId::new(OBSERVE)));
    }

    #[test]
    fn restart_semantics_match_figure_1a() {
        let m = default_model().unwrap();
        let p = m.base().mdp();
        assert_eq!(p.transition_prob(FAULT_A, RESTART_A, NULL), 1.0);
        assert_eq!(p.reward(FAULT_A, RESTART_A), -0.5);
        assert_eq!(p.transition_prob(FAULT_A, RESTART_B, FAULT_A), 1.0);
        assert_eq!(p.reward(FAULT_A, RESTART_B), -1.0);
        assert_eq!(p.reward(NULL, OBSERVE), 0.0);
    }

    #[test]
    fn recovery_actions_are_the_matching_restarts() {
        let m = default_model().unwrap();
        assert_eq!(
            m.cheapest_recovery_action(StateId::new(FAULT_A)),
            Some(ActionId::new(RESTART_A))
        );
        assert_eq!(
            m.cheapest_recovery_action(StateId::new(FAULT_B)),
            Some(ActionId::new(RESTART_B))
        );
    }

    #[test]
    fn invalid_config_is_rejected() {
        assert!(model(&TwoServerConfig {
            accuracy: 1.5,
            false_alarm: 0.0
        })
        .is_err());
        assert!(model(&TwoServerConfig {
            accuracy: 0.9,
            false_alarm: -0.1
        })
        .is_err());
    }

    #[test]
    fn transforms_apply() {
        let m = default_model().unwrap();
        assert!(m.with_notification().is_ok());
        let t = m.without_notification(100.0).unwrap();
        assert_eq!(t.pomdp().n_states(), 4);
        assert_eq!(t.pomdp().mdp().reward(FAULT_A, 3), -100.0);
    }
}
