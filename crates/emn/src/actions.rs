//! The recovery actions of the EMN model and their durations (§5).

use crate::faults::EmnState;
use crate::topology::{Component, Host};
use bpr_mdp::ActionId;
use std::fmt;

/// A recovery or monitoring action available to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EmnAction {
    /// Restart a single software component.
    Restart(Component),
    /// Reboot a host (fixing every component on it).
    Reboot(Host),
    /// Passively run the monitors.
    Observe,
}

/// Number of actions in the EMN model.
pub const N_ACTIONS: usize = 9;

impl EmnAction {
    /// All actions in canonical index order: 5 restarts, 3 reboots,
    /// observe.
    pub fn all() -> Vec<EmnAction> {
        let mut v = Vec::with_capacity(N_ACTIONS);
        v.extend(Component::ALL.into_iter().map(EmnAction::Restart));
        v.extend(Host::ALL.into_iter().map(EmnAction::Reboot));
        v.push(EmnAction::Observe);
        v
    }

    /// The canonical action index (the [`ActionId`] in the POMDP).
    pub fn index(self) -> usize {
        match self {
            EmnAction::Restart(c) => c.index(),
            EmnAction::Reboot(h) => 5 + h.index(),
            EmnAction::Observe => 8,
        }
    }

    /// The action id in the generated POMDP.
    pub fn action_id(self) -> ActionId {
        ActionId::new(self.index())
    }

    /// Decodes a canonical index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= N_ACTIONS`.
    pub fn from_index(index: usize) -> EmnAction {
        match index {
            0..=4 => EmnAction::Restart(Component::from_index(index)),
            5..=7 => EmnAction::Reboot(Host::from_index(index - 5)),
            8 => EmnAction::Observe,
            _ => panic!("EMN action index {index} out of bounds (< {N_ACTIONS})"),
        }
    }

    /// The components made unavailable *by executing* this action
    /// (restarting or rebooting takes them offline for the duration).
    pub fn components_taken_down(self) -> Vec<Component> {
        match self {
            EmnAction::Restart(c) => vec![c],
            EmnAction::Reboot(h) => h.components(),
            EmnAction::Observe => Vec::new(),
        }
    }

    /// The deterministic successor state: recovery actions fix exactly
    /// the faults they cover (paper §5: "recovery actions are assumed
    /// to be deterministic").
    pub fn apply(self, state: EmnState) -> EmnState {
        match (self, state) {
            (EmnAction::Restart(c), EmnState::Crash(x)) if x == c => EmnState::Null,
            (EmnAction::Restart(c), EmnState::Zombie(x)) if x == c => EmnState::Null,
            (EmnAction::Reboot(h), EmnState::HostCrash(x)) if x == h => EmnState::Null,
            (EmnAction::Reboot(h), EmnState::Crash(c)) if c.host() == h => EmnState::Null,
            (EmnAction::Reboot(h), EmnState::Zombie(c)) if c.host() == h => EmnState::Null,
            _ => state,
        }
    }
}

impl fmt::Display for EmnAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmnAction::Restart(c) => write!(f, "Restart({c})"),
            EmnAction::Reboot(h) => write!(f, "Reboot({h})"),
            EmnAction::Observe => write!(f, "Observe"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_actions_roundtrip() {
        let all = EmnAction::all();
        assert_eq!(all.len(), N_ACTIONS);
        for (i, a) in all.iter().enumerate() {
            assert_eq!(a.index(), i);
            assert_eq!(EmnAction::from_index(i), *a);
            assert_eq!(a.action_id().index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn decoding_past_the_end_panics() {
        EmnAction::from_index(9);
    }

    #[test]
    fn restart_fixes_matching_crash_and_zombie() {
        let a = EmnAction::Restart(Component::Server1);
        assert_eq!(a.apply(EmnState::Crash(Component::Server1)), EmnState::Null);
        assert_eq!(
            a.apply(EmnState::Zombie(Component::Server1)),
            EmnState::Null
        );
        // Wrong component: no effect.
        assert_eq!(
            a.apply(EmnState::Crash(Component::Server2)),
            EmnState::Crash(Component::Server2)
        );
        // Restart cannot fix a host crash.
        assert_eq!(
            EmnAction::Restart(Component::Server2).apply(EmnState::HostCrash(Host::C)),
            EmnState::HostCrash(Host::C)
        );
    }

    #[test]
    fn reboot_fixes_host_and_hosted_component_faults() {
        let a = EmnAction::Reboot(Host::C);
        assert_eq!(a.apply(EmnState::HostCrash(Host::C)), EmnState::Null);
        assert_eq!(
            a.apply(EmnState::Crash(Component::Database)),
            EmnState::Null
        );
        assert_eq!(
            a.apply(EmnState::Zombie(Component::Server2)),
            EmnState::Null
        );
        assert_eq!(
            a.apply(EmnState::Zombie(Component::Server1)),
            EmnState::Zombie(Component::Server1)
        );
    }

    #[test]
    fn observe_changes_nothing() {
        for s in EmnState::all() {
            assert_eq!(EmnAction::Observe.apply(s), s);
        }
        assert!(EmnAction::Observe.components_taken_down().is_empty());
    }

    #[test]
    fn null_is_a_fixed_point_of_every_action() {
        for a in EmnAction::all() {
            assert_eq!(a.apply(EmnState::Null), EmnState::Null);
        }
    }

    #[test]
    fn actions_take_components_down_while_running() {
        assert_eq!(
            EmnAction::Restart(Component::Database).components_taken_down(),
            vec![Component::Database]
        );
        assert_eq!(
            EmnAction::Reboot(Host::A).components_taken_down(),
            vec![Component::HttpGateway, Component::VoiceGateway]
        );
    }

    #[test]
    fn display_labels() {
        assert_eq!(
            EmnAction::Restart(Component::HttpGateway).to_string(),
            "Restart(HG)"
        );
        assert_eq!(EmnAction::Reboot(Host::B).to_string(), "Reboot(hostB)");
        assert_eq!(EmnAction::Observe.to_string(), "Observe");
    }

    #[test]
    fn every_fault_has_a_fixing_action() {
        for s in EmnState::faults() {
            assert!(
                EmnAction::all()
                    .iter()
                    .any(|a| a.apply(s) == EmnState::Null),
                "no action fixes {s}"
            );
        }
    }
}
