//! Request-level workload description used by the discrete-event
//! validation harness in `bpr-sim`.
//!
//! The POMDP model abstracts traffic into per-state *drop fractions*
//! (see [`crate::topology::drop_fraction`]). This module exposes the
//! underlying request-routing semantics so a discrete-event simulation
//! can generate individual requests, route them through the topology,
//! and verify that the empirical drop rate matches the analytic rate
//! the model uses — the substitution check for the paper's production
//! traffic, documented in `DESIGN.md`.

use crate::faults::EmnState;
use crate::topology::{Component, Protocol};
use rand::Rng;

/// A single synthetic request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Which protocol class the request belongs to.
    pub protocol: Protocol,
    /// Arrival time in seconds since the epoch of the simulation.
    pub arrival: f64,
}

/// A Poisson-ish open workload: exponential inter-arrivals with the
/// given rate and an HTTP/voice mix.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Mean arrivals per second.
    pub arrival_rate: f64,
    /// Fraction of requests that are HTTP.
    pub http_share: f64,
}

impl Default for Workload {
    fn default() -> Workload {
        Workload {
            arrival_rate: 100.0,
            http_share: 0.8,
        }
    }
}

impl Workload {
    /// Samples the next request after `now`.
    pub fn next_request<R: Rng + ?Sized>(&self, rng: &mut R, now: f64) -> Request {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let gap = -u.ln() / self.arrival_rate;
        let protocol = if rng.gen::<f64>() < self.http_share {
            Protocol::Http
        } else {
            Protocol::Voice
        };
        Request {
            protocol,
            arrival: now + gap,
        }
    }
}

/// Samples the path a request takes: `gateway → S_i → DB` with the EMN
/// server drawn 50/50 (the paper's "path diversity").
pub fn sample_path<R: Rng + ?Sized>(rng: &mut R, protocol: Protocol) -> [Component; 3] {
    let server = if rng.gen::<f64>() < 0.5 {
        Component::Server1
    } else {
        Component::Server2
    };
    [protocol.gateway(), server, Component::Database]
}

/// Whether a request traversing `path` succeeds in system state
/// `state`: every component on the path must be up (zombies fail the
/// requests routed to them).
pub fn path_ok(state: EmnState, path: &[Component]) -> bool {
    path.iter().all(|&c| !state.is_down(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::drop_fraction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn workload_generates_increasing_arrivals() {
        let w = Workload::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut now = 0.0;
        for _ in 0..100 {
            let r = w.next_request(&mut rng, now);
            assert!(r.arrival > now);
            now = r.arrival;
        }
    }

    #[test]
    fn mix_approximates_http_share() {
        let w = Workload {
            arrival_rate: 10.0,
            http_share: 0.8,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let http = (0..n)
            .filter(|_| w.next_request(&mut rng, 0.0).protocol == Protocol::Http)
            .count();
        let share = http as f64 / n as f64;
        assert!((share - 0.8).abs() < 0.02, "share = {share}");
    }

    #[test]
    fn paths_start_at_the_gateway_and_end_at_the_db() {
        let mut rng = StdRng::seed_from_u64(3);
        for p in Protocol::ALL {
            let path = sample_path(&mut rng, p);
            assert_eq!(path[0], p.gateway());
            assert_eq!(path[2], Component::Database);
            assert!(matches!(path[1], Component::Server1 | Component::Server2));
        }
    }

    #[test]
    fn empirical_drop_rate_matches_analytic_drop_fraction() {
        // The substitution check: simulate requests one by one and
        // compare against the closed-form drop fraction used by the
        // POMDP rewards.
        let mut rng = StdRng::seed_from_u64(4);
        let w = Workload::default();
        for state in [
            EmnState::Null,
            EmnState::Zombie(Component::Server1),
            EmnState::Crash(Component::Database),
            EmnState::Zombie(Component::HttpGateway),
        ] {
            let n = 40_000;
            let mut dropped = 0usize;
            for _ in 0..n {
                let req = w.next_request(&mut rng, 0.0);
                let path = sample_path(&mut rng, req.protocol);
                if !path_ok(state, &path) {
                    dropped += 1;
                }
            }
            let empirical = dropped as f64 / n as f64;
            let analytic = drop_fraction(w.http_share, |c| state.is_down(c));
            assert!(
                (empirical - analytic).abs() < 0.02,
                "state {state}: empirical {empirical}, analytic {analytic}"
            );
        }
    }
}
