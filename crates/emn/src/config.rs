//! Parameters of the EMN model, defaulting to the paper's setup (§5).

/// How path-monitor probes are routed across the two EMN servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PathRouting {
    /// Each probe draws a server 50/50, like real traffic. Zombie
    /// servers are caught only half the time, and the two server-zombie
    /// states are *observation clones* — only recovery actions separate
    /// them.
    #[default]
    RandomPerProbe,
    /// Fixed disjoint probe routes: the HTTP path monitor always
    /// traverses S1 and the voice path monitor always traverses S2 —
    /// the strongest reading of the paper's "path diversity", giving
    /// direct localisation of server zombies.
    FixedDisjoint,
}

/// Configuration of the generated EMN recovery model.
///
/// The defaults reproduce the paper's experimental setup: action
/// durations of 5 min (host reboot), 4 min (database restart), 2 min
/// (voice gateway restart), 1 min (HTTP gateway / EMN server restart),
/// 5 s monitor sweeps; an 80/20 HTTP/voice traffic mix; and a 6-hour
/// mean operator response time.
///
/// # Examples
///
/// ```
/// use bpr_emn::EmnConfig;
///
/// let config = EmnConfig {
///     operator_response_time: 2.0 * 3600.0, // a well-staffed ops team
///     ..EmnConfig::default()
/// };
/// assert_eq!(config.host_reboot_duration, 300.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmnConfig {
    /// Wall-clock seconds to reboot a host.
    pub host_reboot_duration: f64,
    /// Wall-clock seconds to restart the database.
    pub db_restart_duration: f64,
    /// Wall-clock seconds to restart the voice gateway.
    pub vg_restart_duration: f64,
    /// Wall-clock seconds to restart the HTTP gateway.
    pub hg_restart_duration: f64,
    /// Wall-clock seconds to restart an EMN server.
    pub server_restart_duration: f64,
    /// Wall-clock seconds for one monitor sweep (the Observe action).
    pub monitor_duration: f64,
    /// Fraction of traffic that is HTTP (the rest is voice).
    pub http_share: f64,
    /// Probability a component monitor reports a component that stopped
    /// answering pings.
    pub component_coverage: f64,
    /// Probability a component monitor falsely reports a healthy
    /// (or zombie) component.
    pub component_false_positive: f64,
    /// Probability a path monitor reports a request that traversed a
    /// broken path.
    pub path_coverage: f64,
    /// Probability a path monitor falsely reports a healthy path.
    pub path_false_positive: f64,
    /// The designer-supplied operator response time `t_op` (seconds)
    /// used to derive termination rewards.
    pub operator_response_time: f64,
    /// How path-monitor probes are routed (see [`PathRouting`]).
    pub path_routing: PathRouting,
}

impl Default for EmnConfig {
    fn default() -> EmnConfig {
        EmnConfig {
            host_reboot_duration: 300.0,
            db_restart_duration: 240.0,
            vg_restart_duration: 120.0,
            hg_restart_duration: 60.0,
            server_restart_duration: 60.0,
            monitor_duration: 5.0,
            http_share: 0.8,
            component_coverage: 0.995,
            component_false_positive: 0.001,
            path_coverage: 0.98,
            path_false_positive: 0.002,
            operator_response_time: 6.0 * 3600.0,
            path_routing: PathRouting::default(),
        }
    }
}

impl EmnConfig {
    /// Validates probability and duration ranges.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        let durations = [
            ("host_reboot_duration", self.host_reboot_duration),
            ("db_restart_duration", self.db_restart_duration),
            ("vg_restart_duration", self.vg_restart_duration),
            ("hg_restart_duration", self.hg_restart_duration),
            ("server_restart_duration", self.server_restart_duration),
            ("monitor_duration", self.monitor_duration),
            ("operator_response_time", self.operator_response_time),
        ];
        for (name, d) in durations {
            if !(d.is_finite() && d > 0.0) {
                return Err(format!("{name} must be positive and finite, got {d}"));
            }
        }
        let probs = [
            ("http_share", self.http_share),
            ("component_coverage", self.component_coverage),
            ("component_false_positive", self.component_false_positive),
            ("path_coverage", self.path_coverage),
            ("path_false_positive", self.path_false_positive),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(format!("{name} must be a probability, got {p}"));
            }
        }
        if self.component_false_positive >= self.component_coverage {
            return Err("component monitor false-positive rate must be below coverage".into());
        }
        if self.path_false_positive >= self.path_coverage {
            return Err("path monitor false-positive rate must be below coverage".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = EmnConfig::default();
        assert_eq!(c.host_reboot_duration, 300.0);
        assert_eq!(c.db_restart_duration, 240.0);
        assert_eq!(c.vg_restart_duration, 120.0);
        assert_eq!(c.hg_restart_duration, 60.0);
        assert_eq!(c.server_restart_duration, 60.0);
        assert_eq!(c.monitor_duration, 5.0);
        assert_eq!(c.http_share, 0.8);
        assert_eq!(c.operator_response_time, 21_600.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_durations_are_rejected() {
        let c = EmnConfig {
            monitor_duration: 0.0,
            ..EmnConfig::default()
        };
        assert!(c.validate().is_err());
        let c = EmnConfig {
            monitor_duration: f64::NAN,
            ..EmnConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn invalid_probabilities_are_rejected() {
        let c = EmnConfig {
            http_share: 1.5,
            ..EmnConfig::default()
        };
        assert!(c.validate().is_err());
        let c = EmnConfig {
            path_false_positive: 0.99,
            ..EmnConfig::default()
        };
        assert!(c.validate().is_err(), "fp above coverage must fail");
        let base = EmnConfig::default();
        let c = EmnConfig {
            component_false_positive: base.component_coverage,
            ..base
        };
        assert!(c.validate().is_err());
    }
}
