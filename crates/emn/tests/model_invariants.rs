//! Invariant tests of the generated EMN model across configurations.

use bpr_emn::actions::EmnAction;
use bpr_emn::faults::EmnState;
use bpr_emn::topology::{drop_fraction, Component, Host};
use bpr_emn::{build_model, EmnConfig, PathRouting};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = EmnConfig> {
    (
        10.0f64..600.0, // restart durations base
        0.5f64..0.999,  // http share
        0.9f64..0.999,  // component coverage
        0.0f64..0.05,   // component fp
        0.9f64..0.999,  // path coverage
        0.0f64..0.05,   // path fp
        prop_oneof![
            Just(PathRouting::RandomPerProbe),
            Just(PathRouting::FixedDisjoint)
        ],
    )
        .prop_map(|(base, http, cc, cfp, pc, pfp, routing)| EmnConfig {
            host_reboot_duration: base * 5.0,
            db_restart_duration: base * 4.0,
            vg_restart_duration: base * 2.0,
            hg_restart_duration: base,
            server_restart_duration: base,
            monitor_duration: 5.0,
            http_share: http,
            component_coverage: cc,
            component_false_positive: cfp.min(cc * 0.5),
            path_coverage: pc,
            path_false_positive: pfp.min(pc * 0.5),
            operator_response_time: 3600.0,
            path_routing: routing,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generated_models_always_validate(config in arb_config()) {
        let model = build_model(&config).expect("model builds");
        prop_assert_eq!(model.base().n_states(), 14);
        prop_assert_eq!(model.base().n_actions(), 9);
        prop_assert_eq!(model.base().n_observations(), 128);
        prop_assert!(model.base().mdp().all_rewards_nonpositive());
        // Both transforms apply.
        prop_assert!(model.with_notification().is_ok());
        prop_assert!(model.without_notification(config.operator_response_time).is_ok());
    }

    #[test]
    fn rewards_scale_linearly_with_durations(config in arb_config()) {
        let model = build_model(&config).expect("model builds");
        // r(s, a) = -drop(s, a) * t_a, so |r| <= t_a everywhere.
        for s in EmnState::all() {
            for a in EmnAction::all() {
                let r = model.base().mdp().reward(s.index(), a.index());
                let t = model.base().mdp().duration(a.index());
                prop_assert!(r.abs() <= t + 1e-9, "{s}/{a}: r={r}, t={t}");
            }
        }
    }

    #[test]
    fn observation_rows_are_distributions(config in arb_config()) {
        let model = build_model(&config).expect("model builds");
        let m = model.base().observation_matrix(EmnAction::Observe.action_id());
        for sum in m.row_sums() {
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn worse_faults_cost_at_least_as_much_to_sit_on(config in arb_config()) {
        let model = build_model(&config).expect("model builds");
        let rate = |s: EmnState| -model.rates()[s.index()];
        // DB down kills everything; a single server kills half of it.
        prop_assert!(rate(EmnState::Crash(Component::Database)) >= rate(EmnState::Zombie(Component::Server1)));
        prop_assert!(rate(EmnState::HostCrash(Host::A)) >= rate(EmnState::Zombie(Component::HttpGateway)));
        prop_assert!(rate(EmnState::Null) == 0.0);
        // Rates equal the topology's drop fractions.
        for s in EmnState::all() {
            let expect = drop_fraction(config.http_share, |c| s.is_down(c));
            prop_assert!((rate(s) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn every_fault_is_recoverable_and_null_is_absorbing(config in arb_config()) {
        let model = build_model(&config).expect("model builds");
        for s in EmnState::faults() {
            prop_assert!(!model.recovery_actions_for(s.state_id()).is_empty(), "{s}");
        }
        for a in EmnAction::all() {
            prop_assert_eq!(
                model.base().mdp().transition_prob(0, a.index(), 0),
                1.0
            );
        }
    }
}

#[test]
fn reboot_cost_dominates_matching_restart_cost() {
    // Rebooting a host is never cheaper than restarting the single
    // faulty component on it (same fault fixed, longer outage).
    let model = build_model(&EmnConfig::default()).unwrap();
    let r = |s: EmnState, a: EmnAction| -model.base().mdp().reward(s.index(), a.index());
    for c in Component::ALL {
        let zombie = EmnState::Zombie(c);
        let restart = EmnAction::Restart(c);
        let reboot = EmnAction::Reboot(c.host());
        assert!(
            r(zombie, reboot) >= r(zombie, restart),
            "reboot cheaper than restart for {c}"
        );
    }
}

#[test]
fn fixed_disjoint_routing_changes_only_path_monitors() {
    let random = build_model(&EmnConfig::default()).unwrap();
    let fixed = build_model(&EmnConfig {
        path_routing: PathRouting::FixedDisjoint,
        ..EmnConfig::default()
    })
    .unwrap();
    // Same dynamics and rewards; only q differs.
    for s in 0..14 {
        for a in 0..9 {
            assert_eq!(
                random.base().mdp().reward(s, a),
                fixed.base().mdp().reward(s, a)
            );
        }
    }
    // And q actually differs somewhere (server zombies).
    let s = EmnState::Zombie(Component::Server1).index();
    let differs = (0..128)
        .any(|o| random.base().observation_prob(s, 8, o) != fixed.base().observation_prob(s, 8, o));
    assert!(differs);
}
