//! Durable daemon state: everything needed to resume a serve run
//! bit-identically after a crash.
//!
//! Live incidents are *not* serialised controller-by-controller —
//! each one is a pure function of `(master_seed, incident id,
//! admission rung)`, so the checkpoint stores only that triple plus
//! the decision count, and resume **replays** each survivor from step
//! 0 up to its recorded position. Replay reconstructs the exact
//! controller, belief, world, and RNG state the killed run held, which
//! is what makes the "identical decision sequence across
//! kill/resume" gate hold by construction instead of by serialisation
//! discipline.

use crate::incident::{IncidentRecord, IncidentStatus, RungKind};
use bpr_core::snapshot::{read_snapshot, SnapshotError};
use bpr_mdp::StateId;

/// Container kind tag of serve checkpoints.
pub const SERVE_KIND: &str = "serve";

/// A live incident's resume descriptor (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveIncident {
    /// Incident id (RNG stream index).
    pub id: u64,
    /// Injected fault.
    pub fault: StateId,
    /// Rung the incident was admitted on.
    pub admitted_rung: RungKind,
    /// Decisions made before the checkpoint.
    pub steps: usize,
}

/// The persisted state of a serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCheckpoint {
    /// Hash of the session parameters (seed, config, model shape,
    /// event source); a resume with different parameters is rejected
    /// as [`SnapshotError::Incompatible`].
    pub fingerprint: u64,
    /// Source ticks already consumed.
    pub tick: u64,
    /// Daemon rounds already executed.
    pub rounds: u64,
    /// Next incident id to assign.
    pub next_id: u64,
    /// Events seen so far.
    pub events_seen: u64,
    /// Events shed because the queue was full.
    pub shed_queue_full: u64,
    /// Incidents admitted so far.
    pub admitted: u64,
    /// Overload admissions straight onto the anytime rung.
    pub degraded_admissions: u64,
    /// Escalations into the resilient rung.
    pub escalated_resilient: u64,
    /// Escalations into the anytime rung.
    pub escalated_anytime: u64,
    /// Total decisions so far.
    pub decisions: u64,
    /// Queued-but-not-admitted faults, front first.
    pub queue: Vec<StateId>,
    /// Live incidents to replay.
    pub live: Vec<LiveIncident>,
    /// Closed incident records.
    pub records: Vec<IncidentRecord>,
}

/// Replaces control characters with spaces so panic payloads and error
/// details cannot forge checkpoint lines.
pub(crate) fn sanitize(payload: &str) -> String {
    payload
        .chars()
        .map(|c| if c.is_control() { ' ' } else { c })
        .collect()
}

fn encode_actions(actions: &Option<Vec<i64>>) -> String {
    match actions {
        None => "none".into(),
        Some(seq) => {
            let items: Vec<String> = seq.iter().map(i64::to_string).collect();
            format!("some:{}", items.join(","))
        }
    }
}

fn decode_actions(s: &str) -> Result<Option<Vec<i64>>, SnapshotError> {
    if s == "none" {
        return Ok(None);
    }
    let body = s
        .strip_prefix("some:")
        .ok_or_else(|| SnapshotError::Malformed {
            detail: format!("actions field {s:?}"),
        })?;
    if body.is_empty() {
        return Ok(Some(Vec::new()));
    }
    let seq: Result<Vec<i64>, _> = body.split(',').map(str::parse).collect();
    seq.map(Some).map_err(|_| SnapshotError::Malformed {
        detail: format!("actions field {s:?}"),
    })
}

impl ServeCheckpoint {
    /// Serialises the checkpoint payload (container header excluded).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        out.push_str(&format!("tick {}\n", self.tick));
        out.push_str(&format!("rounds {}\n", self.rounds));
        out.push_str(&format!("next {}\n", self.next_id));
        out.push_str(&format!(
            "counts {} {} {} {} {} {} {}\n",
            self.events_seen,
            self.shed_queue_full,
            self.admitted,
            self.degraded_admissions,
            self.escalated_resilient,
            self.escalated_anytime,
            self.decisions
        ));
        let queue: Vec<String> = self.queue.iter().map(|s| s.index().to_string()).collect();
        out.push_str(&format!("queue {}\n", queue.join(" ")));
        for l in &self.live {
            out.push_str(&format!(
                "live {}\t{}\t{}\t{}\n",
                l.id,
                l.fault.index(),
                l.admitted_rung.as_str(),
                l.steps
            ));
        }
        for r in &self.records {
            out.push_str(&format!(
                "record {}\t{}\t{}\t{}\t{:?}\t{:016x}\t{}\t{}\t{}\t{}\t{}\n",
                r.id,
                r.fault.index(),
                r.status.as_str(),
                r.steps,
                r.cost,
                r.decision_hash,
                r.admitted_rung.as_str(),
                r.final_rung.as_str(),
                r.escalations,
                encode_actions(&r.actions),
                sanitize(&r.detail)
            ));
        }
        out
    }

    /// Parses a payload produced by [`ServeCheckpoint::encode`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] for any structural deviation.
    pub fn decode(payload: &str) -> Result<ServeCheckpoint, SnapshotError> {
        let malformed = |detail: String| SnapshotError::Malformed { detail };
        let mut fingerprint = None;
        let mut tick = None;
        let mut rounds = None;
        let mut next_id = None;
        let mut counts: Option<Vec<u64>> = None;
        let mut queue = None;
        let mut live = Vec::new();
        let mut records = Vec::new();
        for line in payload.lines() {
            let (key, rest) = line
                .split_once(' ')
                .ok_or_else(|| malformed(format!("keyless line {line:?}")))?;
            match key {
                "fingerprint" => {
                    fingerprint = Some(
                        u64::from_str_radix(rest, 16)
                            .map_err(|_| malformed(format!("fingerprint {rest:?}")))?,
                    );
                }
                "tick" => {
                    tick = Some(
                        rest.parse()
                            .map_err(|_| malformed(format!("tick {rest:?}")))?,
                    );
                }
                "rounds" => {
                    rounds = Some(
                        rest.parse()
                            .map_err(|_| malformed(format!("rounds {rest:?}")))?,
                    );
                }
                "next" => {
                    next_id = Some(
                        rest.parse()
                            .map_err(|_| malformed(format!("next {rest:?}")))?,
                    );
                }
                "counts" => {
                    let parsed: Result<Vec<u64>, _> = rest.split(' ').map(str::parse).collect();
                    let parsed = parsed.map_err(|_| malformed(format!("counts {rest:?}")))?;
                    if parsed.len() != 7 {
                        return Err(malformed(format!("counts {rest:?}")));
                    }
                    counts = Some(parsed);
                }
                "queue" => {
                    let parsed: Result<Vec<usize>, _> = rest
                        .split(' ')
                        .filter(|t| !t.is_empty())
                        .map(str::parse)
                        .collect();
                    queue = Some(
                        parsed
                            .map_err(|_| malformed(format!("queue {rest:?}")))?
                            .into_iter()
                            .map(StateId::new)
                            .collect::<Vec<_>>(),
                    );
                }
                "live" => {
                    let fields: Vec<&str> = rest.split('\t').collect();
                    if fields.len() != 4 {
                        return Err(malformed(format!("live {rest:?}")));
                    }
                    live.push(LiveIncident {
                        id: fields[0]
                            .parse()
                            .map_err(|_| malformed(format!("live id {rest:?}")))?,
                        fault: StateId::new(
                            fields[1]
                                .parse()
                                .map_err(|_| malformed(format!("live fault {rest:?}")))?,
                        ),
                        admitted_rung: RungKind::parse(fields[2])?,
                        steps: fields[3]
                            .parse()
                            .map_err(|_| malformed(format!("live steps {rest:?}")))?,
                    });
                }
                "record" => {
                    let fields: Vec<&str> = rest.split('\t').collect();
                    if fields.len() != 11 {
                        return Err(malformed(format!("record {rest:?}")));
                    }
                    records.push(IncidentRecord {
                        id: fields[0]
                            .parse()
                            .map_err(|_| malformed(format!("record id {rest:?}")))?,
                        fault: StateId::new(
                            fields[1]
                                .parse()
                                .map_err(|_| malformed(format!("record fault {rest:?}")))?,
                        ),
                        status: IncidentStatus::parse(fields[2])?,
                        steps: fields[3]
                            .parse()
                            .map_err(|_| malformed(format!("record steps {rest:?}")))?,
                        cost: fields[4]
                            .parse()
                            .map_err(|_| malformed(format!("record cost {rest:?}")))?,
                        decision_hash: u64::from_str_radix(fields[5], 16)
                            .map_err(|_| malformed(format!("record hash {rest:?}")))?,
                        admitted_rung: RungKind::parse(fields[6])?,
                        final_rung: RungKind::parse(fields[7])?,
                        escalations: fields[8]
                            .parse()
                            .map_err(|_| malformed(format!("record escalations {rest:?}")))?,
                        actions: decode_actions(fields[9])?,
                        detail: fields[10].to_string(),
                    });
                }
                _ => return Err(malformed(format!("unknown key {key:?}"))),
            }
        }
        let counts = counts.ok_or_else(|| malformed("missing counts".into()))?;
        Ok(ServeCheckpoint {
            fingerprint: fingerprint.ok_or_else(|| malformed("missing fingerprint".into()))?,
            tick: tick.ok_or_else(|| malformed("missing tick".into()))?,
            rounds: rounds.ok_or_else(|| malformed("missing rounds".into()))?,
            next_id: next_id.ok_or_else(|| malformed("missing next".into()))?,
            events_seen: counts[0],
            shed_queue_full: counts[1],
            admitted: counts[2],
            degraded_admissions: counts[3],
            escalated_resilient: counts[4],
            escalated_anytime: counts[5],
            decisions: counts[6],
            queue: queue.ok_or_else(|| malformed("missing queue".into()))?,
            live,
            records,
        })
    }

    /// Loads and verifies a checkpoint; `Ok(None)` when no snapshot
    /// exists yet.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] describing why the file cannot be
    /// trusted.
    pub fn load(path: &std::path::Path) -> Result<Option<ServeCheckpoint>, SnapshotError> {
        match read_snapshot(path, SERVE_KIND)? {
            None => Ok(None),
            Some(payload) => Ok(Some(ServeCheckpoint::decode(&payload)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeCheckpoint {
        ServeCheckpoint {
            fingerprint: 0xDEAD_BEEF,
            tick: 42,
            rounds: 45,
            next_id: 7,
            events_seen: 100,
            shed_queue_full: 11,
            admitted: 7,
            degraded_admissions: 2,
            escalated_resilient: 3,
            escalated_anytime: 1,
            decisions: 55,
            queue: vec![StateId::new(1), StateId::new(0)],
            live: vec![LiveIncident {
                id: 5,
                fault: StateId::new(1),
                admitted_rung: RungKind::Anytime,
                steps: 9,
            }],
            records: vec![
                IncidentRecord {
                    id: 0,
                    fault: StateId::new(0),
                    status: IncidentStatus::Recovered,
                    steps: 4,
                    cost: 1.5,
                    decision_hash: 0x1234,
                    admitted_rung: RungKind::Bounded,
                    final_rung: RungKind::Bounded,
                    escalations: 0,
                    detail: String::new(),
                    actions: Some(vec![0, 2, -1]),
                },
                IncidentRecord {
                    id: 1,
                    fault: StateId::new(1),
                    status: IncidentStatus::Quarantined,
                    steps: 0,
                    cost: 0.0,
                    decision_hash: 0xABCD,
                    admitted_rung: RungKind::Bounded,
                    final_rung: RungKind::Resilient,
                    escalations: 1,
                    detail: "panic:\tboom\n".into(),
                    actions: None,
                },
            ],
        }
    }

    #[test]
    fn checkpoint_roundtrips() {
        let cp = sample();
        let decoded = ServeCheckpoint::decode(&cp.encode()).unwrap();
        // The panic payload is sanitised on encode, so compare against
        // the sanitised original.
        let mut expected = cp;
        expected.records[1].detail = "panic: boom ".into();
        assert_eq!(decoded, expected);
    }

    #[test]
    fn empty_queue_roundtrips() {
        let mut cp = sample();
        cp.queue.clear();
        cp.live.clear();
        cp.records.clear();
        let decoded = ServeCheckpoint::decode(&cp.encode()).unwrap();
        assert_eq!(decoded, cp);
    }

    #[test]
    fn malformed_payloads_are_typed() {
        assert!(matches!(
            ServeCheckpoint::decode("fingerprint xyz\n"),
            Err(SnapshotError::Malformed { .. })
        ));
        assert!(matches!(
            ServeCheckpoint::decode("nonsense\n"),
            Err(SnapshotError::Malformed { .. })
        ));
        let cp = sample();
        let broken = cp.encode().replace("counts", "mounts");
        assert!(ServeCheckpoint::decode(&broken).is_err());
    }

    #[test]
    fn sanitize_strips_control_characters() {
        assert_eq!(sanitize("a\tb\nc"), "a b c");
        assert_eq!(sanitize("plain"), "plain");
    }
}
