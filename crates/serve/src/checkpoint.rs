//! Durable daemon state: a **manifest plus per-shard incident
//! partitions**, so resume cost scales with live incidents rather
//! than history.
//!
//! Live incidents are *not* serialised controller-by-controller —
//! each one is a pure function of `(master_seed, incident id,
//! admission rung)`, so the checkpoint stores only that triple plus
//! the decision count, and resume **replays** each survivor from step
//! 0 up to its recorded position. Replay reconstructs the exact
//! controller, belief, world, and RNG state the killed run held, which
//! is what makes the "identical decision sequence across
//! kill/resume" gate hold by construction instead of by serialisation
//! discipline.
//!
//! # On-disk layout
//!
//! * **Manifest** (`<base>`, kind `serve-manifest`) — the commit
//!   point, written *last*: counters, the admission queue, every live
//!   incident's identity triple, and a partition table recording each
//!   partition's generation, payload checksum, and contents.
//! * **Partitions** (`<base>.p<k>`, kind `serve-part`) — incident
//!   `id` belongs to partition `id % partitions`. A partition holds
//!   the *growing* state of its incidents: the replay positions of
//!   its live ones and the closed records of its finished ones. Each
//!   is written by atomic rename and chained to the manifest through
//!   `(session fingerprint, generation)` via
//!   [`bpr_core::snapshot::write_partition`]; partitions whose
//!   payload is unchanged since the last checkpoint are *skipped*, so
//!   a steady-state checkpoint rewrites only the partitions with live
//!   incidents — O(live), not O(history).
//!
//! # Failure containment
//!
//! A corrupt, missing, or stale partition degrades **only its own
//! incidents**: its closed records are dropped (counted, typed) and
//! its live incidents are re-admitted fresh from step 0, while every
//! other partition replays exactly. A corrupt manifest degrades the
//! whole checkpoint to a fresh run — exactly the monolithic
//! behaviour, now scoped to the one file that is small and rewritten
//! every checkpoint.

use crate::incident::{IncidentRecord, IncidentStatus, RungKind};
use bpr_core::snapshot::{
    fnv1a64, read_partition, read_snapshot, write_partition, write_snapshot, SnapshotError,
};
use bpr_mdp::StateId;
use std::path::Path;

/// Container kind tag of the checkpoint manifest.
pub const SERVE_MANIFEST_KIND: &str = "serve-manifest";
/// Container kind tag of incident partition files.
pub const SERVE_PARTITION_KIND: &str = "serve-part";

/// A live incident's resume descriptor (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveIncident {
    /// Incident id (RNG stream index).
    pub id: u64,
    /// Injected fault.
    pub fault: StateId,
    /// Rung the incident was admitted on.
    pub admitted_rung: RungKind,
    /// Decisions made before the checkpoint.
    pub steps: usize,
}

/// The logical state of a serve run — what the partitioned files
/// reassemble into on load.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCheckpoint {
    /// Hash of the session parameters (seed, config, model shape,
    /// event source); a resume with different parameters is rejected
    /// as [`SnapshotError::Incompatible`].
    pub fingerprint: u64,
    /// Source ticks already consumed.
    pub tick: u64,
    /// Daemon rounds already executed.
    pub rounds: u64,
    /// Next incident id to assign.
    pub next_id: u64,
    /// Events seen so far.
    pub events_seen: u64,
    /// Events shed because the queue was full.
    pub shed_queue_full: u64,
    /// Incidents admitted so far.
    pub admitted: u64,
    /// Overload admissions straight onto the anytime rung.
    pub degraded_admissions: u64,
    /// Escalations into the resilient rung.
    pub escalated_resilient: u64,
    /// Escalations into the anytime rung.
    pub escalated_anytime: u64,
    /// Total decisions so far.
    pub decisions: u64,
    /// Queued-but-not-admitted faults, front first.
    pub queue: Vec<StateId>,
    /// Live incidents to replay.
    pub live: Vec<LiveIncident>,
    /// Closed incident records.
    pub records: Vec<IncidentRecord>,
}

/// How one partition fared during a load. Only partitions that could
/// **not** be restored produce an outcome; the daemon surfaces them in
/// the report and the accounting (`records_dropped`) keeps the
/// zero-loss invariant checkable.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionOutcome {
    /// Partition index.
    pub partition: u32,
    /// Why the partition could not be trusted.
    pub error: SnapshotError,
    /// Live incidents degraded to fresh admission (replay from 0).
    pub live_degraded: u64,
    /// Closed records lost with the partition.
    pub records_dropped: u64,
}

/// Per-partition `(generation, checksum, live, records)` bookkeeping
/// the writer carries across checkpoints so unchanged partitions are
/// skipped instead of rewritten.
#[derive(Debug, Clone, Default)]
pub struct PartitionCache {
    entries: Vec<Option<PartEntry>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PartEntry {
    generation: u64,
    fnv: u64,
    live: u64,
    records: u64,
}

impl PartitionCache {
    fn resize(&mut self, partitions: u32) {
        self.entries.resize(partitions as usize, None);
    }
}

/// Replaces control characters with spaces so panic payloads and error
/// details cannot forge checkpoint lines.
pub(crate) fn sanitize(payload: &str) -> String {
    payload
        .chars()
        .map(|c| if c.is_control() { ' ' } else { c })
        .collect()
}

fn encode_actions(actions: &Option<Vec<i64>>) -> String {
    match actions {
        None => "none".into(),
        Some(seq) => {
            let items: Vec<String> = seq.iter().map(i64::to_string).collect();
            format!("some:{}", items.join(","))
        }
    }
}

fn decode_actions(s: &str) -> Result<Option<Vec<i64>>, SnapshotError> {
    if s == "none" {
        return Ok(None);
    }
    let body = s
        .strip_prefix("some:")
        .ok_or_else(|| SnapshotError::Malformed {
            detail: format!("actions field {s:?}"),
        })?;
    if body.is_empty() {
        return Ok(Some(Vec::new()));
    }
    let seq: Result<Vec<i64>, _> = body.split(',').map(str::parse).collect();
    seq.map(Some).map_err(|_| SnapshotError::Malformed {
        detail: format!("actions field {s:?}"),
    })
}

fn encode_record(r: &IncidentRecord) -> String {
    format!(
        "record {}\t{}\t{}\t{}\t{:?}\t{:016x}\t{}\t{}\t{}\t{}\t{}\n",
        r.id,
        r.fault.index(),
        r.status.as_str(),
        r.steps,
        r.cost,
        r.decision_hash,
        r.admitted_rung.as_str(),
        r.final_rung.as_str(),
        r.escalations,
        encode_actions(&r.actions),
        sanitize(&r.detail)
    )
}

fn decode_record(rest: &str) -> Result<IncidentRecord, SnapshotError> {
    let malformed = |detail: String| SnapshotError::Malformed { detail };
    let fields: Vec<&str> = rest.split('\t').collect();
    if fields.len() != 11 {
        return Err(malformed(format!("record {rest:?}")));
    }
    Ok(IncidentRecord {
        id: fields[0]
            .parse()
            .map_err(|_| malformed(format!("record id {rest:?}")))?,
        fault: StateId::new(
            fields[1]
                .parse()
                .map_err(|_| malformed(format!("record fault {rest:?}")))?,
        ),
        status: IncidentStatus::parse(fields[2])?,
        steps: fields[3]
            .parse()
            .map_err(|_| malformed(format!("record steps {rest:?}")))?,
        cost: fields[4]
            .parse()
            .map_err(|_| malformed(format!("record cost {rest:?}")))?,
        decision_hash: u64::from_str_radix(fields[5], 16)
            .map_err(|_| malformed(format!("record hash {rest:?}")))?,
        admitted_rung: RungKind::parse(fields[6])?,
        final_rung: RungKind::parse(fields[7])?,
        escalations: fields[8]
            .parse()
            .map_err(|_| malformed(format!("record escalations {rest:?}")))?,
        actions: decode_actions(fields[9])?,
        detail: fields[10].to_string(),
    })
}

impl ServeCheckpoint {
    /// The partition an incident id belongs to.
    fn partition_of(id: u64, partitions: u32) -> u32 {
        (id % u64::from(partitions.max(1))) as u32
    }

    /// Serialises partition `k`: replay positions of its live
    /// incidents plus its closed records. Returns the payload and its
    /// `(live, records)` counts.
    fn partition_payload(&self, k: u32, partitions: u32) -> (String, u64, u64) {
        let mut out = String::new();
        let mut live = 0u64;
        let mut records = 0u64;
        for l in &self.live {
            if Self::partition_of(l.id, partitions) == k {
                out.push_str(&format!("steps {} {}\n", l.id, l.steps));
                live += 1;
            }
        }
        for r in &self.records {
            if Self::partition_of(r.id, partitions) == k {
                out.push_str(&encode_record(r));
                records += 1;
            }
        }
        (out, live, records)
    }

    /// Serialises the manifest payload (container header excluded).
    fn encode_manifest(&self, generation: u64, partitions: u32, cache: &PartitionCache) -> String {
        let mut out = String::new();
        out.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        out.push_str(&format!("generation {generation}\n"));
        out.push_str(&format!("tick {}\n", self.tick));
        out.push_str(&format!("rounds {}\n", self.rounds));
        out.push_str(&format!("next {}\n", self.next_id));
        out.push_str(&format!(
            "counts {} {} {} {} {} {} {}\n",
            self.events_seen,
            self.shed_queue_full,
            self.admitted,
            self.degraded_admissions,
            self.escalated_resilient,
            self.escalated_anytime,
            self.decisions
        ));
        let queue: Vec<String> = self.queue.iter().map(|s| s.index().to_string()).collect();
        out.push_str(&format!("queue {}\n", queue.join(" ")));
        out.push_str(&format!("partitions {partitions}\n"));
        for l in &self.live {
            out.push_str(&format!(
                "live {}\t{}\t{}\n",
                l.id,
                l.fault.index(),
                l.admitted_rung.as_str(),
            ));
        }
        for (k, entry) in cache.entries.iter().enumerate() {
            let e = entry
                .as_ref()
                .expect("every partition is paid out before the manifest");
            out.push_str(&format!(
                "part {k} {} {:016x} {} {}\n",
                e.generation, e.fnv, e.live, e.records
            ));
        }
        out
    }

    /// Writes the checkpoint: changed partitions first (each by
    /// atomic rename, chained to `(fingerprint, generation)`), the
    /// manifest last as the commit point. `cache` carries partition
    /// checksums across calls so unchanged partitions are skipped.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] from any underlying write. Partitions
    /// already written before the failure are consistent on disk and
    /// will be skipped by a retry.
    pub fn save_partitioned(
        &self,
        base: &Path,
        partitions: u32,
        generation: u64,
        cache: &mut PartitionCache,
    ) -> Result<(), SnapshotError> {
        let partitions = partitions.max(1);
        cache.resize(partitions);
        for k in 0..partitions {
            let (payload, live, records) = self.partition_payload(k, partitions);
            let fnv = fnv1a64(payload.as_bytes());
            let entry = &mut cache.entries[k as usize];
            let unchanged = entry.as_ref().is_some_and(|e| e.fnv == fnv);
            if unchanged {
                // Content identical to what is already on disk — keep
                // the old generation, skip the write.
                let e = entry.as_mut().expect("unchanged implies present");
                e.live = live;
                e.records = records;
                continue;
            }
            if !payload.is_empty() || entry.is_some() {
                write_partition(
                    base,
                    &format!("p{k}"),
                    SERVE_PARTITION_KIND,
                    self.fingerprint,
                    generation,
                    &payload,
                )?;
            }
            // An empty, never-written partition gets a table entry but
            // no file; the loader skips empty entries.
            *entry = Some(PartEntry {
                generation,
                fnv,
                live,
                records,
            });
        }
        write_snapshot(
            base,
            SERVE_MANIFEST_KIND,
            &self.encode_manifest(generation, partitions, cache),
        )
    }

    /// Loads a partitioned checkpoint: the manifest plus every
    /// partition it references. Returns `Ok(None)` when no manifest
    /// exists yet.
    ///
    /// A partition that is missing, corrupt, checksum-divergent, or
    /// chained to the wrong generation is **degraded, not fatal**: its
    /// closed records are dropped and its live incidents come back
    /// with `steps = 0` (fresh admission), each failure reported as a
    /// typed [`PartitionOutcome`]. The returned generation seeds the
    /// resumed writer's generation counter.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] for an unreadable *manifest* — the
    /// commit point itself cannot be trusted, so the whole checkpoint
    /// degrades to a fresh run.
    pub fn load_partitioned(
        base: &Path,
    ) -> Result<Option<(ServeCheckpoint, u64, Vec<PartitionOutcome>)>, SnapshotError> {
        let malformed = |detail: String| SnapshotError::Malformed { detail };
        let Some(payload) = read_snapshot(base, SERVE_MANIFEST_KIND)? else {
            return Ok(None);
        };
        let mut fingerprint = None;
        let mut generation = None;
        let mut tick = None;
        let mut rounds = None;
        let mut next_id = None;
        let mut counts: Option<Vec<u64>> = None;
        let mut queue = None;
        let mut partitions: Option<u32> = None;
        let mut live: Vec<LiveIncident> = Vec::new();
        let mut parts: Vec<(u32, PartEntry)> = Vec::new();
        for line in payload.lines() {
            let (key, rest) = line
                .split_once(' ')
                .ok_or_else(|| malformed(format!("keyless line {line:?}")))?;
            match key {
                "fingerprint" => {
                    fingerprint = Some(
                        u64::from_str_radix(rest, 16)
                            .map_err(|_| malformed(format!("fingerprint {rest:?}")))?,
                    );
                }
                "generation" => {
                    generation = Some(
                        rest.parse()
                            .map_err(|_| malformed(format!("generation {rest:?}")))?,
                    );
                }
                "tick" => {
                    tick = Some(
                        rest.parse()
                            .map_err(|_| malformed(format!("tick {rest:?}")))?,
                    );
                }
                "rounds" => {
                    rounds = Some(
                        rest.parse()
                            .map_err(|_| malformed(format!("rounds {rest:?}")))?,
                    );
                }
                "next" => {
                    next_id = Some(
                        rest.parse()
                            .map_err(|_| malformed(format!("next {rest:?}")))?,
                    );
                }
                "counts" => {
                    let parsed: Result<Vec<u64>, _> = rest.split(' ').map(str::parse).collect();
                    let parsed = parsed.map_err(|_| malformed(format!("counts {rest:?}")))?;
                    if parsed.len() != 7 {
                        return Err(malformed(format!("counts {rest:?}")));
                    }
                    counts = Some(parsed);
                }
                "queue" => {
                    let parsed: Result<Vec<usize>, _> = rest
                        .split(' ')
                        .filter(|t| !t.is_empty())
                        .map(str::parse)
                        .collect();
                    queue = Some(
                        parsed
                            .map_err(|_| malformed(format!("queue {rest:?}")))?
                            .into_iter()
                            .map(StateId::new)
                            .collect::<Vec<_>>(),
                    );
                }
                "partitions" => {
                    partitions = Some(
                        rest.parse()
                            .map_err(|_| malformed(format!("partitions {rest:?}")))?,
                    );
                }
                "live" => {
                    let fields: Vec<&str> = rest.split('\t').collect();
                    if fields.len() != 3 {
                        return Err(malformed(format!("live {rest:?}")));
                    }
                    live.push(LiveIncident {
                        id: fields[0]
                            .parse()
                            .map_err(|_| malformed(format!("live id {rest:?}")))?,
                        fault: StateId::new(
                            fields[1]
                                .parse()
                                .map_err(|_| malformed(format!("live fault {rest:?}")))?,
                        ),
                        admitted_rung: RungKind::parse(fields[2])?,
                        steps: 0,
                    });
                }
                "part" => {
                    let fields: Vec<&str> = rest.split(' ').collect();
                    if fields.len() != 5 {
                        return Err(malformed(format!("part {rest:?}")));
                    }
                    parts.push((
                        fields[0]
                            .parse()
                            .map_err(|_| malformed(format!("part index {rest:?}")))?,
                        PartEntry {
                            generation: fields[1]
                                .parse()
                                .map_err(|_| malformed(format!("part generation {rest:?}")))?,
                            fnv: u64::from_str_radix(fields[2], 16)
                                .map_err(|_| malformed(format!("part fnv {rest:?}")))?,
                            live: fields[3]
                                .parse()
                                .map_err(|_| malformed(format!("part live {rest:?}")))?,
                            records: fields[4]
                                .parse()
                                .map_err(|_| malformed(format!("part records {rest:?}")))?,
                        },
                    ));
                }
                _ => return Err(malformed(format!("unknown key {key:?}"))),
            }
        }
        let counts = counts.ok_or_else(|| malformed("missing counts".into()))?;
        let fingerprint = fingerprint.ok_or_else(|| malformed("missing fingerprint".into()))?;
        let generation = generation.ok_or_else(|| malformed("missing generation".into()))?;
        let n_partitions = partitions.ok_or_else(|| malformed("missing partitions".into()))?;

        let mut records = Vec::new();
        let mut outcomes = Vec::new();
        for (k, entry) in parts {
            if entry.live == 0 && entry.records == 0 {
                continue;
            }
            let loaded = read_partition(
                base,
                &format!("p{k}"),
                SERVE_PARTITION_KIND,
                fingerprint,
                entry.generation,
            )
            .and_then(|p| {
                p.ok_or_else(|| SnapshotError::Io {
                    detail: format!("partition p{k} is missing"),
                })
            })
            .and_then(|p| {
                let actual = fnv1a64(p.as_bytes());
                if actual == entry.fnv {
                    Ok(p)
                } else {
                    Err(SnapshotError::ChecksumMismatch {
                        expected: entry.fnv,
                        actual,
                    })
                }
            })
            .and_then(|p| parse_partition(&p));
            match loaded {
                Ok((steps, mut recs)) => {
                    for (id, s) in steps {
                        if let Some(l) = live.iter_mut().find(|l| l.id == id) {
                            l.steps = s;
                        }
                    }
                    records.append(&mut recs);
                }
                Err(error) => {
                    // Degrade only this partition: its records are
                    // gone (counted below) and its live incidents keep
                    // steps = 0 — fresh admission.
                    let live_degraded = live
                        .iter()
                        .filter(|l| Self::partition_of(l.id, n_partitions) == k)
                        .count() as u64;
                    outcomes.push(PartitionOutcome {
                        partition: k,
                        error,
                        live_degraded,
                        records_dropped: entry.records,
                    });
                }
            }
        }
        records.sort_by_key(|r: &IncidentRecord| r.id);
        Ok(Some((
            ServeCheckpoint {
                fingerprint,
                tick: tick.ok_or_else(|| malformed("missing tick".into()))?,
                rounds: rounds.ok_or_else(|| malformed("missing rounds".into()))?,
                next_id: next_id.ok_or_else(|| malformed("missing next".into()))?,
                events_seen: counts[0],
                shed_queue_full: counts[1],
                admitted: counts[2],
                degraded_admissions: counts[3],
                escalated_resilient: counts[4],
                escalated_anytime: counts[5],
                decisions: counts[6],
                queue: queue.ok_or_else(|| malformed("missing queue".into()))?,
                live,
                records,
            },
            generation,
            outcomes,
        )))
    }
}

/// Live replay positions (`(incident id, steps)`) plus closed records
/// — the contents of one partition file.
type PartitionContents = (Vec<(u64, usize)>, Vec<IncidentRecord>);

/// Parses a partition payload into `(live replay positions, records)`.
fn parse_partition(payload: &str) -> Result<PartitionContents, SnapshotError> {
    let malformed = |detail: String| SnapshotError::Malformed { detail };
    let mut steps = Vec::new();
    let mut records = Vec::new();
    for line in payload.lines() {
        let (key, rest) = line
            .split_once(' ')
            .ok_or_else(|| malformed(format!("keyless partition line {line:?}")))?;
        match key {
            "steps" => {
                let (id, s) = rest
                    .split_once(' ')
                    .ok_or_else(|| malformed(format!("steps {rest:?}")))?;
                steps.push((
                    id.parse()
                        .map_err(|_| malformed(format!("steps id {rest:?}")))?,
                    s.parse()
                        .map_err(|_| malformed(format!("steps count {rest:?}")))?,
                ));
            }
            "record" => records.push(decode_record(rest)?),
            _ => return Err(malformed(format!("unknown partition key {key:?}"))),
        }
    }
    Ok((steps, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpr_core::snapshot::partition_path;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bpr_serve_cp_{}_{name}", std::process::id()))
    }

    fn cleanup(base: &Path, partitions: u32) {
        let _ = std::fs::remove_file(base);
        for k in 0..partitions {
            let _ = std::fs::remove_file(partition_path(base, &format!("p{k}")));
        }
    }

    fn sample() -> ServeCheckpoint {
        ServeCheckpoint {
            fingerprint: 0xDEAD_BEEF,
            tick: 42,
            rounds: 45,
            next_id: 7,
            events_seen: 100,
            shed_queue_full: 11,
            admitted: 7,
            degraded_admissions: 2,
            escalated_resilient: 3,
            escalated_anytime: 1,
            decisions: 55,
            queue: vec![StateId::new(1), StateId::new(0)],
            live: vec![
                LiveIncident {
                    id: 5,
                    fault: StateId::new(1),
                    admitted_rung: RungKind::Anytime,
                    steps: 9,
                },
                LiveIncident {
                    id: 6,
                    fault: StateId::new(0),
                    admitted_rung: RungKind::Bounded,
                    steps: 2,
                },
            ],
            records: vec![
                IncidentRecord {
                    id: 0,
                    fault: StateId::new(0),
                    status: IncidentStatus::Recovered,
                    steps: 4,
                    cost: 1.5,
                    decision_hash: 0x1234,
                    admitted_rung: RungKind::Bounded,
                    final_rung: RungKind::Bounded,
                    escalations: 0,
                    detail: String::new(),
                    actions: Some(vec![0, 2, -1]),
                },
                IncidentRecord {
                    id: 1,
                    fault: StateId::new(1),
                    status: IncidentStatus::Quarantined,
                    steps: 0,
                    cost: 0.0,
                    decision_hash: 0xABCD,
                    admitted_rung: RungKind::Bounded,
                    final_rung: RungKind::Resilient,
                    escalations: 1,
                    detail: "panic: boom ".into(),
                    actions: None,
                },
            ],
        }
    }

    #[test]
    fn partitioned_checkpoint_roundtrips() {
        for partitions in [1u32, 3, 8] {
            let base = scratch(&format!("roundtrip{partitions}"));
            cleanup(&base, partitions);
            let cp = sample();
            let mut cache = PartitionCache::default();
            cp.save_partitioned(&base, partitions, 1, &mut cache)
                .unwrap();
            let (loaded, generation, outcomes) =
                ServeCheckpoint::load_partitioned(&base).unwrap().unwrap();
            assert_eq!(generation, 1);
            assert!(outcomes.is_empty(), "{outcomes:?}");
            assert_eq!(loaded, cp, "partitions = {partitions}");
            cleanup(&base, partitions);
        }
    }

    #[test]
    fn control_characters_in_details_are_sanitized_on_write() {
        let base = scratch("sanitize");
        cleanup(&base, 2);
        let mut cp = sample();
        cp.records[1].detail = "panic:\tboom\n".into();
        let mut cache = PartitionCache::default();
        cp.save_partitioned(&base, 2, 1, &mut cache).unwrap();
        let (loaded, _, _) = ServeCheckpoint::load_partitioned(&base).unwrap().unwrap();
        assert_eq!(loaded.records[1].detail, "panic: boom ");
        cleanup(&base, 2);
    }

    #[test]
    fn unchanged_partitions_are_skipped_on_rewrite() {
        let base = scratch("skip");
        cleanup(&base, 4);
        let mut cp = sample();
        let mut cache = PartitionCache::default();
        cp.save_partitioned(&base, 4, 1, &mut cache).unwrap();
        // Only incident 5 (partition 1) advances; partitions 0, 2, 3
        // are untouched and must not be rewritten.
        let before: Vec<Option<std::time::SystemTime>> = (0..4)
            .map(|k| {
                std::fs::metadata(partition_path(&base, &format!("p{k}")))
                    .ok()
                    .and_then(|m| m.modified().ok())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        cp.live[0].steps = 10;
        cp.save_partitioned(&base, 4, 2, &mut cache).unwrap();
        let after: Vec<Option<std::time::SystemTime>> = (0..4)
            .map(|k| {
                std::fs::metadata(partition_path(&base, &format!("p{k}")))
                    .ok()
                    .and_then(|m| m.modified().ok())
            })
            .collect();
        assert_ne!(before[1], after[1], "dirty partition rewritten");
        for k in [0usize, 2, 3] {
            assert_eq!(before[k], after[k], "clean partition p{k} rewritten");
        }
        // The mixed-generation checkpoint still loads exactly.
        let (loaded, generation, outcomes) =
            ServeCheckpoint::load_partitioned(&base).unwrap().unwrap();
        assert_eq!(generation, 2);
        assert!(outcomes.is_empty());
        assert_eq!(loaded, cp);
        cleanup(&base, 4);
    }

    #[test]
    fn corrupt_partition_degrades_only_its_incidents() {
        let base = scratch("degrade");
        cleanup(&base, 2);
        let cp = sample();
        let mut cache = PartitionCache::default();
        cp.save_partitioned(&base, 2, 1, &mut cache).unwrap();
        // Flip a byte in partition 1 (incidents 1 and 5).
        let p1 = partition_path(&base, "p1");
        let mut bytes = std::fs::read(&p1).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20;
        std::fs::write(&p1, &bytes).unwrap();

        let (loaded, _, outcomes) = ServeCheckpoint::load_partitioned(&base).unwrap().unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].partition, 1);
        assert_eq!(outcomes[0].live_degraded, 1, "incident 5 degraded");
        assert_eq!(outcomes[0].records_dropped, 1, "record 1 dropped");
        assert!(matches!(
            outcomes[0].error,
            SnapshotError::ChecksumMismatch { .. }
        ));
        // Partition 0 replays exactly; partition 1's survivor is fresh.
        assert_eq!(loaded.records.len(), 1);
        assert_eq!(loaded.records[0].id, 0);
        let i5 = loaded.live.iter().find(|l| l.id == 5).unwrap();
        assert_eq!(i5.steps, 0, "degraded to fresh admission");
        assert_eq!(i5.fault, StateId::new(1), "identity survives in manifest");
        let i6 = loaded.live.iter().find(|l| l.id == 6).unwrap();
        assert_eq!(i6.steps, 2, "healthy partition replays exactly");
        cleanup(&base, 2);
    }

    #[test]
    fn missing_partition_is_degraded_not_fatal() {
        let base = scratch("missing_part");
        cleanup(&base, 2);
        let cp = sample();
        let mut cache = PartitionCache::default();
        cp.save_partitioned(&base, 2, 1, &mut cache).unwrap();
        std::fs::remove_file(partition_path(&base, "p0")).unwrap();
        let (loaded, _, outcomes) = ServeCheckpoint::load_partitioned(&base).unwrap().unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].partition, 0);
        assert_eq!(outcomes[0].records_dropped, 1);
        assert_eq!(loaded.live.iter().find(|l| l.id == 6).unwrap().steps, 0);
        assert_eq!(loaded.live.iter().find(|l| l.id == 5).unwrap().steps, 9);
        cleanup(&base, 2);
    }

    #[test]
    fn stale_partition_from_an_earlier_generation_is_rejected() {
        let base = scratch("stale_gen");
        cleanup(&base, 2);
        let mut cp = sample();
        let mut cache = PartitionCache::default();
        cp.save_partitioned(&base, 2, 1, &mut cache).unwrap();
        let p1 = partition_path(&base, "p1");
        let old = std::fs::read(&p1).unwrap();
        // Advance the dirty partition, then put the stale file back —
        // simulating a torn multi-file update.
        cp.live[0].steps = 30;
        cp.save_partitioned(&base, 2, 2, &mut cache).unwrap();
        std::fs::write(&p1, &old).unwrap();
        let (_, _, outcomes) = ServeCheckpoint::load_partitioned(&base).unwrap().unwrap();
        assert_eq!(outcomes.len(), 1);
        assert!(
            matches!(outcomes[0].error, SnapshotError::Incompatible { .. }),
            "{:?}",
            outcomes[0].error
        );
        cleanup(&base, 2);
    }

    #[test]
    fn corrupt_manifest_is_fatal_for_the_whole_checkpoint() {
        let base = scratch("bad_manifest");
        cleanup(&base, 2);
        let cp = sample();
        let mut cache = PartitionCache::default();
        cp.save_partitioned(&base, 2, 1, &mut cache).unwrap();
        std::fs::write(&base, "garbage, not a snapshot\n").unwrap();
        assert!(ServeCheckpoint::load_partitioned(&base).is_err());
        cleanup(&base, 2);
    }

    #[test]
    fn missing_manifest_is_none_not_an_error() {
        let base = scratch("no_manifest");
        cleanup(&base, 1);
        assert!(ServeCheckpoint::load_partitioned(&base).unwrap().is_none());
    }
}
