//! Streaming monitor-event sources for the recovery daemon.
//!
//! The daemon consumes events through the [`EventSource`] trait, one
//! `poll` per logical tick. Two sources ship:
//!
//! * [`SyntheticEvents`] — a seeded generator with steady, bursty, and
//!   adversarial [`Schedule`]s. It is a pure function of
//!   `(seed, schedule, fault population, ticks)`, which is what makes
//!   serve soaks reproducible and resumable: the daemon can skip the
//!   generator forward past ticks a checkpoint already consumed.
//! * [`ChannelSource`] — an in-process `mpsc` adapter for callers that
//!   push real monitor notifications into the daemon.

use bpr_core::Error;
use bpr_mdp::StateId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::mpsc::{Receiver, TryRecvError};

/// One monitor notification: "something looks wrong, the injected
/// fault is `fault`". The daemon opens an incident for every admitted
/// event; the fault itself stays hidden from the controller, exactly
/// as in the episode harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncidentEvent {
    /// The true fault state behind the notification.
    pub fault: StateId,
}

/// Event arrival pattern of a [`SyntheticEvents`] generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Schedule {
    /// `per_tick` events every tick.
    Steady {
        /// Events per tick.
        per_tick: usize,
    },
    /// `background` events per tick, plus a burst of `burst` extra
    /// events every `period` ticks — the load pattern that exercises
    /// admission control and queue backpressure.
    Bursty {
        /// Baseline events per tick.
        background: usize,
        /// Extra events on burst ticks.
        burst: usize,
        /// Ticks between bursts (≥ 1).
        period: u64,
    },
    /// Quiet except for a storm of `storm` events every `period`
    /// ticks, all naming the *same* fault (rotating through the
    /// population per storm) — correlated failures, the worst case for
    /// shedding policies that assume independent arrivals.
    Adversarial {
        /// Events per storm.
        storm: usize,
        /// Ticks between storms (≥ 1).
        period: u64,
    },
}

impl Schedule {
    /// Parses the `--schedule` spelling used by the soak harness:
    /// `steady`, `bursty`, or `adversarial`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] for an unknown name.
    pub fn parse(name: &str, rate: usize, burst: usize, period: u64) -> Result<Schedule, Error> {
        match name {
            "steady" => Ok(Schedule::Steady { per_tick: rate }),
            "bursty" => Ok(Schedule::Bursty {
                background: rate,
                burst,
                period,
            }),
            "adversarial" => Ok(Schedule::Adversarial {
                storm: rate + burst,
                period,
            }),
            other => Err(Error::InvalidInput {
                detail: format!("unknown schedule {other:?} (steady|bursty|adversarial)"),
            }),
        }
    }

    /// Rejects degenerate schedules.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] for a zero burst/storm period.
    pub fn validate(&self) -> Result<(), Error> {
        let period = match self {
            Schedule::Steady { .. } => 1,
            Schedule::Bursty { period, .. } | Schedule::Adversarial { period, .. } => *period,
        };
        if period == 0 {
            return Err(Error::InvalidInput {
                detail: "schedule period must be at least 1".into(),
            });
        }
        Ok(())
    }

    /// Stable tag used in fingerprints and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Schedule::Steady { .. } => "steady",
            Schedule::Bursty { .. } => "bursty",
            Schedule::Adversarial { .. } => "adversarial",
        }
    }
}

/// A source of monitor events, polled once per daemon tick.
///
/// `poll` returns the events that arrived during this tick (possibly
/// empty), or `None` once the source is exhausted — the daemon then
/// drains its queue and live incidents and shuts down gracefully.
pub trait EventSource {
    /// The events of the next tick, or `None` when the stream has
    /// ended.
    fn poll(&mut self) -> Option<Vec<IncidentEvent>>;

    /// Advances past `n` already-consumed ticks (checkpoint resume).
    /// The default implementation polls and discards.
    fn skip_ticks(&mut self, n: u64) {
        for _ in 0..n {
            if self.poll().is_none() {
                return;
            }
        }
    }

    /// Hash of everything that determines the event stream; folded
    /// into the daemon's checkpoint fingerprint so a snapshot cannot
    /// resume against a different stream. Push-style sources, whose
    /// streams are not replayable, return 0 and forgo resume safety.
    fn fingerprint(&self) -> u64 {
        0
    }

    /// Wire-level telemetry for sources that ingest from a real
    /// transport ([`crate::transport::SocketSource`]); in-process
    /// sources have no wire and return `None`. The daemon copies the
    /// final snapshot into the report for the soak harness's
    /// frame-accounting gate.
    fn transport_counts(&self) -> Option<crate::transport::TransportCounts> {
        None
    }
}

/// Seeded synthetic event generator (see the module docs).
#[derive(Debug, Clone)]
pub struct SyntheticEvents {
    seed: u64,
    schedule: Schedule,
    faults: Vec<StateId>,
    ticks: u64,
    tick: u64,
}

impl SyntheticEvents {
    /// A generator emitting `ticks` ticks of `schedule` over the given
    /// fault population.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] for an empty fault population or an
    /// invalid schedule.
    pub fn new(
        seed: u64,
        schedule: Schedule,
        faults: Vec<StateId>,
        ticks: u64,
    ) -> Result<SyntheticEvents, Error> {
        schedule.validate()?;
        if faults.is_empty() {
            return Err(Error::InvalidInput {
                detail: "synthetic event source needs a non-empty fault population".into(),
            });
        }
        Ok(SyntheticEvents {
            seed,
            schedule,
            faults,
            ticks,
            tick: 0,
        })
    }

    /// Events the generator will emit at tick `tick` — a pure function
    /// of the constructor arguments, usable for offline analysis.
    pub fn events_at(&self, tick: u64) -> Vec<IncidentEvent> {
        // Per-tick RNG stream: skipping ticks is O(1) and the stream
        // is identical whether or not earlier ticks were polled.
        let mut rng = StdRng::seed_from_stream(self.seed, tick);
        match &self.schedule {
            Schedule::Steady { per_tick } => (0..*per_tick)
                .map(|_| IncidentEvent {
                    fault: self.faults[rng.gen_range(0..self.faults.len())],
                })
                .collect(),
            Schedule::Bursty {
                background,
                burst,
                period,
            } => {
                let n = background
                    + if tick.is_multiple_of(*period) {
                        *burst
                    } else {
                        0
                    };
                (0..n)
                    .map(|_| IncidentEvent {
                        fault: self.faults[rng.gen_range(0..self.faults.len())],
                    })
                    .collect()
            }
            Schedule::Adversarial { storm, period } => {
                if tick.is_multiple_of(*period) {
                    let which = (tick / period) as usize % self.faults.len();
                    vec![
                        IncidentEvent {
                            fault: self.faults[which],
                        };
                        *storm
                    ]
                } else {
                    Vec::new()
                }
            }
        }
    }

    /// Total ticks the generator covers.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }
}

impl EventSource for SyntheticEvents {
    fn poll(&mut self) -> Option<Vec<IncidentEvent>> {
        if self.tick >= self.ticks {
            return None;
        }
        let events = self.events_at(self.tick);
        self.tick += 1;
        Some(events)
    }

    fn skip_ticks(&mut self, n: u64) {
        self.tick = self.tick.saturating_add(n).min(self.ticks);
    }

    fn fingerprint(&self) -> u64 {
        let desc = format!(
            "synthetic seed={} schedule={:?} faults={:?} ticks={}",
            self.seed,
            self.schedule,
            self.faults.iter().map(|s| s.index()).collect::<Vec<_>>(),
            self.ticks
        );
        bpr_core::snapshot::fnv1a64(desc.as_bytes())
    }
}

/// Push-style source: an `mpsc` receiver whose sender side lives with
/// the caller's monitoring stack. One `poll` drains everything
/// currently buffered; the source ends when every sender has hung up.
#[derive(Debug)]
pub struct ChannelSource {
    rx: Receiver<IncidentEvent>,
}

impl ChannelSource {
    /// Wraps a receiver.
    pub fn new(rx: Receiver<IncidentEvent>) -> ChannelSource {
        ChannelSource { rx }
    }
}

impl EventSource for ChannelSource {
    fn poll(&mut self) -> Option<Vec<IncidentEvent>> {
        let mut events = Vec::new();
        loop {
            match self.rx.try_recv() {
                Ok(e) => events.push(e),
                Err(TryRecvError::Empty) => return Some(events),
                Err(TryRecvError::Disconnected) => {
                    return if events.is_empty() {
                        None
                    } else {
                        Some(events)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faults() -> Vec<StateId> {
        vec![StateId::new(0), StateId::new(1)]
    }

    #[test]
    fn steady_schedule_emits_fixed_rate() {
        let mut s = SyntheticEvents::new(1, Schedule::Steady { per_tick: 3 }, faults(), 4).unwrap();
        let mut total = 0;
        while let Some(batch) = s.poll() {
            assert_eq!(batch.len(), 3);
            total += batch.len();
        }
        assert_eq!(total, 12);
    }

    #[test]
    fn bursty_schedule_spikes_on_period() {
        let schedule = Schedule::Bursty {
            background: 1,
            burst: 5,
            period: 3,
        };
        let s = SyntheticEvents::new(2, schedule, faults(), 10).unwrap();
        assert_eq!(s.events_at(0).len(), 6);
        assert_eq!(s.events_at(1).len(), 1);
        assert_eq!(s.events_at(3).len(), 6);
    }

    #[test]
    fn adversarial_storms_focus_one_fault() {
        let schedule = Schedule::Adversarial {
            storm: 4,
            period: 2,
        };
        let s = SyntheticEvents::new(3, schedule, faults(), 10).unwrap();
        let storm = s.events_at(0);
        assert_eq!(storm.len(), 4);
        assert!(storm.iter().all(|e| e.fault == storm[0].fault));
        assert!(s.events_at(1).is_empty());
        // The next storm rotates to the other fault.
        assert_ne!(s.events_at(2)[0].fault, storm[0].fault);
    }

    #[test]
    fn skipping_ticks_matches_polling_through() {
        let schedule = Schedule::Bursty {
            background: 2,
            burst: 3,
            period: 4,
        };
        let mut a = SyntheticEvents::new(7, schedule.clone(), faults(), 20).unwrap();
        let mut b = SyntheticEvents::new(7, schedule, faults(), 20).unwrap();
        for _ in 0..13 {
            a.poll().unwrap();
        }
        b.skip_ticks(13);
        assert_eq!(a.poll(), b.poll());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn degenerate_schedules_are_rejected() {
        assert!(SyntheticEvents::new(
            0,
            Schedule::Bursty {
                background: 1,
                burst: 1,
                period: 0
            },
            faults(),
            1
        )
        .is_err());
        assert!(SyntheticEvents::new(0, Schedule::Steady { per_tick: 1 }, vec![], 1).is_err());
        assert!(Schedule::parse("nope", 1, 1, 1).is_err());
        assert_eq!(
            Schedule::parse("adversarial", 2, 3, 4).unwrap(),
            Schedule::Adversarial {
                storm: 5,
                period: 4
            }
        );
    }

    #[test]
    fn channel_source_drains_and_ends() {
        let (tx, rx) = std::sync::mpsc::channel();
        let mut src = ChannelSource::new(rx);
        tx.send(IncidentEvent {
            fault: StateId::new(1),
        })
        .unwrap();
        tx.send(IncidentEvent {
            fault: StateId::new(0),
        })
        .unwrap();
        assert_eq!(src.poll().unwrap().len(), 2);
        assert_eq!(src.poll().unwrap().len(), 0, "connected but idle");
        drop(tx);
        assert!(src.poll().is_none(), "all senders gone");
        assert_eq!(src.fingerprint(), 0);
    }
}
