//! The daemon's end-of-run report, split into **canonical** facts
//! (pure functions of seeds + config, compared bit-for-bit by the
//! determinism gates) and **observed** facts (wall-clock latency,
//! throughput — measured, reported, never fed back into control).

use crate::checkpoint::PartitionOutcome;
use crate::incident::{IncidentRecord, IncidentStatus, RungKind};
use crate::transport::TransportCounts;
use bpr_core::lint::Diagnostic;
use bpr_core::snapshot::SnapshotError;
use bpr_mdp::StateId;
use std::time::Duration;

/// Typed, counted load-shed reasons. The daemon never drops an event
/// without incrementing exactly one of these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShedCounts {
    /// Arrivals rejected because the bounded admission queue was full.
    pub queue_full: u64,
}

impl ShedCounts {
    /// Total shed events across all reasons.
    pub fn total(&self) -> u64 {
        self.queue_full
    }
}

/// Log-scale latency histogram: power-of-two major buckets with 16
/// linear minor buckets each (≤ ~6% quantile error), merged across
/// shards without allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
}

const MINOR: usize = 16;
const MAJORS: usize = 64;

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; MAJORS * MINOR],
            total: 0,
        }
    }
}

impl LatencyHistogram {
    fn bucket(ns: u64) -> usize {
        if ns < MINOR as u64 {
            return ns as usize;
        }
        let major = 63 - ns.leading_zeros() as usize;
        let minor = ((ns >> (major - 4)) & 0xF) as usize;
        major * MINOR + minor
    }

    /// Upper bound (ns) of the bucket with the given index.
    fn bucket_upper(index: usize) -> u64 {
        if index < MINOR {
            return index as u64;
        }
        let major = index / MINOR;
        let minor = (index % MINOR) as u64;
        (16 + minor + 1) << (major - 4)
    }

    /// Records one decision latency.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket(ns)] += 1;
        self.total += 1;
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `q`-quantile in nanoseconds (bucket upper bound); 0 when
    /// empty. `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(MAJORS * MINOR - 1)
    }

    /// Median decision latency in nanoseconds.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile decision latency in nanoseconds.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Everything a serve run produced. See the module docs for the
/// canonical/observed split.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Events the source delivered.
    pub events_seen: u64,
    /// Typed shed counters.
    pub shed: ShedCounts,
    /// Incidents admitted (assigned an id and a controller).
    pub admitted: u64,
    /// Admissions that started on the anytime rung because the daemon
    /// was overloaded at admission time.
    pub degraded_admissions: u64,
    /// Escalations into the resilient rung.
    pub escalated_resilient: u64,
    /// Escalations into the anytime rung.
    pub escalated_anytime: u64,
    /// Total controller decisions across all incidents.
    pub decisions: u64,
    /// Closed incident records, in id order.
    pub records: Vec<IncidentRecord>,
    /// Incidents still live when the run stopped (nonzero only for
    /// killed runs — a graceful drain finishes everything).
    pub live_at_exit: u64,
    /// Events still waiting in the bounded queue when the run stopped
    /// (nonzero only for killed runs; persisted in the checkpoint).
    pub queued_at_exit: u64,
    /// Logical ticks consumed from the source.
    pub ticks: u64,
    /// Daemon rounds executed (ticks plus drain rounds).
    pub rounds: u64,
    /// Whether the run was cut short by the kill drill.
    pub killed: bool,
    /// Tick the run resumed from, when it started from a checkpoint.
    pub resumed_from: Option<u64>,
    /// Events the resumed-from checkpoint had already consumed (0 for
    /// a fresh run). A resumed run's `events_seen` includes these, so
    /// transport accounting must offset by this value.
    pub events_seen_at_start: u64,
    /// Checkpoints successfully written.
    pub checkpoints_written: u64,
    /// Transient snapshot IO retries that eventually succeeded.
    pub snapshot_retries: u64,
    /// The last checkpoint failure the daemon absorbed (service
    /// continues; durability degrades), if any.
    pub snapshot_error: Option<SnapshotError>,
    /// Checkpoint partitions that could not be restored on resume —
    /// each degraded only its own incidents (typed, counted).
    pub partition_errors: Vec<PartitionOutcome>,
    /// Closed records lost to degraded partitions; credited in
    /// [`ServeReport::lost_incidents`] so the zero-loss gate stays
    /// checkable under deliberate corruption.
    pub records_dropped: u64,
    /// Warn/info lint findings of the model in service (surfaced at
    /// startup and in `BENCH_serve.json` — satellite requirement),
    /// with allowlisted codes removed.
    pub lint_warnings: Vec<Diagnostic>,
    /// Findings suppressed by the `expected_warnings` allowlist.
    pub suppressed_lint_warnings: u64,
    /// Transport-layer counters when the source was a network socket
    /// (`None` for in-process sources). Observed, never canonical.
    pub transport: Option<TransportCounts>,
    /// Observed: per-decision wall-clock latency histogram.
    pub latency: LatencyHistogram,
    /// Observed: decisions that overran the configured deadline.
    pub deadline_misses: u64,
    /// Observed: the per-decision deadline decisions are measured
    /// against.
    pub deadline: Duration,
    /// Observed: wall-clock seconds of the whole run.
    pub wall_seconds: f64,
}

impl ServeReport {
    /// Observed ingest throughput (events per wall-clock second).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.events_seen as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Observed completion throughput (incidents closed per second).
    pub fn incidents_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.records.len() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Count of records with the given status.
    pub fn count(&self, status: IncidentStatus) -> u64 {
        self.records.iter().filter(|r| r.status == status).count() as u64
    }

    /// Admitted incidents not accounted for by a typed terminal
    /// record, by still being live at a kill, or by a counted
    /// partition degradation. The zero-loss gate requires this to
    /// be 0.
    pub fn lost_incidents(&self) -> u64 {
        self.admitted
            .saturating_sub(self.records.len() as u64 + self.live_at_exit + self.records_dropped)
    }

    /// The canonical view: everything that must be bit-identical
    /// across shard widths and kill/resume. Wall-clock facts are
    /// excluded by construction.
    pub fn canonical(&self) -> CanonicalServe {
        let mut records: Vec<CanonicalIncident> = self
            .records
            .iter()
            .map(|r| CanonicalIncident {
                id: r.id,
                fault: r.fault,
                status: r.status,
                steps: r.steps,
                cost_bits: r.cost.to_bits(),
                decision_hash: r.decision_hash,
                admitted_rung: r.admitted_rung,
                final_rung: r.final_rung,
                escalations: r.escalations,
                actions: r.actions.clone(),
            })
            .collect();
        records.sort_by_key(|r| r.id);
        CanonicalServe {
            events_seen: self.events_seen,
            shed: self.shed,
            admitted: self.admitted,
            degraded_admissions: self.degraded_admissions,
            escalated_resilient: self.escalated_resilient,
            escalated_anytime: self.escalated_anytime,
            decisions: self.decisions,
            ticks: self.ticks,
            records,
        }
    }
}

/// One incident in the canonical view (`cost` as raw bits so the
/// comparison is exact).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalIncident {
    /// Incident id.
    pub id: u64,
    /// Injected fault.
    pub fault: StateId,
    /// Terminal status.
    pub status: IncidentStatus,
    /// Decisions made.
    pub steps: usize,
    /// `f64::to_bits` of the accumulated cost.
    pub cost_bits: u64,
    /// Decision-sequence hash.
    pub decision_hash: u64,
    /// Admission rung.
    pub admitted_rung: RungKind,
    /// Final rung.
    pub final_rung: RungKind,
    /// Escalations taken.
    pub escalations: usize,
    /// Full decision sequence when recorded.
    pub actions: Option<Vec<i64>>,
}

/// The deterministic slice of a [`ServeReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalServe {
    /// Events the source delivered.
    pub events_seen: u64,
    /// Typed shed counters.
    pub shed: ShedCounts,
    /// Incidents admitted.
    pub admitted: u64,
    /// Anytime-rung admissions under overload.
    pub degraded_admissions: u64,
    /// Escalations into the resilient rung.
    pub escalated_resilient: u64,
    /// Escalations into the anytime rung.
    pub escalated_anytime: u64,
    /// Total decisions.
    pub decisions: u64,
    /// Ticks consumed.
    pub ticks: u64,
    /// Closed incidents, sorted by id.
    pub records: Vec<CanonicalIncident>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let mut h = LatencyHistogram::default();
        for ns in [100u64, 200, 300, 400, 500, 600, 700, 800, 900, 100_000] {
            h.record(ns);
        }
        assert_eq!(h.total(), 10);
        let p50 = h.p50();
        assert!((400..=600).contains(&p50), "p50 = {p50}");
        let p99 = h.p99();
        assert!(p99 >= 100_000, "p99 = {p99}");
        assert!(p99 <= 110_000, "p99 = {p99}");
    }

    #[test]
    fn histogram_merge_equals_combined_stream() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        let mut c = LatencyHistogram::default();
        for i in 0..1000u64 {
            let ns = i * 37 + 5;
            if i % 2 == 0 {
                a.record(ns);
            } else {
                b.record(ns);
            }
            c.record(ns);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn small_latencies_use_exact_buckets() {
        let mut h = LatencyHistogram::default();
        h.record(3);
        assert_eq!(h.quantile(1.0), 3);
    }
}
