//! `bpr-serve`: a crash-tolerant, long-running recovery daemon on top
//! of the bounded-POMDP planning stack — the paper's controller run
//! *live* against a stream of monitor events instead of batch
//! episodes.
//!
//! # Architecture
//!
//! ```text
//!  events ──► bounded queue ──► admission ──► live incidents ──► records
//!  (source)    (shed: typed,     (cap, rung    (sharded over      (typed
//!              counted)          by load)      bpr-par, panic     terminal
//!                                              quarantine)        status)
//! ```
//!
//! * **Ingestion** — an [`EventSource`] is polled once per logical
//!   tick: the seeded [`SyntheticEvents`] generator (steady / bursty /
//!   adversarial schedules) or an in-process [`ChannelSource`].
//! * **Backpressure** — arrivals land in a *bounded* queue; overflow
//!   is load-shed with a typed, counted rejection ([`ShedCounts`]),
//!   never buffered without bound.
//! * **Admission control** — at most `max_live` incidents run
//!   concurrently; under heavy backlog new incidents are admitted
//!   directly on the budgeted anytime rung (degraded service beats a
//!   missed deadline).
//! * **Escalation ladder** — per incident, fused-kernel `Bounded` →
//!   hardened `Resilient` → budgeted `Anytime`, driven purely by
//!   decision counts so runs are bit-identical at any shard width.
//! * **Deadlines** — every decision is measured against a
//!   per-incident deadline; misses are counted and the p50/p99
//!   latency histogram lands in the report. Wall-clock never feeds
//!   back into control.
//! * **Durability** — live state checkpoints through
//!   [`bpr_core::snapshot`] on a count- *and* wall-clock-based
//!   [`bpr_core::snapshot::CheckpointPolicy`], with capped
//!   exponential-backoff retry on transient IO errors; a kill mid-soak
//!   resumes bit-identically by replaying surviving incidents from
//!   their seeds.
//! * **Isolation** — a panicking incident is quarantined through
//!   [`bpr_par::WorkPool::map_indices_isolated`] with a typed record;
//!   the daemon keeps serving.
//!
//! Every admitted incident ends in exactly one typed
//! [`IncidentStatus`] — recovered, terminated-faulty, step-limit,
//! controller-error, or quarantined. The soak harness
//! (`bench --bin serve`) gates on that zero-loss invariant.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod daemon;
pub mod event;
mod incident;
pub mod report;
pub mod transport;

pub use checkpoint::{
    LiveIncident, PartitionOutcome, ServeCheckpoint, SERVE_MANIFEST_KIND, SERVE_PARTITION_KIND,
};
pub use daemon::{Daemon, ServeConfig};
pub use event::{ChannelSource, EventSource, IncidentEvent, Schedule, SyntheticEvents};
pub use incident::{IncidentRecord, IncidentStatus, Prototypes, RungKind};
pub use report::{CanonicalIncident, CanonicalServe, LatencyHistogram, ServeReport, ShedCounts};
pub use transport::{Frame, FrameDecoder, FrameError, SocketConfig, SocketSource, TransportCounts};

#[cfg(test)]
mod tests {
    use super::*;
    use bpr_emn::two_server;
    use bpr_mdp::StateId;

    fn faults() -> Vec<StateId> {
        vec![
            StateId::new(two_server::FAULT_A),
            StateId::new(two_server::FAULT_B),
        ]
    }

    fn cleanup_checkpoint(base: &std::path::Path) {
        let _ = std::fs::remove_file(base);
        for k in 0..16 {
            let _ =
                std::fs::remove_file(bpr_core::snapshot::partition_path(base, &format!("p{k}")));
        }
    }

    fn quick_config() -> ServeConfig {
        ServeConfig {
            max_live: 4,
            queue_capacity: 8,
            max_steps: 30,
            escalate_resilient_after: 6,
            escalate_anytime_after: 10,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn daemon_drains_a_steady_stream_with_zero_loss() {
        let model = two_server::default_model().unwrap();
        let mut daemon = Daemon::new(&model, quick_config()).unwrap();
        let mut source =
            SyntheticEvents::new(1, Schedule::Steady { per_tick: 2 }, faults(), 10).unwrap();
        let report = daemon.run(&mut source).unwrap();
        assert_eq!(report.events_seen, 20);
        assert_eq!(report.lost_incidents(), 0);
        assert_eq!(report.live_at_exit, 0, "graceful drain leaves nothing");
        assert_eq!(
            report.admitted + report.shed.total(),
            report.events_seen,
            "every event was admitted or shed"
        );
        assert!(report.count(IncidentStatus::Recovered) > 0);
        assert!(!report.killed);
        // The raw two-server model carries lint warnings (random chain
        // divergence) — they must surface in the report.
        assert!(!report.lint_warnings.is_empty());
        assert!(report.latency.total() > 0);
    }

    #[test]
    fn overload_sheds_with_typed_counts_and_degrades_admissions() {
        let model = two_server::default_model().unwrap();
        let config = ServeConfig {
            max_live: 1,
            queue_capacity: 4,
            degrade_queue_depth: 2,
            max_steps: 10,
            ..ServeConfig::default()
        };
        let mut daemon = Daemon::new(&model, config).unwrap();
        let mut source =
            SyntheticEvents::new(2, Schedule::Steady { per_tick: 10 }, faults(), 10).unwrap();
        let report = daemon.run(&mut source).unwrap();
        assert_eq!(report.events_seen, 100);
        assert!(report.shed.queue_full > 0, "bounded queue must shed");
        assert!(report.degraded_admissions > 0, "backlog admits on anytime");
        assert_eq!(report.lost_incidents(), 0);
        assert_eq!(report.admitted + report.shed.total(), report.events_seen);
    }

    #[test]
    fn chaos_panic_is_quarantined_not_fatal() {
        let model = two_server::default_model().unwrap();
        let config = ServeConfig {
            chaos_panic_incidents: vec![1],
            ..quick_config()
        };
        let mut daemon = Daemon::new(&model, config).unwrap();
        let mut source =
            SyntheticEvents::new(3, Schedule::Steady { per_tick: 1 }, faults(), 6).unwrap();
        let report = daemon.run(&mut source).unwrap();
        assert_eq!(report.count(IncidentStatus::Quarantined), 1);
        let q = report
            .records
            .iter()
            .find(|r| r.status == IncidentStatus::Quarantined)
            .unwrap();
        assert_eq!(q.id, 1);
        assert!(q.detail.contains("chaos drill"));
        assert_eq!(report.lost_incidents(), 0);
    }

    #[test]
    fn shard_width_does_not_change_canonical_results() {
        let model = two_server::default_model().unwrap();
        let mut canonicals = Vec::new();
        for shards in [1, 2, 4] {
            let config = ServeConfig {
                shards,
                record_actions: true,
                ..quick_config()
            };
            let mut daemon = Daemon::new(&model, config).unwrap();
            let mut source = SyntheticEvents::new(
                7,
                Schedule::Bursty {
                    background: 1,
                    burst: 4,
                    period: 3,
                },
                faults(),
                12,
            )
            .unwrap();
            canonicals.push(daemon.run(&mut source).unwrap().canonical());
        }
        assert_eq!(canonicals[0], canonicals[1]);
        assert_eq!(canonicals[0], canonicals[2]);
    }

    #[test]
    fn kill_and_resume_reproduces_the_reference_run() {
        use bpr_core::snapshot::CheckpointPolicy;
        let model = two_server::default_model().unwrap();
        let path =
            std::env::temp_dir().join(format!("bpr_serve_lib_kill_resume_{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let source = || {
            SyntheticEvents::new(
                11,
                Schedule::Bursty {
                    background: 1,
                    burst: 3,
                    period: 4,
                },
                faults(),
                15,
            )
            .unwrap()
        };
        let base = ServeConfig {
            record_actions: true,
            ..quick_config()
        };

        // Reference: uninterrupted, no checkpointing at all.
        let mut reference_daemon = Daemon::new(&model, base.clone()).unwrap();
        let reference = reference_daemon.run(&mut source()).unwrap();

        // Killed: checkpoint every round, die after 7 rounds.
        let killed_config = ServeConfig {
            checkpoint: Some(CheckpointPolicy::new(&path, 1)),
            kill_after_rounds: Some(7),
            ..base.clone()
        };
        let mut killed_daemon = Daemon::new(&model, killed_config).unwrap();
        let killed = killed_daemon.run(&mut source()).unwrap();
        assert!(killed.killed);
        assert!(killed.live_at_exit > 0 || !killed.records.is_empty());
        assert!(killed.checkpoints_written > 0);
        assert_eq!(killed.lost_incidents(), 0);

        // Resumed: same session parameters, picks up the snapshot.
        let resumed_config = ServeConfig {
            checkpoint: Some(CheckpointPolicy::new(&path, 1)),
            ..base
        };
        let mut resumed_daemon = Daemon::new(&model, resumed_config).unwrap();
        let resumed = resumed_daemon.run(&mut source()).unwrap();
        assert!(resumed.resumed_from.is_some());
        assert_eq!(resumed.events_seen_at_start, killed.events_seen);
        assert!(resumed.partition_errors.is_empty());
        assert_eq!(resumed.canonical(), reference.canonical());
        cleanup_checkpoint(&path);
    }

    #[test]
    fn corrupt_checkpoint_degrades_to_fresh_run() {
        use bpr_core::snapshot::CheckpointPolicy;
        let model = two_server::default_model().unwrap();
        let path =
            std::env::temp_dir().join(format!("bpr_serve_lib_corrupt_{}", std::process::id()));
        std::fs::write(&path, "garbage, not a snapshot\n").unwrap();
        let config = ServeConfig {
            checkpoint: Some(CheckpointPolicy::new(&path, 2)),
            ..quick_config()
        };
        let mut daemon = Daemon::new(&model, config).unwrap();
        let mut source =
            SyntheticEvents::new(5, Schedule::Steady { per_tick: 1 }, faults(), 5).unwrap();
        let report = daemon.run(&mut source).unwrap();
        assert!(report.resumed_from.is_none());
        assert!(report.snapshot_error.is_some(), "corruption is reported");
        assert_eq!(report.lost_incidents(), 0);
        cleanup_checkpoint(&path);
    }

    #[test]
    fn corrupt_partition_degrades_only_its_incidents_on_resume() {
        use bpr_core::snapshot::{partition_path, CheckpointPolicy};
        let model = two_server::default_model().unwrap();
        let path =
            std::env::temp_dir().join(format!("bpr_serve_lib_degrade_{}", std::process::id()));
        cleanup_checkpoint(&path);
        let source =
            || SyntheticEvents::new(13, Schedule::Steady { per_tick: 2 }, faults(), 12).unwrap();
        let config = ServeConfig {
            checkpoint: Some(CheckpointPolicy::new(&path, 1)),
            checkpoint_partitions: 3,
            kill_after_rounds: Some(6),
            ..quick_config()
        };
        let mut killed_daemon = Daemon::new(&model, config.clone()).unwrap();
        let killed = killed_daemon.run(&mut source()).unwrap();
        assert!(killed.killed);
        assert!(
            !killed.records.is_empty(),
            "need closed records to corrupt away"
        );

        // Corrupt one partition that holds at least one closed record.
        let victim = partition_path(&path, &format!("p{}", killed.records[0].id % 3));
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&victim, &bytes).unwrap();

        let resumed_config = ServeConfig {
            kill_after_rounds: None,
            ..config
        };
        let mut resumed_daemon = Daemon::new(&model, resumed_config).unwrap();
        let resumed = resumed_daemon.run(&mut source()).unwrap();
        assert!(resumed.resumed_from.is_some(), "manifest still resumes");
        assert_eq!(resumed.partition_errors.len(), 1, "one partition degraded");
        assert!(resumed.records_dropped > 0);
        assert_eq!(
            resumed.lost_incidents(),
            0,
            "dropped records are counted, not lost"
        );
        cleanup_checkpoint(&path);
    }

    #[test]
    fn socket_fed_daemon_matches_the_in_process_canonical_report() {
        use std::io::Write;
        use std::net::TcpStream;

        let model = two_server::default_model().unwrap();
        let config = ServeConfig {
            record_actions: true,
            ..quick_config()
        };
        let schedule = Schedule::Bursty {
            background: 1,
            burst: 3,
            period: 4,
        };
        let ticks = 10;

        // Reference: the seeded in-process generator.
        let mut reference_daemon = Daemon::new(&model, config.clone()).unwrap();
        let mut reference_source =
            SyntheticEvents::new(17, schedule.clone(), faults(), ticks).unwrap();
        let reference = reference_daemon.run(&mut reference_source).unwrap();

        // Same logical event sequence pushed over a loopback socket.
        let plan = SyntheticEvents::new(17, schedule, faults(), ticks).unwrap();
        let mut socket = SocketSource::bind(
            "127.0.0.1:0",
            transport::SocketConfig {
                idle_timeout: std::time::Duration::from_millis(500),
                ..transport::SocketConfig::default()
            },
        )
        .unwrap()
        .with_stream_fingerprint(plan.fingerprint());
        let addr = socket.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            for tick in 0..ticks {
                for (seq, event) in plan.events_at(tick).into_iter().enumerate() {
                    let frame = Frame::Event {
                        tick,
                        seq: seq as u32,
                        fault: event.fault,
                    };
                    s.write_all(&frame.encode()).unwrap();
                }
            }
            s.write_all(&Frame::End { ticks }.encode()).unwrap();
        });
        let mut socket_daemon = Daemon::new(&model, config).unwrap();
        let socket_report = socket_daemon.run(&mut socket).unwrap();
        writer.join().unwrap();

        assert_eq!(
            socket_report.canonical(),
            reference.canonical(),
            "canonical report must not depend on the transport"
        );
        let t = socket_report
            .transport
            .expect("socket source reports counts");
        assert_eq!(t.frames_seen, t.events_delivered + t.rejected_frames());
        assert_eq!(t.rejected_frames(), 0);
        assert!(reference.transport.is_none());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let model = two_server::default_model().unwrap();
        for broken in [
            ServeConfig {
                max_live: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                queue_capacity: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                escalate_resilient_after: 9,
                escalate_anytime_after: 3,
                ..ServeConfig::default()
            },
        ] {
            assert!(Daemon::new(&model, broken).is_err());
        }
    }
}
