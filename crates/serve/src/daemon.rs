//! The recovery daemon: a round-based event loop with admission
//! control, bounded-queue backpressure, sharded incident stepping,
//! deterministic escalation, and durable checkpoints.
//!
//! # Determinism by construction
//!
//! The daemon runs in **logical rounds**. Per round it polls the
//! event source once (one tick), sheds or enqueues arrivals, admits
//! incidents up to `max_live`, then steps every live incident
//! `steps_per_round` decisions across the [`bpr_par::WorkPool`].
//! Every control decision — shedding, admission rung, escalation,
//! step caps, checkpoint cadence (count trigger) — is a pure function
//! of logical state (queue depth, decision counts, tick numbers),
//! never of wall-clock time. Wall-clock latency is *measured* against
//! the configured deadline and reported (p50/p99, miss counts), but it
//! never feeds back into control, so a run is bit-identical at any
//! shard width and across kill/resume. The optional wall-clock
//! checkpoint trigger only adds snapshots; snapshot content is itself
//! a pure function of logical state.

use crate::checkpoint::{
    sanitize, LiveIncident, PartitionCache, PartitionOutcome, ServeCheckpoint,
};
use crate::event::EventSource;
use crate::incident::{Incident, IncidentRecord, IncidentStatus, Prototypes, RungKind};
use crate::report::{LatencyHistogram, ServeReport, ShedCounts};
use bpr_core::lint::{lint_pomdp, Diagnostic, LintCode};
use bpr_core::snapshot::{
    fnv1a64, retry_with_backoff, CheckpointPolicy, RetryPolicy, SnapshotError,
};
use bpr_core::{
    AnytimeConfig, AnytimeController, BoundedConfig, BoundedController, Error, LumpedController,
    RecoveryModel, ResilienceConfig, ResilientController,
};
use bpr_mdp::StateId;
use bpr_par::WorkPool;
use bpr_pomdp::LumpCertificate;
use bpr_sim::PerturbationPlan;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Daemon configuration. All control-relevant fields are folded into
/// the checkpoint fingerprint; purely observed fields (`deadline`,
/// `shards`, `checkpoint`, `checkpoint_partitions`,
/// `expected_warnings`, `kill_after_rounds`, `verbose`) are not — a
/// snapshot may be resumed at a different shard width or partition
/// count.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum concurrently live incidents (admission cap).
    pub max_live: usize,
    /// Bounded admission queue; arrivals beyond this are shed with a
    /// typed, counted rejection. Never unbounded.
    pub queue_capacity: usize,
    /// Worker threads incidents are sharded over.
    pub shards: usize,
    /// Decisions per live incident per round.
    pub steps_per_round: usize,
    /// Per-incident decision cap; hitting it closes the incident as
    /// [`IncidentStatus::StepLimit`].
    pub max_steps: usize,
    /// Queue depth at admission time from which new incidents start
    /// directly on the anytime rung (degraded service under overload).
    pub degrade_queue_depth: usize,
    /// Decisions after which a bounded incident escalates to the
    /// resilient rung.
    pub escalate_resilient_after: usize,
    /// Decisions after which any incident escalates to the anytime
    /// rung.
    pub escalate_anytime_after: usize,
    /// Per-decision deadline — *observed*: decisions overrunning it
    /// are counted as misses, never interrupted.
    pub deadline: Duration,
    /// Operator response time `t_op` of the terminate action (paper
    /// §3.3).
    pub operator_response_time: f64,
    /// Expansion depth of the bounded rung.
    pub depth: usize,
    /// Probability-mass cutoff shared by all rungs.
    pub gamma_cutoff: f64,
    /// Node budget of the anytime rung.
    pub anytime_node_budget: usize,
    /// Plan the bounded rung on the lumped (state-aggregated) quotient
    /// of the transformed model instead of the full model. Sound by
    /// the `bpr_pomdp::lump` certificate — decisions match the full
    /// model — but control-relevant (it changes the planning model),
    /// so it is folded into the checkpoint fingerprint.
    pub lump: bool,
    /// World degradation applied to every incident (per-incident seeds
    /// are derived from `plan.seed` and the incident id).
    pub plan: PerturbationPlan,
    /// Master seed; incident `i` draws world randomness from stream
    /// `(master_seed, i)`.
    pub master_seed: u64,
    /// Durability: where and how often to checkpoint, `None` to run
    /// without snapshots.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Incident partitions the checkpoint is sharded over (`id %
    /// partitions`). More partitions mean smaller steady-state
    /// rewrites; resume reads whatever count the manifest records, so
    /// the value may change between runs.
    pub checkpoint_partitions: usize,
    /// Backoff schedule for transient checkpoint IO errors.
    pub retry: RetryPolicy,
    /// Lint codes this deployment has reviewed and accepted: matching
    /// warn/info findings are suppressed from the report's
    /// `lint_warnings` (and startup logs) and surface only as a
    /// suppressed count. Error findings still reject the model.
    pub expected_warnings: Vec<LintCode>,
    /// Record full per-incident decision sequences in the records
    /// (memory-proportional to decisions; meant for tests and drills).
    pub record_actions: bool,
    /// Chaos drill: incident ids whose first step deliberately panics,
    /// proving quarantine isolation end to end.
    pub chaos_panic_incidents: Vec<u64>,
    /// Kill drill: stop abruptly after this many rounds of the current
    /// process (a final snapshot is flushed), leaving live incidents
    /// for a resume.
    pub kill_after_rounds: Option<u64>,
    /// Log startup diagnostics (lint warnings, resume notices) to
    /// stderr.
    pub verbose: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_live: 8,
            queue_capacity: 64,
            shards: 1,
            steps_per_round: 1,
            max_steps: 60,
            degrade_queue_depth: 32,
            escalate_resilient_after: 12,
            escalate_anytime_after: 24,
            deadline: Duration::from_millis(50),
            operator_response_time: 50.0,
            depth: 1,
            gamma_cutoff: 1e-6,
            anytime_node_budget: 400,
            lump: true,
            plan: PerturbationPlan::none(),
            master_seed: 0,
            checkpoint: None,
            checkpoint_partitions: 4,
            retry: RetryPolicy::default(),
            expected_warnings: Vec::new(),
            record_actions: false,
            chaos_panic_incidents: Vec::new(),
            kill_after_rounds: None,
            verbose: false,
        }
    }
}

impl ServeConfig {
    /// Rejects configurations that cannot serve.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] for zero capacities, caps, or shard
    /// counts, an escalation ladder out of order, or an invalid
    /// checkpoint/retry policy.
    pub fn validate(&self) -> Result<(), Error> {
        let positive = [
            ("max_live", self.max_live),
            ("queue_capacity", self.queue_capacity),
            ("shards", self.shards),
            ("steps_per_round", self.steps_per_round),
            ("max_steps", self.max_steps),
            ("checkpoint_partitions", self.checkpoint_partitions),
        ];
        for (name, value) in positive {
            if value == 0 {
                return Err(Error::InvalidInput {
                    detail: format!("serve config {name} must be at least 1"),
                });
            }
        }
        if self.escalate_resilient_after > self.escalate_anytime_after {
            return Err(Error::InvalidInput {
                detail: format!(
                    "escalation ladder out of order: resilient after {} > anytime after {}",
                    self.escalate_resilient_after, self.escalate_anytime_after
                ),
            });
        }
        if let Some(policy) = &self.checkpoint {
            policy.validate()?;
        }
        self.retry.validate()?;
        Ok(())
    }

    /// The fields that determine the run's canonical behaviour,
    /// hashed into the checkpoint fingerprint.
    fn fingerprint_text(&self) -> String {
        format!(
            "seed={} max_live={} queue={} steps_per_round={} max_steps={} degrade={} \
             esc_res={} esc_any={} t_op={:?} depth={} gamma={:?} budget={} lump={} plan={:?} \
             record={} chaos={:?}",
            self.master_seed,
            self.max_live,
            self.queue_capacity,
            self.steps_per_round,
            self.max_steps,
            self.degrade_queue_depth,
            self.escalate_resilient_after,
            self.escalate_anytime_after,
            self.operator_response_time,
            self.depth,
            self.gamma_cutoff,
            self.anytime_node_budget,
            self.lump,
            self.plan,
            self.record_actions,
            self.chaos_panic_incidents,
        )
    }
}

/// Pre-round snapshot of an incident's counters, used to synthesise a
/// typed quarantine record when its worker panics (the incident value
/// itself is lost to the unwind).
#[derive(Debug, Clone)]
struct QuarantineMeta {
    id: u64,
    fault: StateId,
    admitted_rung: RungKind,
    rung: RungKind,
    escalations: usize,
    steps: usize,
    cost: f64,
    decision_hash: u64,
    actions: Option<Vec<i64>>,
}

/// What one incident produced during one round.
struct RoundResult<'m> {
    live: Option<Incident<'m>>,
    record: Option<IncidentRecord>,
    latencies: Vec<u64>,
    escalated_resilient: u64,
    escalated_anytime: u64,
    decisions: u64,
}

/// The long-running recovery daemon (see the module docs).
pub struct Daemon<'m> {
    model: &'m RecoveryModel,
    config: ServeConfig,
    protos: Prototypes,
    pool: WorkPool,
    lint_warnings: Vec<Diagnostic>,
    suppressed_lint_warnings: u64,

    queue: VecDeque<StateId>,
    live: Vec<Incident<'m>>,
    records: Vec<IncidentRecord>,

    tick: u64,
    rounds: u64,
    next_id: u64,
    events_seen: u64,
    shed: ShedCounts,
    admitted: u64,
    degraded_admissions: u64,
    escalated_resilient: u64,
    escalated_anytime: u64,
    decisions: u64,

    latency: LatencyHistogram,
    deadline_misses: u64,

    resumed_from: Option<u64>,
    events_seen_at_start: u64,
    checkpoints_written: u64,
    snapshot_retries: u64,
    snapshot_error: Option<SnapshotError>,
    generation: u64,
    part_cache: PartitionCache,
    partition_errors: Vec<PartitionOutcome>,
    records_dropped: u64,
}

/// Transformed-state count above which `Prototypes::build` skips the
/// bounded controller's startup vertex sweeps (see the comment at the
/// use site). Matches the robustness bootstrap's cap.
const STARTUP_SWEEP_STATE_CAP: usize = 256;

impl Prototypes {
    /// Builds the three ladder controllers for `model` under
    /// `config`'s planning parameters (`operator_response_time`,
    /// `depth`, `gamma_cutoff`, `anytime_node_budget`). This is the
    /// expensive part of daemon startup — build once per model and
    /// share across daemons via [`Daemon::with_prototypes`].
    ///
    /// # Errors
    ///
    /// Transform or controller construction failures.
    pub fn build(model: &RecoveryModel, config: &ServeConfig) -> Result<Prototypes, Error> {
        let terminated = model.without_notification(config.operator_response_time)?;
        // The bounded rung plans on the lumped quotient when the
        // config asks for it (sound by the certificate; the
        // LumpedController adapter keeps the full-model belief
        // vocabulary at the daemon boundary). `lump: false` keeps the
        // same controller type behind an identity certificate.
        let (planning_model, certificate) = if config.lump {
            terminated.lump()?
        } else {
            let n = terminated.pomdp().n_states();
            (terminated.clone(), LumpCertificate::identity(n))
        };
        // The default startup vertex sweeps repair the raw RA-Bound on
        // paper-scale models, but above a few hundred transformed
        // states two full sweeps of point-belief backups dominate
        // construction (tens of single-threaded CPU-minutes for the
        // 10³-state corpus scenarios). Same policy as the robustness
        // bootstrap: keep the sweeps only where they are cheap. The
        // cap is checked on the *quotient* — lumping can pull a large
        // model back under it, which is part of the point.
        let startup_vertex_sweeps = if planning_model.pomdp().n_states() > STARTUP_SWEEP_STATE_CAP {
            0
        } else {
            BoundedConfig::default().startup_vertex_sweeps
        };
        let bounded_cfg = BoundedConfig {
            depth: config.depth,
            gamma_cutoff: config.gamma_cutoff,
            startup_vertex_sweeps,
            ..BoundedConfig::default()
        };
        let anytime_cfg = AnytimeConfig {
            node_budget: config.anytime_node_budget,
            gamma_cutoff: config.gamma_cutoff,
            ..AnytimeConfig::default()
        };
        let bounded = LumpedController::new(
            BoundedController::new(planning_model, bounded_cfg)?,
            certificate,
        );
        let anytime = AnytimeController::new(terminated, anytime_cfg)?;
        let resilient =
            ResilientController::new(model.clone(), bounded.clone(), ResilienceConfig::default())?
                .with_anytime(anytime.clone())?;
        Ok(Prototypes {
            bounded,
            resilient,
            anytime,
        })
    }
}

impl<'m> Daemon<'m> {
    /// Builds a daemon for `model`: validates the configuration and
    /// the perturbation plan, runs the lint gate (error findings
    /// reject the model; warnings are surfaced in startup logs and the
    /// report), and constructs the three ladder prototypes.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidInput`] for invalid configuration.
    /// * [`Error::Lint`] if the model has an error-severity finding.
    /// * Controller construction failures.
    pub fn new(model: &'m RecoveryModel, config: ServeConfig) -> Result<Daemon<'m>, Error> {
        let protos = Prototypes::build(model, &config)?;
        Daemon::with_prototypes(model, config, protos)
    }

    /// Like [`Daemon::new`], but reuses pre-built ladder prototypes
    /// (see [`Prototypes::build`]) instead of constructing them —
    /// controller construction dominates startup on large models, so
    /// a harness spinning up several daemons over the same model
    /// (reference runs, shard sweeps, kill/resume legs) should build
    /// once and clone.
    ///
    /// The prototypes must have been built for this `model` with the
    /// same planning parameters (`operator_response_time`, `depth`,
    /// `gamma_cutoff`, `anytime_node_budget`); other config fields
    /// (sharding, checkpointing, kill drills) are free to differ.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidInput`] for invalid configuration.
    /// * [`Error::Lint`] if the model has an error-severity finding.
    pub fn with_prototypes(
        model: &'m RecoveryModel,
        config: ServeConfig,
        protos: Prototypes,
    ) -> Result<Daemon<'m>, Error> {
        config.validate()?;
        config.plan.validate(model)?;
        let report = lint_pomdp(model.base(), &model.lint_context());
        if report.has_errors() {
            return Err(Error::Lint { report });
        }
        let (expected, lint_warnings): (Vec<Diagnostic>, Vec<Diagnostic>) = report
            .diagnostics()
            .iter()
            .cloned()
            .partition(|d| config.expected_warnings.contains(&d.code));
        let suppressed_lint_warnings = expected.len() as u64;
        if config.verbose {
            for d in &lint_warnings {
                eprintln!("[bpr-serve] model lint: {d}");
            }
        }
        let pool = WorkPool::new(config.shards).map_err(|e| Error::InvalidInput {
            detail: format!("serve worker pool: {e}"),
        })?;
        Ok(Daemon {
            model,
            config,
            protos,
            pool,
            lint_warnings,
            suppressed_lint_warnings,
            queue: VecDeque::new(),
            live: Vec::new(),
            records: Vec::new(),
            tick: 0,
            rounds: 0,
            next_id: 0,
            events_seen: 0,
            shed: ShedCounts::default(),
            admitted: 0,
            degraded_admissions: 0,
            escalated_resilient: 0,
            escalated_anytime: 0,
            decisions: 0,
            latency: LatencyHistogram::default(),
            deadline_misses: 0,
            resumed_from: None,
            events_seen_at_start: 0,
            checkpoints_written: 0,
            snapshot_retries: 0,
            snapshot_error: None,
            generation: 0,
            part_cache: PartitionCache::default(),
            partition_errors: Vec::new(),
            records_dropped: 0,
        })
    }

    /// The model's warn/info lint findings (startup-surfaced).
    pub fn lint_warnings(&self) -> &[Diagnostic] {
        &self.lint_warnings
    }

    /// Session fingerprint: config, model shape, and event stream.
    fn fingerprint(&self, source: &dyn EventSource) -> u64 {
        let text = format!(
            "{} model={}x{}x{} source={:016x}",
            self.config.fingerprint_text(),
            self.model.base().n_states(),
            self.model.base().n_actions(),
            self.model.base().n_observations(),
            source.fingerprint(),
        );
        fnv1a64(text.as_bytes())
    }

    /// Runs the daemon until the source is exhausted and every queued
    /// and live incident has drained (or until the kill drill fires),
    /// then returns the report. A final snapshot is flushed on every
    /// exit path when a checkpoint policy is configured.
    ///
    /// # Errors
    ///
    /// Configuration/model errors from incident admission. Snapshot
    /// failures never abort the run — they are retried with backoff,
    /// then absorbed into the report (`snapshot_error`): durability
    /// degrades, service continues.
    pub fn run(&mut self, source: &mut dyn EventSource) -> Result<ServeReport, Error> {
        let start = Instant::now();
        self.try_resume(source)?;

        let mut exhausted = false;
        let mut killed = false;
        let mut rounds_this_run: u64 = 0;
        let mut rounds_since_cp: usize = 0;
        let mut last_cp = Instant::now();

        loop {
            if let Some(k) = self.config.kill_after_rounds {
                if rounds_this_run >= k
                    && !(exhausted && self.queue.is_empty() && self.live.is_empty())
                {
                    killed = true;
                    break;
                }
            }
            if !exhausted {
                match source.poll() {
                    Some(events) => {
                        self.tick += 1;
                        for e in events {
                            self.events_seen += 1;
                            if self.queue.len() >= self.config.queue_capacity {
                                self.shed.queue_full += 1;
                            } else {
                                self.queue.push_back(e.fault);
                            }
                        }
                    }
                    None => exhausted = true,
                }
            }
            self.admit()?;
            if !self.live.is_empty() {
                self.step_round();
            }
            self.rounds += 1;
            rounds_this_run += 1;
            rounds_since_cp += 1;

            if let Some(policy) = self.config.checkpoint.clone() {
                if policy.due(rounds_since_cp, last_cp.elapsed()) {
                    self.write_checkpoint(source);
                    rounds_since_cp = 0;
                    last_cp = Instant::now();
                }
            }
            if exhausted && self.queue.is_empty() && self.live.is_empty() {
                break;
            }
        }

        // Graceful drain and kill both flush a final snapshot.
        if self.config.checkpoint.is_some() {
            self.write_checkpoint(source);
        }

        let mut records = self.records.clone();
        records.sort_by_key(|r| r.id);
        Ok(ServeReport {
            events_seen: self.events_seen,
            shed: self.shed,
            admitted: self.admitted,
            degraded_admissions: self.degraded_admissions,
            escalated_resilient: self.escalated_resilient,
            escalated_anytime: self.escalated_anytime,
            decisions: self.decisions,
            records,
            live_at_exit: self.live.len() as u64,
            queued_at_exit: self.queue.len() as u64,
            ticks: self.tick,
            rounds: self.rounds,
            killed,
            resumed_from: self.resumed_from,
            events_seen_at_start: self.events_seen_at_start,
            checkpoints_written: self.checkpoints_written,
            snapshot_retries: self.snapshot_retries,
            snapshot_error: self.snapshot_error.clone(),
            partition_errors: self.partition_errors.clone(),
            records_dropped: self.records_dropped,
            lint_warnings: self.lint_warnings.clone(),
            suppressed_lint_warnings: self.suppressed_lint_warnings,
            transport: source.transport_counts(),
            latency: self.latency.clone(),
            deadline_misses: self.deadline_misses,
            deadline: self.config.deadline,
            wall_seconds: start.elapsed().as_secs_f64(),
        })
    }

    /// Admits queued incidents while capacity allows. Under backlog at
    /// or beyond `degrade_queue_depth` the new incident starts
    /// directly on the anytime rung — a budgeted decision now beats a
    /// perfect decision after the deadline.
    fn admit(&mut self) -> Result<(), Error> {
        while self.live.len() < self.config.max_live {
            let backlog = self.queue.len();
            let Some(fault) = self.queue.pop_front() else {
                break;
            };
            let rung = if backlog >= self.config.degrade_queue_depth {
                RungKind::Anytime
            } else {
                RungKind::Bounded
            };
            let id = self.next_id;
            self.next_id += 1;
            self.admitted += 1;
            if rung == RungKind::Anytime {
                self.degraded_admissions += 1;
            }
            match Incident::admit(self.model, id, fault, rung, &self.protos, &self.config) {
                Ok(incident) => self.live.push(incident),
                // Typed failure record: admission itself failed, but
                // the incident is still accounted for (zero loss).
                Err(e) => self.records.push(IncidentRecord {
                    id,
                    fault,
                    status: IncidentStatus::ControllerError,
                    steps: 0,
                    cost: 0.0,
                    decision_hash: crate::incident::DECISION_HASH_SEED,
                    admitted_rung: rung,
                    final_rung: rung,
                    escalations: 0,
                    detail: e.to_string(),
                    actions: self.config.record_actions.then(Vec::new),
                }),
            }
        }
        Ok(())
    }

    /// Steps every live incident `steps_per_round` decisions, sharded
    /// over the pool with panic isolation. Results are consumed in
    /// index order, which keeps the live list deterministic at any
    /// shard width.
    fn step_round(&mut self) {
        let n = self.live.len();
        let meta: Vec<QuarantineMeta> = self
            .live
            .iter()
            .map(|i| QuarantineMeta {
                id: i.id,
                fault: i.fault,
                admitted_rung: i.admitted_rung,
                rung: i.rung_kind(),
                escalations: i.escalations,
                steps: i.steps,
                cost: i.cost,
                decision_hash: i.decision_hash,
                actions: i.actions.clone(),
            })
            .collect();
        let slots: Vec<Mutex<Option<Incident<'m>>>> =
            self.live.drain(..).map(|i| Mutex::new(Some(i))).collect();
        let protos = &self.protos;
        let config = &self.config;
        let steps = self.config.steps_per_round;

        let results = self.pool.map_indices_isolated(n, |i| {
            let mut incident = slots[i]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take()
                .expect("incident slot must be occupied before its round");
            let mut out = RoundResult {
                live: None,
                record: None,
                latencies: Vec::with_capacity(steps),
                escalated_resilient: 0,
                escalated_anytime: 0,
                decisions: 0,
            };
            for _ in 0..steps {
                let step = incident.step(protos, config);
                out.decisions += 1;
                out.latencies.push(step.latency_ns);
                match step.escalated_to {
                    Some(RungKind::Resilient) => out.escalated_resilient += 1,
                    Some(RungKind::Anytime) => out.escalated_anytime += 1,
                    _ => {}
                }
                if let Some((status, detail)) = step.done {
                    out.record = Some(incident.into_record(status, detail));
                    return out;
                }
            }
            out.live = Some(incident);
            out
        });

        let deadline_ns = u64::try_from(self.config.deadline.as_nanos()).unwrap_or(u64::MAX);
        for result in results {
            match result {
                Ok(r) => {
                    self.decisions += r.decisions;
                    self.escalated_resilient += r.escalated_resilient;
                    self.escalated_anytime += r.escalated_anytime;
                    for ns in r.latencies {
                        self.latency.record(ns);
                        if ns > deadline_ns {
                            self.deadline_misses += 1;
                        }
                    }
                    if let Some(record) = r.record {
                        self.records.push(record);
                    } else if let Some(incident) = r.live {
                        self.live.push(incident);
                    }
                }
                Err(q) => {
                    let m = &meta[q.index];
                    self.records.push(IncidentRecord {
                        id: m.id,
                        fault: m.fault,
                        status: IncidentStatus::Quarantined,
                        steps: m.steps,
                        cost: m.cost,
                        decision_hash: m.decision_hash,
                        admitted_rung: m.admitted_rung,
                        final_rung: m.rung,
                        escalations: m.escalations,
                        detail: sanitize(&q.payload),
                        actions: m.actions.clone(),
                    });
                }
            }
        }
    }

    /// Attempts to resume from the configured checkpoint. A missing
    /// file is a fresh start; an unreadable or incompatible one is
    /// recorded in the report and degrades to a fresh start — a bad
    /// checkpoint never takes the service down.
    fn try_resume(&mut self, source: &mut dyn EventSource) -> Result<(), Error> {
        let Some(policy) = self.config.checkpoint.clone() else {
            return Ok(());
        };
        let (cp, generation, outcomes) = match ServeCheckpoint::load_partitioned(&policy.path) {
            Ok(None) => return Ok(()),
            Ok(Some(loaded)) => loaded,
            Err(e) => {
                self.snapshot_error = Some(e);
                return Ok(());
            }
        };
        let expected = self.fingerprint(source);
        if cp.fingerprint != expected {
            self.snapshot_error = Some(SnapshotError::Incompatible {
                detail: format!(
                    "checkpoint fingerprint {:016x} does not match session {expected:016x}",
                    cp.fingerprint
                ),
            });
            return Ok(());
        }
        if self.config.verbose {
            eprintln!(
                "[bpr-serve] resuming from tick {} ({} closed, {} live, {} degraded partitions)",
                cp.tick,
                cp.records.len(),
                cp.live.len(),
                outcomes.len(),
            );
        }
        self.generation = generation;
        self.events_seen_at_start = cp.events_seen;
        self.records_dropped = outcomes.iter().map(|o| o.records_dropped).sum();
        self.partition_errors = outcomes;
        self.tick = cp.tick;
        self.rounds = cp.rounds;
        self.next_id = cp.next_id;
        self.events_seen = cp.events_seen;
        self.shed.queue_full = cp.shed_queue_full;
        self.admitted = cp.admitted;
        self.degraded_admissions = cp.degraded_admissions;
        self.escalated_resilient = cp.escalated_resilient;
        self.escalated_anytime = cp.escalated_anytime;
        self.decisions = cp.decisions;
        self.queue = cp.queue.into_iter().collect();
        self.records = cp.records;
        self.resumed_from = Some(cp.tick);
        source.skip_ticks(cp.tick);

        // Replay every surviving incident from step 0 to its recorded
        // position: the controller, belief, world, and RNG states are
        // pure functions of (master_seed, id, admission rung), so this
        // reconstructs exactly what the killed run held. Counters were
        // restored from the checkpoint above, so replayed decisions
        // are not re-counted.
        for d in cp.live {
            let mut incident = Incident::admit(
                self.model,
                d.id,
                d.fault,
                d.admitted_rung,
                &self.protos,
                &self.config,
            )?;
            let mut done = None;
            while incident.steps < d.steps {
                let step = incident.step(&self.protos, &self.config);
                if let Some(terminal) = step.done {
                    // Unreachable for a faithful checkpoint (the
                    // incident was live at this step count); close it
                    // out defensively rather than diverge silently.
                    done = Some(terminal);
                    break;
                }
            }
            match done {
                Some((status, detail)) => self.records.push(incident.into_record(status, detail)),
                None => self.live.push(incident),
            }
        }
        Ok(())
    }

    /// Writes the current state as a partitioned checkpoint (dirty
    /// partitions first, manifest last) with capped
    /// exponential-backoff retry. Failures are absorbed (see
    /// [`Daemon::run`]).
    fn write_checkpoint(&mut self, source: &dyn EventSource) {
        let Some(policy) = self.config.checkpoint.clone() else {
            return;
        };
        self.generation += 1;
        let generation = self.generation;
        let partitions = u32::try_from(self.config.checkpoint_partitions).unwrap_or(u32::MAX);
        let cp = ServeCheckpoint {
            fingerprint: self.fingerprint(source),
            tick: self.tick,
            rounds: self.rounds,
            next_id: self.next_id,
            events_seen: self.events_seen,
            shed_queue_full: self.shed.queue_full,
            admitted: self.admitted,
            degraded_admissions: self.degraded_admissions,
            escalated_resilient: self.escalated_resilient,
            escalated_anytime: self.escalated_anytime,
            decisions: self.decisions,
            queue: self.queue.iter().copied().collect(),
            live: self
                .live
                .iter()
                .map(|i| LiveIncident {
                    id: i.id,
                    fault: i.fault,
                    admitted_rung: i.admitted_rung,
                    steps: i.steps,
                })
                .collect(),
            records: self.records.clone(),
        };
        let retry = self.config.retry.clone();
        let cache = &mut self.part_cache;
        let mut retries: u64 = 0;
        let written = retry_with_backoff(
            &retry,
            |_| cp.save_partitioned(&policy.path, partitions, generation, cache),
            |backoff| {
                retries += 1;
                std::thread::sleep(backoff);
            },
        );
        self.snapshot_retries += retries;
        match written {
            Ok(()) => self.checkpoints_written += 1,
            Err(e) => self.snapshot_error = Some(e),
        }
    }
}
