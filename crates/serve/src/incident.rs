//! One live incident: a belief + controller + simulated world, stepped
//! by the daemon until it reaches a typed terminal status.
//!
//! Every incident climbs a deterministic **escalation ladder**:
//!
//! 1. [`RungKind::Bounded`] — the fused-kernel bounded controller, the
//!    paper's planner at full quality;
//! 2. [`RungKind::Resilient`] — the hardened decorator, entered after
//!    `escalate_resilient_after` decisions without termination;
//! 3. [`RungKind::Anytime`] — the budgeted anytime planner, entered
//!    after `escalate_anytime_after` decisions (or immediately at
//!    admission when the daemon is overloaded).
//!
//! Escalation is a pure function of the incident's decision count —
//! never of wall-clock time — so a serve run is bit-identical at any
//! shard width and across kill/resume. Wall-clock deadlines are
//! *observed* (measured and reported), not *acted on*.

use crate::daemon::ServeConfig;
use bpr_core::snapshot::SnapshotError;
use bpr_core::{
    AnytimeController, BoundedController, LumpedController, RecoveryController, RecoveryModel,
    ResilientController, Step,
};
use bpr_mdp::StateId;
use bpr_pomdp::Belief;
use bpr_sim::{detection_belief, DegradedWorld, PerturbationPlan, SimWorld};
use rand::rngs::StdRng;
use rand::{split_seed, SeedableRng};
use std::time::Instant;

/// Which rung of the escalation ladder a controller sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RungKind {
    /// Full-quality bounded planner.
    Bounded,
    /// Hardened [`ResilientController`] around the bounded planner.
    Resilient,
    /// Budgeted anytime planner (degraded service under overload).
    Anytime,
}

impl RungKind {
    /// Stable tag used in checkpoints and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            RungKind::Bounded => "bounded",
            RungKind::Resilient => "resilient",
            RungKind::Anytime => "anytime",
        }
    }

    /// Parses [`RungKind::as_str`] output.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] for an unknown tag.
    pub fn parse(s: &str) -> Result<RungKind, SnapshotError> {
        match s {
            "bounded" => Ok(RungKind::Bounded),
            "resilient" => Ok(RungKind::Resilient),
            "anytime" => Ok(RungKind::Anytime),
            other => Err(SnapshotError::Malformed {
                detail: format!("unknown rung {other:?}"),
            }),
        }
    }
}

/// How an incident ended. Every admitted incident reaches exactly one
/// of these — the "no silent loss" contract the soak harness gates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentStatus {
    /// The controller terminated with the world in a null-fault state.
    Recovered,
    /// The controller terminated while the fault was still present.
    TerminatedFaulty,
    /// The per-incident step cap cut the incident off.
    StepLimit,
    /// The controller returned a typed error mid-incident.
    ControllerError,
    /// The incident's worker panicked and was quarantined by the
    /// pool's isolation layer.
    Quarantined,
}

impl IncidentStatus {
    /// Stable tag used in checkpoints and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            IncidentStatus::Recovered => "recovered",
            IncidentStatus::TerminatedFaulty => "terminated-faulty",
            IncidentStatus::StepLimit => "step-limit",
            IncidentStatus::ControllerError => "controller-error",
            IncidentStatus::Quarantined => "quarantined",
        }
    }

    /// Parses [`IncidentStatus::as_str`] output.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] for an unknown tag.
    pub fn parse(s: &str) -> Result<IncidentStatus, SnapshotError> {
        match s {
            "recovered" => Ok(IncidentStatus::Recovered),
            "terminated-faulty" => Ok(IncidentStatus::TerminatedFaulty),
            "step-limit" => Ok(IncidentStatus::StepLimit),
            "controller-error" => Ok(IncidentStatus::ControllerError),
            "quarantined" => Ok(IncidentStatus::Quarantined),
            other => Err(SnapshotError::Malformed {
                detail: format!("unknown incident status {other:?}"),
            }),
        }
    }
}

/// The closed-out record of one incident — the canonical unit the
/// determinism and zero-loss gates compare.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentRecord {
    /// Admission-order incident id (also its RNG stream index).
    pub id: u64,
    /// The injected fault behind the incident.
    pub fault: StateId,
    /// Terminal status.
    pub status: IncidentStatus,
    /// Decisions the controller made (terminate included).
    pub steps: usize,
    /// Accumulated cost (negated model rewards of executed actions).
    pub cost: f64,
    /// FNV-1a hash over the decision sequence — the compact witness
    /// that two runs made identical decisions.
    pub decision_hash: u64,
    /// Rung the incident was admitted on.
    pub admitted_rung: RungKind,
    /// Rung the incident ended on.
    pub final_rung: RungKind,
    /// Ladder escalations taken.
    pub escalations: usize,
    /// Error / panic payload for the failure statuses; empty otherwise.
    pub detail: String,
    /// Full decision sequence (`-1` = terminate), recorded only when
    /// [`ServeConfig::record_actions`] is set.
    pub actions: Option<Vec<i64>>,
}

/// The escalation-ladder prototypes, built once and cloned at
/// admission — incident startup must not pay planner construction
/// (bound bootstrap sweeps) per event.
///
/// Construction is the dominant daemon-startup cost on large models
/// (minutes at 10³ states), so a harness that runs *several* daemons
/// over the same model — reference run, shard sweep, kill/resume
/// legs — should call `Prototypes::build` once and hand each daemon
/// a clone via `Daemon::with_prototypes`.
#[derive(Debug, Clone)]
pub struct Prototypes {
    pub(crate) bounded: LumpedBounded,
    pub(crate) resilient: ResilientController<LumpedBounded>,
    pub(crate) anytime: AnytimeController,
}

/// The bounded rung as the daemon builds it: a bounded controller
/// planning on the (possibly identity-)lumped quotient, speaking the
/// full model's belief vocabulary through the certificate adapter.
pub(crate) type LumpedBounded = LumpedController<BoundedController>;

/// A live controller on some rung of the ladder. The resilient
/// decorator wraps a full bounded controller plus its anytime
/// fallback, so it is boxed to keep the variant sizes comparable.
#[derive(Debug, Clone)]
enum Rung {
    Bounded(LumpedBounded),
    Resilient(Box<ResilientController<LumpedBounded>>),
    Anytime(AnytimeController),
}

impl Rung {
    fn kind(&self) -> RungKind {
        match self {
            Rung::Bounded(_) => RungKind::Bounded,
            Rung::Resilient(_) => RungKind::Resilient,
            Rung::Anytime(_) => RungKind::Anytime,
        }
    }

    fn ctrl(&mut self) -> &mut dyn RecoveryController {
        match self {
            Rung::Bounded(c) => c,
            Rung::Resilient(c) => c.as_mut(),
            Rung::Anytime(c) => c,
        }
    }

    fn belief(&self) -> Option<Belief> {
        match self {
            Rung::Bounded(c) => c.belief(),
            Rung::Resilient(c) => c.belief(),
            Rung::Anytime(c) => c.belief(),
        }
    }

    fn from_proto(protos: &Prototypes, kind: RungKind) -> Rung {
        match kind {
            RungKind::Bounded => Rung::Bounded(protos.bounded.clone()),
            RungKind::Resilient => Rung::Resilient(Box::new(protos.resilient.clone())),
            RungKind::Anytime => Rung::Anytime(protos.anytime.clone()),
        }
    }
}

/// What one [`Incident::step`] produced, for the daemon's accounting.
#[derive(Debug)]
pub(crate) struct StepOutcome {
    /// Terminal status + detail, or `None` while the incident lives.
    pub done: Option<(IncidentStatus, String)>,
    /// Wall-clock nanoseconds the decision took (observed, never fed
    /// back into control).
    pub latency_ns: u64,
    /// Ladder rung entered by this step, if any.
    pub escalated_to: Option<RungKind>,
}

/// One live incident (see the module docs).
#[derive(Debug)]
pub(crate) struct Incident<'m> {
    pub id: u64,
    pub fault: StateId,
    pub admitted_rung: RungKind,
    pub escalations: usize,
    pub steps: usize,
    pub cost: f64,
    pub decision_hash: u64,
    pub actions: Option<Vec<i64>>,
    model: &'m RecoveryModel,
    rung: Rung,
    world: DegradedWorld<'m>,
    rng: StdRng,
}

/// FNV-1a continuation: folds `value` into a running decision hash.
fn fold_hash(hash: u64, value: u64) -> u64 {
    let mut h = hash;
    for b in value.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Seed of the FNV-1a decision hash (the standard offset basis).
pub(crate) const DECISION_HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;

impl<'m> Incident<'m> {
    /// Admits a new incident: builds its degraded world on a private
    /// RNG stream, conditions the initial belief on the detection
    /// observation (same protocol as the episode harness), and begins
    /// a controller cloned from the `rung` prototype.
    ///
    /// # Errors
    ///
    /// Propagates world construction and controller `begin` failures.
    pub fn admit(
        model: &'m RecoveryModel,
        id: u64,
        fault: StateId,
        rung_kind: RungKind,
        protos: &Prototypes,
        config: &ServeConfig,
    ) -> Result<Incident<'m>, bpr_core::Error> {
        let plan = PerturbationPlan {
            seed: split_seed(config.plan.seed, id),
            ..config.plan.clone()
        };
        let mut world = DegradedWorld::new(model, fault, plan)?;
        let mut rng = StdRng::seed_from_stream(config.master_seed, id);
        let mut rung = Rung::from_proto(protos, rung_kind);
        let initial = detection_belief(model, rung.ctrl().uses_monitors(), &mut world, &mut rng)?;
        rung.ctrl().begin(initial, Some(fault))?;
        Ok(Incident {
            id,
            fault,
            admitted_rung: rung_kind,
            escalations: 0,
            steps: 0,
            cost: 0.0,
            decision_hash: DECISION_HASH_SEED,
            actions: config.record_actions.then(Vec::new),
            model,
            rung,
            world,
            rng,
        })
    }

    /// Current ladder rung.
    pub fn rung_kind(&self) -> RungKind {
        self.rung.kind()
    }

    /// Moves the controller up the ladder, handing the current belief
    /// to the next rung (falling back to the uniform fault prior when
    /// the rung exposes none).
    fn escalate(&mut self, protos: &Prototypes, to: RungKind) -> Result<(), bpr_core::Error> {
        let model = self.model;
        let belief = self.rung.belief().unwrap_or_else(|| {
            Belief::uniform_over(model.base().n_states(), &model.fault_states())
        });
        let mut next = Rung::from_proto(protos, to);
        next.ctrl().begin(belief, Some(self.fault))?;
        self.rung = next;
        self.escalations += 1;
        Ok(())
    }

    /// Runs one decision: escalates if the ladder says so, asks the
    /// controller, executes the action against the world, and delivers
    /// the observation.
    ///
    /// # Panics
    ///
    /// Panics deliberately when the daemon's chaos drill names this
    /// incident — the panic is caught by the pool's isolation layer
    /// and surfaces as a quarantine, which is exactly what the drill
    /// verifies.
    pub fn step(&mut self, protos: &Prototypes, config: &ServeConfig) -> StepOutcome {
        if config.chaos_panic_incidents.contains(&self.id) {
            // Chaos drill: a poisoned incident must not kill the
            // daemon; map_indices_isolated turns this into a typed
            // quarantine record.
            panic!("chaos drill: incident {} poisoned by config", self.id);
        }
        let mut escalated_to = None;
        let target = if self.steps >= config.escalate_anytime_after {
            RungKind::Anytime
        } else if self.steps >= config.escalate_resilient_after {
            RungKind::Resilient
        } else {
            RungKind::Bounded
        };
        if target > self.rung.kind() {
            if let Err(e) = self.escalate(protos, target) {
                return StepOutcome {
                    done: Some((IncidentStatus::ControllerError, e.to_string())),
                    latency_ns: 0,
                    escalated_to: None,
                };
            }
            escalated_to = Some(target);
        }

        let t0 = Instant::now();
        let decision = self.rung.ctrl().decide();
        let latency_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);

        let done = match decision {
            Err(e) => Some((IncidentStatus::ControllerError, e.to_string())),
            Ok(Step::Terminate) => {
                self.steps += 1;
                self.decision_hash = fold_hash(self.decision_hash, u64::MAX);
                if let Some(actions) = &mut self.actions {
                    actions.push(-1);
                }
                if self.world.recovered() {
                    Some((IncidentStatus::Recovered, String::new()))
                } else {
                    Some((IncidentStatus::TerminatedFaulty, String::new()))
                }
            }
            Ok(Step::Execute(a)) => {
                self.steps += 1;
                self.decision_hash = fold_hash(self.decision_hash, a.index() as u64);
                if let Some(actions) = &mut self.actions {
                    actions.push(i64::try_from(a.index()).unwrap_or(i64::MAX));
                }
                self.cost += -self.model.base().mdp().reward(self.world.true_state(), a);
                let result = self.world.step_world(&mut self.rng, a);
                let delivered = if self.rung.ctrl().uses_monitors() {
                    match result.observation {
                        Some(obs) => self.rung.ctrl().observe(a, obs),
                        None => self.rung.ctrl().on_unobserved(a),
                    }
                } else {
                    Ok(())
                };
                match delivered {
                    Err(e) => Some((IncidentStatus::ControllerError, e.to_string())),
                    Ok(()) if self.steps >= config.max_steps => {
                        Some((IncidentStatus::StepLimit, String::new()))
                    }
                    Ok(()) => None,
                }
            }
        };
        StepOutcome {
            done,
            latency_ns,
            escalated_to,
        }
    }

    /// Closes the incident into its permanent record.
    pub fn into_record(self, status: IncidentStatus, detail: String) -> IncidentRecord {
        IncidentRecord {
            id: self.id,
            fault: self.fault,
            status,
            steps: self.steps,
            cost: self.cost,
            decision_hash: self.decision_hash,
            admitted_rung: self.admitted_rung,
            final_rung: self.rung.kind(),
            escalations: self.escalations,
            detail,
            actions: self.actions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rung_and_status_tags_roundtrip() {
        for k in [RungKind::Bounded, RungKind::Resilient, RungKind::Anytime] {
            assert_eq!(RungKind::parse(k.as_str()).unwrap(), k);
        }
        for s in [
            IncidentStatus::Recovered,
            IncidentStatus::TerminatedFaulty,
            IncidentStatus::StepLimit,
            IncidentStatus::ControllerError,
            IncidentStatus::Quarantined,
        ] {
            assert_eq!(IncidentStatus::parse(s.as_str()).unwrap(), s);
        }
        assert!(RungKind::parse("x").is_err());
        assert!(IncidentStatus::parse("x").is_err());
    }

    #[test]
    fn ladder_orders_rungs() {
        assert!(RungKind::Bounded < RungKind::Resilient);
        assert!(RungKind::Resilient < RungKind::Anytime);
    }

    #[test]
    fn decision_hash_is_order_sensitive() {
        let a = fold_hash(fold_hash(DECISION_HASH_SEED, 1), 2);
        let b = fold_hash(fold_hash(DECISION_HASH_SEED, 2), 1);
        assert_ne!(a, b);
    }
}
