//! Real transport ingestion: a dependency-free wire codec and a TCP
//! [`SocketSource`] behind the [`EventSource`] trait.
//!
//! # Wire format
//!
//! Every frame is length-prefixed, versioned, and checksummed:
//!
//! ```text
//!  offset  size  field
//!  0       4     magic  "BPRF"
//!  4       1     version (currently 1)
//!  5       1     kind    (0 = event, 1 = end-of-stream)
//!  6       2     payload length, little-endian
//!  8       8     FNV-1a 64 checksum of the payload, little-endian
//!  16      len   payload
//! ```
//!
//! An **event** payload is `tick:u64 seq:u32 fault:u32` (all
//! little-endian): the logical tick the event belongs to, its sequence
//! number within that tick, and the fault state id. An **end** payload
//! is `ticks:u64`, the total tick count of the stream.
//!
//! Carrying `(tick, seq)` on the wire is what keeps canonical serve
//! reports a pure function of the *logical* event sequence: the
//! [`SocketSource`] buffers frames per tick, releases a tick only once
//! a later tick (or the end marker) proves it complete, and orders
//! events within a tick by `seq` — so network timing, partial writes,
//! and reconnects perturb wall-clock behaviour but never the decision
//! sequence.
//!
//! # Failure containment
//!
//! Malformed bytes never panic and never take a valid event with
//! them: the [`FrameDecoder`] rejects garbage, wrong-version,
//! wrong-kind, oversized, mis-sized, and checksum-failing frames with
//! a typed [`FrameError`], then resynchronises by scanning for the
//! next magic. Every rejection increments exactly one counter in
//! [`TransportCounts`], which the soak harness folds into its
//! zero-loss accounting
//! (`admitted + shed + queued + rejected == frames_seen`).

use crate::event::{EventSource, IncidentEvent};
use bpr_core::snapshot::fnv1a64;
use bpr_core::Error;
use bpr_mdp::StateId;
use std::collections::BTreeMap;
use std::fmt;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Frame magic; anything else on the wire is scanned past as garbage.
pub const FRAME_MAGIC: [u8; 4] = *b"BPRF";
/// Wire format version this build speaks.
pub const WIRE_VERSION: u8 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 16;
/// Hard cap on payload length; larger declarations are rejected
/// without waiting for (or allocating) the declared bytes.
pub const MAX_PAYLOAD: usize = 64;

const KIND_EVENT: u8 = 0;
const KIND_END: u8 = 1;
const EVENT_PAYLOAD_LEN: usize = 16;
const END_PAYLOAD_LEN: usize = 8;

/// One decoded wire frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frame {
    /// A monitor event: `fault` arrived at logical `tick`, in
    /// within-tick position `seq`.
    Event {
        /// Logical tick the event belongs to.
        tick: u64,
        /// Sequence number within the tick (delivery order).
        seq: u32,
        /// Fault state id behind the notification.
        fault: StateId,
    },
    /// End-of-stream marker: the stream covers `ticks` ticks total.
    End {
        /// Total ticks of the stream.
        ticks: u64,
    },
}

impl Frame {
    /// Serialises the frame (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let (kind, payload) = match self {
            Frame::Event { tick, seq, fault } => {
                let mut p = Vec::with_capacity(EVENT_PAYLOAD_LEN);
                p.extend_from_slice(&tick.to_le_bytes());
                p.extend_from_slice(&seq.to_le_bytes());
                p.extend_from_slice(
                    &u32::try_from(fault.index())
                        .unwrap_or(u32::MAX)
                        .to_le_bytes(),
                );
                (KIND_EVENT, p)
            }
            Frame::End { ticks } => (KIND_END, ticks.to_le_bytes().to_vec()),
        };
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&FRAME_MAGIC);
        out.push(WIRE_VERSION);
        out.push(kind);
        out.extend_from_slice(
            &u16::try_from(payload.len())
                .unwrap_or(u16::MAX)
                .to_le_bytes(),
        );
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

/// Why a stretch of wire bytes was rejected. Every variant is counted
/// in [`TransportCounts`]; none of them ever aborts the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Bytes between frames that never formed a magic; `skipped` bytes
    /// were discarded resynchronising.
    Garbage {
        /// Bytes discarded.
        skipped: usize,
    },
    /// A frame declared a wire version this build cannot read.
    Version {
        /// Version byte found.
        found: u8,
    },
    /// A frame declared an unknown kind.
    Kind {
        /// Kind byte found.
        found: u8,
    },
    /// A frame declared a payload longer than [`MAX_PAYLOAD`].
    Oversized {
        /// Declared payload length.
        len: usize,
    },
    /// A frame's payload length does not match its kind.
    Length {
        /// Kind byte of the frame.
        kind: u8,
        /// Declared payload length.
        len: usize,
    },
    /// The payload checksum does not match the header (bit flip or
    /// truncation spliced into a following frame).
    Checksum {
        /// Checksum the header declared.
        expected: u64,
        /// Checksum of the payload as read.
        actual: u64,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Garbage { skipped } => write!(f, "skipped {skipped} garbage bytes"),
            FrameError::Version { found } => write!(f, "unreadable wire version {found}"),
            FrameError::Kind { found } => write!(f, "unknown frame kind {found}"),
            FrameError::Oversized { len } => {
                write!(f, "declared payload of {len} bytes exceeds {MAX_PAYLOAD}")
            }
            FrameError::Length { kind, len } => {
                write!(f, "kind {kind} frame with mis-sized {len}-byte payload")
            }
            FrameError::Checksum { expected, actual } => write!(
                f,
                "payload checksum {actual:#018x} where header says {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame decoder: feed bytes as they arrive, pull frames
/// and typed rejections out. After any rejection the decoder
/// resynchronises by scanning for the next magic, so one corrupt
/// frame never swallows the valid frames behind it.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends newly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a frame or rejection.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// The next frame or typed rejection, or `None` when the buffer
    /// holds no complete item (feed more bytes).
    ///
    /// Deliberately named like `Iterator::next` — but unlike an
    /// iterator, `None` is not fused: `feed` can make more items
    /// available, so the decoder cannot honestly implement the trait.
    #[allow(clippy::should_implement_trait)]
    #[allow(clippy::missing_panics_doc)] // slice bounds are checked above every indexing
    pub fn next(&mut self) -> Option<Result<Frame, FrameError>> {
        // Not aligned on a magic: scan forward. Garbage runs surface
        // as one typed rejection each, not one per byte.
        if !self.buf.is_empty() && !self.buf.starts_with(&FRAME_MAGIC) {
            if let Some(at) = find_magic(&self.buf) {
                self.buf.drain(..at);
                return Some(Err(FrameError::Garbage { skipped: at }));
            }
            // No magic anywhere; keep a possible magic prefix at the
            // tail, drop the rest.
            let keep = magic_prefix_len(&self.buf);
            let skipped = self.buf.len() - keep;
            if skipped == 0 {
                return None;
            }
            self.buf.drain(..skipped);
            return Some(Err(FrameError::Garbage { skipped }));
        }
        if self.buf.len() < HEADER_LEN {
            return None;
        }
        let version = self.buf[4];
        let kind = self.buf[5];
        let len = usize::from(u16::from_le_bytes([self.buf[6], self.buf[7]]));
        let declared_sum = u64::from_le_bytes(self.buf[8..16].try_into().expect("8 bytes"));
        // Header-level rejections drop a single byte and rescan for
        // magic: a corrupted length field must not be trusted to skip
        // a whole (possibly valid) frame's worth of bytes.
        if version != WIRE_VERSION {
            self.buf.drain(..1);
            return Some(Err(FrameError::Version { found: version }));
        }
        if kind != KIND_EVENT && kind != KIND_END {
            self.buf.drain(..1);
            return Some(Err(FrameError::Kind { found: kind }));
        }
        if len > MAX_PAYLOAD {
            self.buf.drain(..1);
            return Some(Err(FrameError::Oversized { len }));
        }
        if self.buf.len() < HEADER_LEN + len {
            return None;
        }
        let payload = &self.buf[HEADER_LEN..HEADER_LEN + len];
        let actual_sum = fnv1a64(payload);
        if actual_sum != declared_sum {
            self.buf.drain(..1);
            return Some(Err(FrameError::Checksum {
                expected: declared_sum,
                actual: actual_sum,
            }));
        }
        let frame = match (kind, len) {
            (KIND_EVENT, EVENT_PAYLOAD_LEN) => Frame::Event {
                tick: u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes")),
                seq: u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes")),
                fault: StateId::new(
                    u32::from_le_bytes(payload[12..16].try_into().expect("4 bytes")) as usize,
                ),
            },
            (KIND_END, END_PAYLOAD_LEN) => Frame::End {
                ticks: u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes")),
            },
            _ => {
                self.buf.drain(..1);
                return Some(Err(FrameError::Length { kind, len }));
            }
        };
        self.buf.drain(..HEADER_LEN + len);
        Some(Ok(frame))
    }
}

fn find_magic(buf: &[u8]) -> Option<usize> {
    buf.windows(FRAME_MAGIC.len())
        .position(|w| w == FRAME_MAGIC)
}

/// Length of the longest proper magic prefix the buffer ends with
/// (bytes that might become a magic once more data arrives).
fn magic_prefix_len(buf: &[u8]) -> usize {
    for keep in (1..FRAME_MAGIC.len()).rev() {
        if buf.len() >= keep && buf[buf.len() - keep..] == FRAME_MAGIC[..keep] {
            return keep;
        }
    }
    0
}

/// Typed, counted transport telemetry. `frames_seen` counts every
/// wire item the decoder resolved — valid event frames (stale ones
/// included) plus one per typed rejection — so the soak's accounting
/// identity `frames_seen == events_delivered + rejected_frames()`
/// holds exactly once the stream has drained. End markers are tallied
/// separately. All of this is **observed** telemetry: it never feeds
/// back into control, so it is excluded from canonical reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportCounts {
    /// Event frames decoded plus rejections emitted (see above).
    pub frames_seen: u64,
    /// Events released to the daemon through `poll`.
    pub events_delivered: u64,
    /// End-of-stream markers decoded.
    pub end_frames: u64,
    /// Garbage runs scanned past between frames.
    pub rejected_garbage: u64,
    /// Frames with an unreadable wire version.
    pub rejected_version: u64,
    /// Frames with an unknown kind byte.
    pub rejected_kind: u64,
    /// Frames declaring a payload beyond [`MAX_PAYLOAD`].
    pub rejected_oversized: u64,
    /// Frames whose payload length does not fit their kind.
    pub rejected_length: u64,
    /// Frames failing their payload checksum.
    pub rejected_checksum: u64,
    /// Valid event frames for ticks already consumed (replay after a
    /// resume, or a client re-sending after reconnect).
    pub rejected_stale: u64,
    /// Duplicate `(tick, seq)` events dropped at release.
    pub rejected_duplicate: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Connections that closed (gracefully or by error).
    pub disconnects: u64,
    /// Connections shed for exceeding the per-connection read
    /// deadline (slow-loris defence).
    pub slow_client_drops: u64,
    /// Raw bytes read off all sockets.
    pub bytes_read: u64,
}

impl TransportCounts {
    /// Total typed frame rejections across every reason.
    pub fn rejected_frames(&self) -> u64 {
        self.rejected_garbage
            + self.rejected_version
            + self.rejected_kind
            + self.rejected_oversized
            + self.rejected_length
            + self.rejected_checksum
            + self.rejected_stale
            + self.rejected_duplicate
    }

    fn count_reject(&mut self, e: FrameError) {
        self.frames_seen += 1;
        match e {
            FrameError::Garbage { .. } => self.rejected_garbage += 1,
            FrameError::Version { .. } => self.rejected_version += 1,
            FrameError::Kind { .. } => self.rejected_kind += 1,
            FrameError::Oversized { .. } => self.rejected_oversized += 1,
            FrameError::Length { .. } => self.rejected_length += 1,
            FrameError::Checksum { .. } => self.rejected_checksum += 1,
        }
    }
}

/// Tuning knobs of a [`SocketSource`]. Everything here shapes
/// *observed* behaviour only (when clients are shed, how long the
/// source waits); the logical event sequence — and with it every
/// canonical report — is determined entirely by the frames clients
/// send.
#[derive(Debug, Clone)]
pub struct SocketConfig {
    /// Silence on a connection beyond this sheds it as a slow client.
    pub read_deadline: Duration,
    /// No bytes and no connections for this long ends the stream (or
    /// flushes buffered ticks when a client vanished without an end
    /// marker).
    pub idle_timeout: Duration,
    /// Initial sleep between pump attempts while waiting for data.
    pub poll_backoff: Duration,
    /// Cap on the doubling pump backoff.
    pub max_backoff: Duration,
    /// Stop reading sockets (TCP backpressure) while this many events
    /// are already buffered — the receive path is bounded just like
    /// the daemon's admission queue.
    pub max_buffered_events: usize,
}

impl Default for SocketConfig {
    fn default() -> SocketConfig {
        SocketConfig {
            read_deadline: Duration::from_millis(500),
            idle_timeout: Duration::from_secs(5),
            poll_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(5),
            max_buffered_events: 1 << 17,
        }
    }
}

struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    last_data: Instant,
}

/// A TCP listener serving the daemon through [`EventSource`].
///
/// Frames from any number of client connections are decoded
/// incrementally, buffered per logical tick, and released in tick
/// order with within-tick `seq` ordering. Tick `t` is released once a
/// frame for a tick beyond `t` (or the end marker) has been seen —
/// clients stream in tick order, so that proves `t` complete. The
/// result: disconnects, reconnects, partial writes, and garbage
/// bursts change *when* events arrive, never *which* events the
/// daemon processes in which order.
///
/// Resume: [`EventSource::skip_ticks`] raises the stale threshold, so
/// a client replaying its stream from tick 0 has the already-consumed
/// prefix rejected as typed stale frames while the tail is delivered
/// exactly once.
pub struct SocketSource {
    listener: TcpListener,
    config: SocketConfig,
    conns: Vec<Conn>,
    pending: BTreeMap<u64, Vec<(u32, StateId)>>,
    buffered_events: usize,
    next_tick: u64,
    max_tick_seen: Option<u64>,
    end_ticks: Option<u64>,
    counts: TransportCounts,
    stream_fingerprint: u64,
    had_connection: bool,
    last_progress: Instant,
    flushing: bool,
}

impl SocketSource {
    /// Binds a listener on `addr` (use port 0 for an ephemeral port,
    /// then [`SocketSource::local_addr`]).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] when the address cannot be bound.
    pub fn bind(addr: impl ToSocketAddrs, config: SocketConfig) -> Result<SocketSource, Error> {
        let listener = TcpListener::bind(addr).map_err(|e| Error::InvalidInput {
            detail: format!("socket source bind: {e}"),
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::InvalidInput {
                detail: format!("socket source nonblocking: {e}"),
            })?;
        Ok(SocketSource {
            listener,
            config,
            conns: Vec::new(),
            pending: BTreeMap::new(),
            buffered_events: 0,
            next_tick: 0,
            max_tick_seen: None,
            end_ticks: None,
            counts: TransportCounts::default(),
            stream_fingerprint: 0,
            had_connection: false,
            last_progress: Instant::now(),
            flushing: false,
        })
    }

    /// The bound address clients should connect to.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] when the OS cannot report it.
    pub fn local_addr(&self) -> Result<SocketAddr, Error> {
        self.listener.local_addr().map_err(|e| Error::InvalidInput {
            detail: format!("socket source local addr: {e}"),
        })
    }

    /// Binds the checkpoint fingerprint to the logical stream the
    /// caller will serve over this socket. Without it the source
    /// fingerprints as 0 (like [`crate::ChannelSource`]) and forgoes
    /// resume safety.
    #[must_use]
    pub fn with_stream_fingerprint(mut self, fingerprint: u64) -> SocketSource {
        self.stream_fingerprint = fingerprint;
        self
    }

    /// A snapshot of the transport telemetry so far.
    pub fn counts(&self) -> TransportCounts {
        self.counts
    }

    fn process_frame(&mut self, frame: Frame) {
        match frame {
            Frame::Event { tick, seq, fault } => {
                self.counts.frames_seen += 1;
                if tick < self.next_tick {
                    self.counts.rejected_stale += 1;
                    return;
                }
                self.max_tick_seen = Some(self.max_tick_seen.map_or(tick, |m| m.max(tick)));
                self.pending.entry(tick).or_default().push((seq, fault));
                self.buffered_events += 1;
            }
            Frame::End { ticks } => {
                self.counts.end_frames += 1;
                self.end_ticks = Some(self.end_ticks.map_or(ticks, |e| e.max(ticks)));
            }
        }
    }

    /// Accepts pending connections and drains readable bytes through
    /// each connection's decoder. Never blocks.
    fn pump(&mut self) {
        while let Ok((stream, _)) = self.listener.accept() {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            self.counts.connections += 1;
            self.had_connection = true;
            self.last_progress = Instant::now();
            self.conns.push(Conn {
                stream,
                decoder: FrameDecoder::new(),
                last_data: Instant::now(),
            });
        }
        let throttled = self.buffered_events >= self.config.max_buffered_events;
        let mut scratch = [0u8; 8192];
        let mut frames: Vec<Frame> = Vec::new();
        let mut keep = Vec::with_capacity(self.conns.len());
        for mut conn in self.conns.drain(..) {
            let mut alive = true;
            if !throttled {
                loop {
                    match conn.stream.read(&mut scratch) {
                        Ok(0) => {
                            self.counts.disconnects += 1;
                            if conn.decoder.buffered() > 0 {
                                // A half-sent frame died with the
                                // connection; account for it.
                                self.counts.count_reject(FrameError::Garbage {
                                    skipped: conn.decoder.buffered(),
                                });
                            }
                            alive = false;
                            break;
                        }
                        Ok(n) => {
                            self.counts.bytes_read += n as u64;
                            conn.last_data = Instant::now();
                            self.last_progress = Instant::now();
                            conn.decoder.feed(&scratch[..n]);
                            loop {
                                match conn.decoder.next() {
                                    Some(Ok(frame)) => frames.push(frame),
                                    Some(Err(e)) => self.counts.count_reject(e),
                                    None => break,
                                }
                            }
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(_) => {
                            self.counts.disconnects += 1;
                            alive = false;
                            break;
                        }
                    }
                }
            }
            if alive
                && conn.decoder.buffered() > 0
                && conn.last_data.elapsed() > self.config.read_deadline
            {
                // Per-connection read deadline: a client that stalls
                // *mid-frame* ties up reassembly state and is shed. A
                // client that is merely idle between complete frames
                // holds nothing hostage and is left alone.
                self.counts.slow_client_drops += 1;
                alive = false;
            }
            if alive {
                keep.push(conn);
            }
        }
        self.conns = keep;
        for frame in frames {
            self.process_frame(frame);
        }
    }

    /// Whether `next_tick` is provably complete and may be released.
    fn releasable(&self) -> bool {
        if let Some(end) = self.end_ticks {
            if self.next_tick < end {
                return true;
            }
        }
        if let Some(max) = self.max_tick_seen {
            if max > self.next_tick {
                return true;
            }
            // A vanished client without an end marker: after the idle
            // grace the buffered tail is flushed best-effort.
            if self.flushing && self.next_tick <= max {
                return true;
            }
        }
        false
    }

    fn release(&mut self) -> Vec<IncidentEvent> {
        let mut batch = self.pending.remove(&self.next_tick).unwrap_or_default();
        self.next_tick += 1;
        self.buffered_events -= batch.len();
        batch.sort_by_key(|&(seq, _)| seq);
        let before = batch.len();
        batch.dedup_by_key(|&mut (seq, _)| seq);
        let dupes = (before - batch.len()) as u64;
        self.counts.rejected_duplicate += dupes;
        // Deduped frames were counted into frames_seen at decode time
        // and are rejected here, not delivered.
        self.counts.events_delivered += batch.len() as u64;
        batch
            .into_iter()
            .map(|(_, fault)| IncidentEvent { fault })
            .collect()
    }
}

impl EventSource for SocketSource {
    /// Blocks (with capped backoff) until the next tick is complete,
    /// the stream has ended, or the idle timeout expires.
    fn poll(&mut self) -> Option<Vec<IncidentEvent>> {
        let mut backoff = self.config.poll_backoff;
        loop {
            self.pump();
            if self.releasable() {
                return Some(self.release());
            }
            if let Some(end) = self.end_ticks {
                if self.next_tick >= end && self.pending.is_empty() {
                    return None;
                }
            }
            if self.last_progress.elapsed() > self.config.idle_timeout && self.conns.is_empty() {
                if self.pending.is_empty() {
                    return None;
                }
                self.flushing = true;
                continue;
            }
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(self.config.max_backoff);
        }
    }

    /// Raises the stale threshold: replayed frames for ticks below the
    /// new position are rejected (typed, counted) instead of
    /// re-delivered.
    fn skip_ticks(&mut self, n: u64) {
        self.next_tick = self.next_tick.saturating_add(n);
    }

    fn fingerprint(&self) -> u64 {
        self.stream_fingerprint
    }

    fn transport_counts(&self) -> Option<TransportCounts> {
        Some(self.counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn event(tick: u64, seq: u32, fault: usize) -> Frame {
        Frame::Event {
            tick,
            seq,
            fault: StateId::new(fault),
        }
    }

    #[test]
    fn frames_roundtrip_through_the_decoder() {
        let frames = [
            event(0, 0, 3),
            event(0, 1, 1),
            event(7, 0, 2),
            Frame::End { ticks: 8 },
        ];
        let mut decoder = FrameDecoder::new();
        for f in &frames {
            decoder.feed(&f.encode());
        }
        for f in &frames {
            assert_eq!(decoder.next(), Some(Ok(*f)));
        }
        assert_eq!(decoder.next(), None);
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn split_feeds_reassemble() {
        let bytes = event(3, 9, 1).encode();
        let mut decoder = FrameDecoder::new();
        for b in &bytes {
            assert_eq!(decoder.next(), None, "no frame before all bytes arrive");
            decoder.feed(std::slice::from_ref(b));
        }
        assert_eq!(decoder.next(), Some(Ok(event(3, 9, 1))));
    }

    #[test]
    fn garbage_between_frames_is_skipped_once() {
        let mut decoder = FrameDecoder::new();
        decoder.feed(&event(1, 0, 0).encode());
        decoder.feed(b"totally not a frame");
        decoder.feed(&event(2, 0, 1).encode());
        assert_eq!(decoder.next(), Some(Ok(event(1, 0, 0))));
        assert_eq!(
            decoder.next(),
            Some(Err(FrameError::Garbage { skipped: 19 }))
        );
        assert_eq!(decoder.next(), Some(Ok(event(2, 0, 1))));
    }

    #[test]
    fn corruption_matrix_rejects_typed_without_losing_neighbours() {
        // Each case: a corrupted frame sandwiched between two valid
        // ones; both neighbours must survive, the middle must reject
        // with the expected typed error.
        let corrupt = |mutate: &dyn Fn(&mut Vec<u8>)| {
            let mut middle = event(5, 1, 2).encode();
            mutate(&mut middle);
            let mut decoder = FrameDecoder::new();
            decoder.feed(&event(5, 0, 0).encode());
            decoder.feed(&middle);
            decoder.feed(&event(5, 2, 1).encode());
            assert_eq!(decoder.next(), Some(Ok(event(5, 0, 0))));
            let mut errors = Vec::new();
            loop {
                match decoder.next() {
                    Some(Ok(f)) => {
                        assert_eq!(f, event(5, 2, 1), "trailing frame must survive");
                        return errors;
                    }
                    Some(Err(e)) => errors.push(e),
                    None => panic!("trailing frame lost: {errors:?}"),
                }
            }
        };

        // Wrong version.
        let errs = corrupt(&|b: &mut Vec<u8>| b[4] = 9);
        assert!(errs.contains(&FrameError::Version { found: 9 }), "{errs:?}");
        // Unknown kind.
        let errs = corrupt(&|b: &mut Vec<u8>| b[5] = 7);
        assert!(errs.contains(&FrameError::Kind { found: 7 }), "{errs:?}");
        // Oversized declaration.
        let errs = corrupt(&|b: &mut Vec<u8>| {
            b[6] = 0xFF;
            b[7] = 0xFF;
        });
        assert!(
            errs.contains(&FrameError::Oversized { len: 0xFFFF }),
            "{errs:?}"
        );
        // Payload bit flip.
        let errs = corrupt(&|b: &mut Vec<u8>| *b.last_mut().unwrap() ^= 0x40);
        assert!(
            errs.iter()
                .any(|e| matches!(e, FrameError::Checksum { .. })),
            "{errs:?}"
        );
        // Truncated frame (decoder waits, then the next magic arrives
        // mid-payload; the checksum catches the splice).
        let errs = corrupt(&|b: &mut Vec<u8>| b.truncate(HEADER_LEN + 4));
        assert!(!errs.is_empty(), "truncation must surface typed errors");
    }

    #[test]
    fn mis_sized_payload_is_rejected() {
        // A kind-0 frame whose (checksummed) payload is 8 bytes, not 16.
        let payload = 42u64.to_le_bytes();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&FRAME_MAGIC);
        bytes.push(WIRE_VERSION);
        bytes.push(0);
        bytes.extend_from_slice(&8u16.to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes);
        assert_eq!(
            decoder.next(),
            Some(Err(FrameError::Length { kind: 0, len: 8 }))
        );
    }

    #[test]
    fn frame_error_display_covers_all_variants() {
        let errs = [
            FrameError::Garbage { skipped: 3 },
            FrameError::Version { found: 2 },
            FrameError::Kind { found: 9 },
            FrameError::Oversized { len: 70000 },
            FrameError::Length { kind: 1, len: 3 },
            FrameError::Checksum {
                expected: 1,
                actual: 2,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    fn quick_socket() -> SocketSource {
        SocketSource::bind(
            "127.0.0.1:0",
            SocketConfig {
                idle_timeout: Duration::from_millis(300),
                read_deadline: Duration::from_millis(200),
                ..SocketConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn socket_source_delivers_in_tick_and_seq_order() {
        let mut source = quick_socket();
        let addr = source.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Tick 0 sent out of seq order; tick 1 proves tick 0
            // complete; end marker closes the stream after tick 2.
            for f in [
                event(0, 1, 5),
                event(0, 0, 4),
                event(1, 0, 6),
                Frame::End { ticks: 3 },
            ] {
                s.write_all(&f.encode()).unwrap();
            }
        });
        assert_eq!(
            source.poll().unwrap(),
            vec![
                IncidentEvent {
                    fault: StateId::new(4)
                },
                IncidentEvent {
                    fault: StateId::new(5)
                }
            ],
            "within-tick order is by seq, not arrival"
        );
        assert_eq!(source.poll().unwrap().len(), 1);
        assert_eq!(source.poll().unwrap(), vec![], "tick 2 is empty");
        assert!(source.poll().is_none(), "end marker drains the stream");
        writer.join().unwrap();
        let counts = source.transport_counts().unwrap();
        assert_eq!(counts.events_delivered, 3);
        assert_eq!(counts.frames_seen, 3);
        assert_eq!(counts.end_frames, 1);
        assert_eq!(counts.rejected_frames(), 0);
    }

    #[test]
    fn stale_frames_after_skip_are_rejected_not_redelivered() {
        let mut source = quick_socket();
        let addr = source.local_addr().unwrap();
        source.skip_ticks(2);
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            for f in [
                event(0, 0, 1),
                event(1, 0, 1),
                event(2, 0, 7),
                Frame::End { ticks: 3 },
            ] {
                s.write_all(&f.encode()).unwrap();
            }
        });
        let batch = source.poll().unwrap();
        assert_eq!(
            batch,
            vec![IncidentEvent {
                fault: StateId::new(7)
            }]
        );
        assert!(source.poll().is_none());
        writer.join().unwrap();
        let counts = source.transport_counts().unwrap();
        assert_eq!(counts.rejected_stale, 2);
        assert_eq!(counts.events_delivered, 1);
    }

    #[test]
    fn disconnect_without_end_flushes_then_ends() {
        let mut source = quick_socket();
        let addr = source.local_addr().unwrap();
        {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&event(0, 0, 2).encode()).unwrap();
            s.write_all(&event(1, 0, 3).encode()).unwrap();
            // Dropped without an end marker.
        }
        assert_eq!(source.poll().unwrap().len(), 1, "tick 0 proven complete");
        // Tick 1 is only flushed after the idle grace.
        assert_eq!(source.poll().unwrap().len(), 1);
        assert!(source.poll().is_none());
        assert!(source.transport_counts().unwrap().disconnects >= 1);
    }

    #[test]
    fn slow_loris_is_shed_by_the_read_deadline() {
        let mut source = quick_socket();
        let addr = source.local_addr().unwrap();
        let half_frame = event(0, 0, 1).encode()[..10].to_vec();
        let loris = TcpStream::connect(addr).unwrap();
        {
            let mut l = &loris;
            l.write_all(&half_frame).unwrap();
        }
        // A healthy client streams the actual events.
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&event(0, 0, 9).encode()).unwrap();
            std::thread::sleep(Duration::from_millis(400));
            s.write_all(&event(1, 0, 9).encode()).unwrap();
            s.write_all(&Frame::End { ticks: 2 }.encode()).unwrap();
        });
        assert_eq!(source.poll().unwrap().len(), 1);
        assert_eq!(source.poll().unwrap().len(), 1);
        assert!(source.poll().is_none());
        writer.join().unwrap();
        let counts = source.transport_counts().unwrap();
        assert!(counts.slow_client_drops >= 1, "{counts:?}");
        assert_eq!(counts.events_delivered, 2, "valid events all survive");
        drop(loris);
    }

    #[test]
    fn fingerprint_binds_the_declared_stream() {
        let source = quick_socket().with_stream_fingerprint(0xFEED);
        assert_eq!(source.fingerprint(), 0xFEED);
        assert_eq!(quick_socket().fingerprint(), 0);
    }
}
