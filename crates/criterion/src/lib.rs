//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal timing harness exposing the surface the benches
//! rely on: [`Criterion`] with `bench_function` / `benchmark_group`,
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] and
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Differences from real criterion: no statistical analysis, warm-up
//! scheduling, or HTML reports — each benchmark runs `sample_size`
//! timed samples and prints the median per-iteration time. Because the
//! benches keep `test = true` (cargo's default), `cargo test` also
//! executes each bench entry point; in that mode the harness detects
//! the absence of the `--bench` flag and smoke-runs every benchmark
//! once, so benches stay compile- and run-checked by the tier-1 suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost. This stand-in times each
/// batch individually, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs; cheap to regenerate.
    SmallInput,
    /// Large per-iteration inputs; regenerated once per sample.
    LargeInput,
}

/// Identifies one benchmark within a group, e.g.
/// `BenchmarkId::new("variant", "Average")`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// The timing handle handed to benchmark closures.
pub struct Bencher {
    samples: u32,
    /// Median per-iteration time, filled in by the `iter*` methods.
    elapsed: Option<Duration>,
}

impl Bencher {
    fn new(samples: u32) -> Bencher {
        Bencher {
            samples,
            elapsed: None,
        }
    }

    /// Times `routine`, running it once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut times = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            times.push(start.elapsed());
            drop(out);
        }
        self.elapsed = Some(median(&mut times));
    }

    /// Times `routine` on fresh input from `setup`, excluding the
    /// setup cost from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut times = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            times.push(start.elapsed());
            drop(out);
        }
        self.elapsed = Some(median(&mut times));
    }
}

fn median(times: &mut [Duration]) -> Duration {
    times.sort_unstable();
    times[times.len() / 2]
}

fn report(name: &str, elapsed: Option<Duration>) {
    match elapsed {
        Some(t) => println!("bench: {name:<50} median {t:>12.3?}"),
        None => println!("bench: {name:<50} (no measurement)"),
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<R>(&mut self, id: impl fmt::Display, routine: R) -> &mut Self
    where
        R: FnOnce(&mut Bencher),
    {
        let mut b = Bencher::new(self.criterion.sample_size);
        routine(&mut b);
        report(&format!("{}/{}", self.name, id), b.elapsed);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, R>(&mut self, id: BenchmarkId, input: &I, routine: R) -> &mut Self
    where
        R: FnOnce(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.sample_size);
        routine(&mut b, input);
        report(&format!("{}/{id}", self.name), b.elapsed);
        self
    }

    /// Ends the group (a no-op here; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n as u32;
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<R>(&mut self, name: &str, routine: R) -> &mut Self
    where
        R: FnOnce(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        routine(&mut b);
        report(name, b.elapsed);
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// True when invoked by `cargo bench` (which passes `--bench`); false
/// under `cargo test`, where [`criterion_main!`] smoke-runs each
/// benchmark with a single sample instead of the configured count.
pub fn running_as_bench() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Bundles benchmark functions with a shared [`Criterion`] config,
/// mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            if !$crate::running_as_bench() {
                criterion = $crate::Criterion::default().sample_size(1);
            }
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the given [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).sum()
    }

    #[test]
    fn bench_function_runs_and_measures() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("sum", |b| b.iter(|| sum_to(1000)));
    }

    #[test]
    fn groups_and_batched_iteration_work() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("sum", 500u64), &500u64, |b, &n| {
            b.iter_batched(|| n, sum_to, BatchSize::SmallInput)
        });
        group.bench_function("plain", |b| b.iter(|| sum_to(10)));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats_as_function_slash_parameter() {
        assert_eq!(
            BenchmarkId::new("variant", "Average").to_string(),
            "variant/Average"
        );
    }
}
