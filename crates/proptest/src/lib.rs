//! Offline stand-in for the subset of the `proptest` API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small randomized-testing harness exposing the surface its
//! property tests rely on:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! * range strategies (`0usize..10`, `1..=4`, `0.0f64..1.0`), tuples
//!   of strategies, [`Just`], and [`collection::vec`],
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`], and
//!   [`prop_oneof!`] macros,
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed sequence (one RNG per case index), and there is
//! **no shrinking** — a failing case panics with the generated values'
//! `Debug` representation where available. For a reproduction codebase
//! with deterministic CI, that trade is acceptable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// The per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A deterministic RNG for the given case index.
    pub fn for_case(case: u64) -> TestRng {
        TestRng {
            state: 0x9E3779B97F4A7C15u64.wrapping_mul(case.wrapping_add(0x51BF_D1ED)),
        }
    }

    /// The next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running the given number of cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A generator of random test inputs.
///
/// Object-safe: `generate` takes the concrete [`TestRng`], so boxed
/// strategies (used by [`prop_oneof!`]) work.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and samples
    /// the result (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            // The cast is trivial for the widest instantiation (f64).
            #[allow(trivial_numeric_casts)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $i:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::{Range, RangeInclusive};

    /// Lengths accepted by [`vec`]: an exact size or a range of sizes.
    pub trait IntoSizeRange {
        /// Draws a length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start() <= self.end(), "empty size range");
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// A strategy generating `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length comes from `len` (a `usize` or a range).
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..u64::from(config.cases) {
                    let mut __proptest_rng = $crate::TestRng::for_case(case);
                    $(
                        let $pat =
                            $crate::Strategy::generate(&($strat), &mut __proptest_rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure; this
/// stand-in performs no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( Box::new($strat) as $crate::BoxedStrategy<_> ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(i in 3usize..10, x in -1.0f64..1.0, k in 1usize..=4) {
            prop_assert!((3..10).contains(&i));
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!((1..=4).contains(&k));
        }

        #[test]
        fn vec_sizes_follow_the_range(v in crate::collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn flat_map_threads_dependencies(
            (n, v) in (1usize..5).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0u64..100, n))
            })
        ) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn oneof_picks_among_options(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x == 1u8 || x == 2u8);
            prop_assert_ne!(x, 0u8);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case(5);
        let mut b = crate::TestRng::for_case(5);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
