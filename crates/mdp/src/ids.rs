//! Index newtypes distinguishing states from actions.

use std::fmt;

/// Identifier of an MDP/POMDP state (an index into the state space).
///
/// # Examples
///
/// ```
/// use bpr_mdp::StateId;
///
/// let s = StateId::new(3);
/// assert_eq!(s.index(), 3);
/// assert_eq!(s.to_string(), "s3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StateId(usize);

impl StateId {
    /// Wraps a raw state index.
    pub const fn new(index: usize) -> StateId {
        StateId(index)
    }

    /// The raw index into the state space.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for StateId {
    fn from(index: usize) -> StateId {
        StateId(index)
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of an MDP/POMDP action (an index into the action set).
///
/// # Examples
///
/// ```
/// use bpr_mdp::ActionId;
///
/// let a = ActionId::new(1);
/// assert_eq!(a.index(), 1);
/// assert_eq!(a.to_string(), "a1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ActionId(usize);

impl ActionId {
    /// Wraps a raw action index.
    pub const fn new(index: usize) -> ActionId {
        ActionId(index)
    }

    /// The raw index into the action set.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for ActionId {
    fn from(index: usize) -> ActionId {
        ActionId(index)
    }
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(StateId::new(0));
        set.insert(StateId::new(0));
        set.insert(StateId::new(1));
        assert_eq!(set.len(), 2);
        assert!(StateId::new(0) < StateId::new(1));
        assert!(ActionId::new(2) > ActionId::new(1));
    }

    #[test]
    fn conversion_from_usize() {
        assert_eq!(StateId::from(7).index(), 7);
        assert_eq!(ActionId::from(7).index(), 7);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(StateId::default().to_string(), "s0");
        assert_eq!(ActionId::new(12).to_string(), "a12");
    }
}
