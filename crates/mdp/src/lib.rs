//! Markov decision processes for the `bpr` workspace.
//!
//! An MDP here is the tuple `(S, A, p(·|s,a), r(s,a))` of the paper's
//! Section 2, with rewards interpreted as costs (non-positive in
//! recovery models). The crate provides:
//!
//! * [`Mdp`] and [`MdpBuilder`] — validated sparse models with optional
//!   state/action labels and per-action durations.
//! * [`value_iteration`] — discounted and undiscounted (negative-model)
//!   dynamic programming (paper Eq. 1), producing optimal values and
//!   deterministic stationary policies.
//! * [`policy`] — policies, exact policy evaluation via linear solves,
//!   and policy iteration.
//! * [`chain`] — Markov chain analysis: reachability, strongly connected
//!   components, recurrent/transient classification, and expected total
//!   (undiscounted) accumulated reward — the computation behind the
//!   RA-Bound (paper Eq. 5).
//! * [`Mdp::uniform_random_chain`] — the random-action chain obtained by
//!   replacing the max over actions with a uniform average, which is the
//!   heart of the RA-Bound.
//!
//! # Examples
//!
//! The two-server model of the paper's Figure 1(a), solved exactly:
//!
//! ```
//! use bpr_mdp::{MdpBuilder, value_iteration::{ValueIteration, Discount}};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // States: 0 = Fault(a), 1 = Fault(b), 2 = Null (absorbing).
//! let mut b = MdpBuilder::new(3, 2);
//! b.action_label(0, "Restart(a)").action_label(1, "Restart(b)");
//! b.transition(0, 0, 2, 1.0).reward(0, 0, -0.5); // fixes a
//! b.transition(0, 1, 0, 1.0).reward(0, 1, -1.0); // wrong restart
//! b.transition(1, 0, 1, 1.0).reward(1, 0, -1.0);
//! b.transition(1, 1, 2, 1.0).reward(1, 1, -0.5);
//! b.transition(2, 0, 2, 1.0).reward(2, 0, 0.0); // Null loops, free
//! b.transition(2, 1, 2, 1.0).reward(2, 1, 0.0);
//! let mdp = b.build()?;
//!
//! let sol = ValueIteration::new(Discount::Undiscounted).solve(&mdp)?;
//! assert_eq!(sol.values, vec![-0.5, -0.5, 0.0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
mod error;
mod ids;
mod model;
pub mod policy;
pub mod value_iteration;

pub use error::Error;
pub use ids::{ActionId, StateId};
pub use model::{Mdp, MdpBuilder};
