//! Dynamic-programming solution of MDPs (paper Eq. 1).
//!
//! Supports both discounted models (`β < 1`) and the paper's
//! undiscounted optimality criterion (`β = 1`). For undiscounted
//! *negative* models (all rewards ≤ 0) with reward-free absorbing
//! structure, iterating the Bellman operator from `v = 0` converges to
//! the optimal value (Puterman, Theorem 7.3.10); divergence — values
//! marching off to −∞ — is detected and reported.

use crate::policy::Policy;
use crate::{ActionId, Error, Mdp};
use bpr_linalg::dense;

/// The discounting regime of a solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Discount {
    /// Discounted accumulated reward with factor `β ∈ [0, 1)`.
    Factor(f64),
    /// The paper's undiscounted total-reward criterion (`β = 1`).
    Undiscounted,
}

impl Discount {
    /// The numeric discount factor.
    pub fn beta(self) -> f64 {
        match self {
            Discount::Factor(b) => b,
            Discount::Undiscounted => 1.0,
        }
    }

    /// Validates the factor is in `[0, 1)` for the discounted case.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DivergentValue`] for factors outside `[0, 1)`.
    pub fn validate(self) -> Result<(), Error> {
        match self {
            Discount::Factor(b) if !(0.0..1.0).contains(&b) => Err(Error::DivergentValue {
                what: "discount factor outside [0, 1)",
            }),
            _ => Ok(()),
        }
    }
}

/// Whether the Bellman recursion maximises or minimises over actions.
///
/// `Minimize` computes the *worst-action* value used by the BI-POMDP
/// bound of Washington (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Pick the best action in every state (the usual optimal control).
    #[default]
    Maximize,
    /// Pick the worst action in every state (BI-POMDP's `V_m^BI`).
    Minimize,
}

/// Options for a value-iteration solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ViOpts {
    /// Stop when the `ℓ∞` change between sweeps is below this.
    pub tol: f64,
    /// Maximum number of sweeps.
    pub max_iters: usize,
    /// Declare divergence once `‖v‖∞` exceeds this.
    pub divergence_threshold: f64,
    /// Max/min over actions (see [`Objective`]).
    pub objective: Objective,
}

impl Default for ViOpts {
    fn default() -> ViOpts {
        ViOpts {
            tol: 1e-9,
            max_iters: 1_000_000,
            divergence_threshold: 1e15,
            objective: Objective::Maximize,
        }
    }
}

/// The result of a value-iteration or policy-iteration solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal (or pessimal, under [`Objective::Minimize`]) values.
    pub values: Vec<f64>,
    /// A greedy deterministic stationary policy achieving `values`.
    pub policy: Policy,
    /// Number of Bellman sweeps performed.
    pub iterations: usize,
}

/// Value-iteration solver (paper Eq. 1).
///
/// # Examples
///
/// ```
/// use bpr_mdp::{MdpBuilder, value_iteration::{ValueIteration, Discount}};
///
/// # fn main() -> Result<(), bpr_mdp::Error> {
/// let mut b = MdpBuilder::new(2, 2);
/// b.transition(0, 0, 1, 1.0).reward(0, 0, -1.0); // good action
/// b.transition(0, 1, 0, 1.0).reward(0, 1, -5.0); // bad action
/// b.transition(1, 0, 1, 1.0);
/// b.transition(1, 1, 1, 1.0);
/// let mdp = b.build()?;
/// let sol = ValueIteration::new(Discount::Undiscounted).solve(&mdp)?;
/// assert_eq!(sol.values, vec![-1.0, 0.0]);
/// assert_eq!(sol.policy.action(0.into()).index(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ValueIteration {
    discount: Discount,
    opts: ViOpts,
}

impl ValueIteration {
    /// Creates a solver with default options.
    pub fn new(discount: Discount) -> ValueIteration {
        ValueIteration {
            discount,
            opts: ViOpts::default(),
        }
    }

    /// Replaces the solver options.
    pub fn with_opts(mut self, opts: ViOpts) -> ValueIteration {
        self.opts = opts;
        self
    }

    /// Runs value iteration from `v = 0` until convergence.
    ///
    /// # Errors
    ///
    /// * [`Error::DivergentValue`] if the iterates exceed the divergence
    ///   threshold (no finite optimal value, e.g. an undiscounted model
    ///   where every policy loops with negative reward) or the discount
    ///   factor is invalid.
    /// * [`Error::DivergentValue`] with a budget message when the sweep
    ///   limit is reached before convergence.
    pub fn solve(&self, mdp: &Mdp) -> Result<Solution, Error> {
        self.discount.validate()?;
        let beta = self.discount.beta();
        let n = mdp.n_states();
        let mut v = vec![0.0; n];
        let mut next = vec![0.0; n];
        let mut q = vec![0.0; mdp.n_actions()];
        for it in 0..self.opts.max_iters {
            for (s, out) in next.iter_mut().enumerate() {
                for (a, qa) in q.iter_mut().enumerate() {
                    let mut acc = mdp.reward_vector(ActionId::new(a))[s];
                    for (s2, p) in mdp.successors(s, a) {
                        acc += beta * p * v[s2.index()];
                    }
                    *qa = acc;
                }
                *out = match self.opts.objective {
                    Objective::Maximize => q.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    Objective::Minimize => q.iter().copied().fold(f64::INFINITY, f64::min),
                };
            }
            let delta = dense::dist_inf(&v, &next);
            std::mem::swap(&mut v, &mut next);
            if !dense::all_finite(&v) || dense::norm_inf(&v) > self.opts.divergence_threshold {
                return Err(Error::DivergentValue {
                    what: "value iteration (iterates unbounded)",
                });
            }
            if delta <= self.opts.tol {
                let policy = self.greedy_policy(mdp, &v);
                return Ok(Solution {
                    values: v,
                    policy,
                    iterations: it + 1,
                });
            }
        }
        Err(Error::DivergentValue {
            what: "value iteration (sweep budget exhausted)",
        })
    }

    /// The greedy policy with respect to a value function.
    fn greedy_policy(&self, mdp: &Mdp, v: &[f64]) -> Policy {
        let beta = self.discount.beta();
        let mut actions = Vec::with_capacity(mdp.n_states());
        for s in 0..mdp.n_states() {
            let mut best_a = 0usize;
            let mut best_q = f64::NEG_INFINITY;
            let mut worst_q = f64::INFINITY;
            let mut worst_a = 0usize;
            for a in 0..mdp.n_actions() {
                let mut acc = mdp.reward_vector(ActionId::new(a))[s];
                for (s2, p) in mdp.successors(s, a) {
                    acc += beta * p * v[s2.index()];
                }
                if acc > best_q {
                    best_q = acc;
                    best_a = a;
                }
                if acc < worst_q {
                    worst_q = acc;
                    worst_a = a;
                }
            }
            actions.push(ActionId::new(match self.opts.objective {
                Objective::Maximize => best_a,
                Objective::Minimize => worst_a,
            }));
        }
        Policy::new(actions)
    }
}

/// Per-(state, action) Q-values for a given value function:
/// `Q(s, a) = r(s, a) + β Σ_{s'} p(s'|s,a) v(s')`.
///
/// Returned as `q[a][s]`. This is the kernel shared by the QMDP upper
/// bound and greedy-policy extraction.
///
/// # Panics
///
/// Panics if `v.len() != mdp.n_states()`.
pub fn q_values(mdp: &Mdp, v: &[f64], beta: f64) -> Vec<Vec<f64>> {
    assert_eq!(v.len(), mdp.n_states(), "value function length mismatch");
    let mut q = vec![vec![0.0; mdp.n_states()]; mdp.n_actions()];
    for (a, qa) in q.iter_mut().enumerate() {
        for (s, out) in qa.iter_mut().enumerate() {
            let mut acc = mdp.reward_vector(ActionId::new(a))[s];
            for (s2, p) in mdp.successors(s, a) {
                acc += beta * p * v[s2.index()];
            }
            *out = acc;
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MdpBuilder;

    fn recovery_mdp() -> Mdp {
        // 0 = Fault(a), 1 = Fault(b), 2 = Null absorbing, 3 actions.
        let mut b = MdpBuilder::new(3, 3);
        b.transition(0, 0, 2, 1.0).reward(0, 0, -0.5);
        b.transition(1, 0, 1, 1.0).reward(1, 0, -1.0);
        b.transition(2, 0, 2, 1.0);
        b.transition(0, 1, 0, 1.0).reward(0, 1, -1.0);
        b.transition(1, 1, 2, 1.0).reward(1, 1, -0.5);
        b.transition(2, 1, 2, 1.0);
        b.transition(0, 2, 0, 1.0).reward(0, 2, -1.0);
        b.transition(1, 2, 1, 1.0).reward(1, 2, -1.0);
        b.transition(2, 2, 2, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn undiscounted_negative_model_solves() {
        let sol = ValueIteration::new(Discount::Undiscounted)
            .solve(&recovery_mdp())
            .unwrap();
        assert_eq!(sol.values, vec![-0.5, -0.5, 0.0]);
        assert_eq!(sol.policy.action(0.into()).index(), 0);
        assert_eq!(sol.policy.action(1.into()).index(), 1);
    }

    #[test]
    fn discounted_solve_contracts() {
        let sol = ValueIteration::new(Discount::Factor(0.9))
            .solve(&recovery_mdp())
            .unwrap();
        assert!((sol.values[0] + 0.5).abs() < 1e-7);
        assert_eq!(sol.values[2], 0.0);
    }

    #[test]
    fn minimize_objective_computes_worst_action() {
        // Worst action in fault states loops forever with cost: divergent.
        let vi = ValueIteration::new(Discount::Undiscounted).with_opts(ViOpts {
            objective: Objective::Minimize,
            divergence_threshold: 1e6,
            ..ViOpts::default()
        });
        assert!(matches!(
            vi.solve(&recovery_mdp()),
            Err(Error::DivergentValue { .. })
        ));
        // Discounted worst-action value is finite: -1 / (1 - 0.9) = -10
        // for the looping observe action.
        let vi = ValueIteration::new(Discount::Factor(0.9)).with_opts(ViOpts {
            objective: Objective::Minimize,
            ..ViOpts::default()
        });
        let sol = vi.solve(&recovery_mdp()).unwrap();
        assert!((sol.values[0] + 10.0).abs() < 1e-6);
    }

    #[test]
    fn invalid_discount_factor_is_rejected() {
        for b in [1.0, 1.5, -0.1] {
            assert!(ValueIteration::new(Discount::Factor(b))
                .solve(&recovery_mdp())
                .is_err());
        }
    }

    #[test]
    fn divergent_undiscounted_model_is_detected() {
        // Single state, single looping action with cost.
        let mut b = MdpBuilder::new(1, 1);
        b.transition(0, 0, 0, 1.0).reward(0, 0, -1.0);
        let mdp = b.build().unwrap();
        let vi = ValueIteration::new(Discount::Undiscounted).with_opts(ViOpts {
            divergence_threshold: 1e4,
            ..ViOpts::default()
        });
        assert!(matches!(vi.solve(&mdp), Err(Error::DivergentValue { .. })));
    }

    #[test]
    fn q_values_match_bellman_backup() {
        let mdp = recovery_mdp();
        let v = vec![-0.5, -0.5, 0.0];
        let q = q_values(&mdp, &v, 1.0);
        assert_eq!(q[0][0], -0.5); // restart(a) in Fault(a): -0.5 + 0
        assert_eq!(q[1][0], -1.5); // restart(b): -1.0 + v[0]
        assert_eq!(q[2][2], 0.0);
    }

    #[test]
    fn iterations_are_reported() {
        let sol = ValueIteration::new(Discount::Undiscounted)
            .solve(&recovery_mdp())
            .unwrap();
        assert!(sol.iterations >= 2);
        assert!(sol.iterations < 100);
    }
}
