//! MDP model representation and validated construction.

use crate::chain::MarkovChain;
use crate::{ActionId, Error, StateId};
use bpr_linalg::CsrMatrix;

/// A finite Markov decision process `(S, A, p(·|s,a), r(s,a))`.
///
/// Transition dynamics are stored as one sparse stochastic matrix per
/// action. Rewards are per `(state, action)`; recovery models keep them
/// non-positive (costs). Each action optionally carries a wall-clock
/// duration used by the simulation layer (the paper's `t_a`).
///
/// Construct instances through [`MdpBuilder`], which validates that
/// every `(s, a)` transition row is a probability distribution.
///
/// # Examples
///
/// ```
/// use bpr_mdp::MdpBuilder;
///
/// # fn main() -> Result<(), bpr_mdp::Error> {
/// let mut b = MdpBuilder::new(2, 1);
/// b.transition(0, 0, 1, 1.0).reward(0, 0, -1.0);
/// b.transition(1, 0, 1, 1.0); // rewards default to 0
/// let mdp = b.build()?;
/// assert_eq!(mdp.n_states(), 2);
/// assert_eq!(mdp.reward(0, 0), -1.0);
/// assert_eq!(mdp.transition_prob(0, 0, 1), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mdp {
    n_states: usize,
    n_actions: usize,
    /// `transitions[a]` is the `n_states x n_states` matrix of `p(s'|s,a)`.
    transitions: Vec<CsrMatrix>,
    /// `rewards[a][s]` is `r(s, a)`.
    rewards: Vec<Vec<f64>>,
    /// `durations[a]` is the wall-clock execution time of action `a`.
    durations: Vec<f64>,
    state_labels: Vec<String>,
    action_labels: Vec<String>,
}

impl Mdp {
    /// Number of states `|S|`.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of actions `|A|`.
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// Iterates over all state ids.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.n_states).map(StateId::new)
    }

    /// Iterates over all action ids.
    pub fn actions(&self) -> impl Iterator<Item = ActionId> {
        (0..self.n_actions).map(ActionId::new)
    }

    /// The sparse transition matrix of one action.
    ///
    /// # Panics
    ///
    /// Panics if `action` is out of bounds.
    pub fn transition_matrix(&self, action: impl Into<ActionId>) -> &CsrMatrix {
        &self.transitions[action.into().index()]
    }

    /// The probability `p(to | from, action)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn transition_prob(
        &self,
        from: impl Into<StateId>,
        action: impl Into<ActionId>,
        to: impl Into<StateId>,
    ) -> f64 {
        self.transitions[action.into().index()].get(from.into().index(), to.into().index())
    }

    /// Iterates over the successors `(s', p(s'|s,a))` of a state-action
    /// pair, in ascending state order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn successors(
        &self,
        from: impl Into<StateId>,
        action: impl Into<ActionId>,
    ) -> impl Iterator<Item = (StateId, f64)> + '_ {
        self.transitions[action.into().index()]
            .row(from.into().index())
            .map(|(s, p)| (StateId::new(s), p))
    }

    /// The single-step reward `r(s, a)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn reward(&self, state: impl Into<StateId>, action: impl Into<ActionId>) -> f64 {
        self.rewards[action.into().index()][state.into().index()]
    }

    /// The reward vector `r(a) = [r(s, a)]_s` for one action.
    ///
    /// # Panics
    ///
    /// Panics if `action` is out of bounds.
    pub fn reward_vector(&self, action: impl Into<ActionId>) -> &[f64] {
        &self.rewards[action.into().index()]
    }

    /// The wall-clock duration `t_a` of an action (defaults to `1.0`).
    ///
    /// # Panics
    ///
    /// Panics if `action` is out of bounds.
    pub fn duration(&self, action: impl Into<ActionId>) -> f64 {
        self.durations[action.into().index()]
    }

    /// The label of a state (defaults to `"s<i>"`).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn state_label(&self, state: impl Into<StateId>) -> &str {
        &self.state_labels[state.into().index()]
    }

    /// The label of an action (defaults to `"a<i>"`).
    ///
    /// # Panics
    ///
    /// Panics if `action` is out of bounds.
    pub fn action_label(&self, action: impl Into<ActionId>) -> &str {
        &self.action_labels[action.into().index()]
    }

    /// Looks up a state id by label.
    pub fn state_by_label(&self, label: &str) -> Option<StateId> {
        self.state_labels
            .iter()
            .position(|l| l == label)
            .map(StateId::new)
    }

    /// Looks up an action id by label.
    pub fn action_by_label(&self, label: &str) -> Option<ActionId> {
        self.action_labels
            .iter()
            .position(|l| l == label)
            .map(ActionId::new)
    }

    /// True if every single-step reward is `<= 0` — the paper's
    /// Condition 2, under which the model is a *negative MDP*.
    pub fn all_rewards_nonpositive(&self) -> bool {
        self.rewards.iter().flatten().all(|&r| r <= 0.0)
    }

    /// The most negative single-step reward in the model (the "most
    /// expensive action" used by the paper's heuristic controller, §5).
    pub fn worst_reward(&self) -> f64 {
        self.rewards
            .iter()
            .flatten()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Builds the *random-action* Markov chain of the RA-Bound (Eq. 5):
    /// the chain with transition matrix `P̄ = (1/|A|) Σ_a P(a)` and state
    /// rewards `r̄(s) = (1/|A|) Σ_a r(s, a)`.
    ///
    /// Solving this chain's expected total reward yields `V⁻_m`, the
    /// per-state component of the RA-Bound.
    pub fn uniform_random_chain(&self) -> MarkovChain {
        let inv = 1.0 / self.n_actions as f64;
        let mut triplets = Vec::new();
        for (a, p) in self.transitions.iter().enumerate() {
            let _ = a;
            for s in 0..self.n_states {
                for (s2, prob) in p.row(s) {
                    triplets.push((s, s2, prob * inv));
                }
            }
        }
        let p = CsrMatrix::from_triplets(self.n_states, self.n_states, &triplets)
            .expect("averaged transition triplets are in bounds");
        let rewards: Vec<f64> = (0..self.n_states)
            .map(|s| self.rewards.iter().map(|ra| ra[s]).sum::<f64>() * inv)
            .collect();
        MarkovChain::new(p, rewards).expect("averaged chain is stochastic")
    }

    /// Builds the Markov chain induced by a deterministic policy:
    /// row `s` of the chain is row `s` of `P(ρ(s))`, with reward
    /// `r(s, ρ(s))`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] if the policy refers to an
    /// action outside the model, or has the wrong length.
    pub fn policy_chain(&self, policy: &crate::policy::Policy) -> Result<MarkovChain, Error> {
        if policy.len() != self.n_states {
            return Err(Error::IndexOutOfBounds {
                what: "policy length",
                index: policy.len(),
                bound: self.n_states,
            });
        }
        let mut triplets = Vec::new();
        let mut rewards = Vec::with_capacity(self.n_states);
        for s in 0..self.n_states {
            let a = policy.action(StateId::new(s)).index();
            if a >= self.n_actions {
                return Err(Error::IndexOutOfBounds {
                    what: "policy action",
                    index: a,
                    bound: self.n_actions,
                });
            }
            for (s2, p) in self.transitions[a].row(s) {
                triplets.push((s, s2, p));
            }
            rewards.push(self.rewards[a][s]);
        }
        let p = CsrMatrix::from_triplets(self.n_states, self.n_states, &triplets)
            .expect("policy chain triplets are in bounds");
        Ok(MarkovChain::new(p, rewards).expect("policy chain is stochastic"))
    }
}

/// Incremental, validated builder for [`Mdp`] models.
///
/// All configuration methods return `&mut Self` for chaining; call
/// [`MdpBuilder::build`] to validate and produce the model. Transition
/// probabilities for the same `(s, a, s')` accumulate, which makes it
/// easy to compose dynamics from several causes.
#[derive(Debug, Clone)]
pub struct MdpBuilder {
    n_states: usize,
    n_actions: usize,
    triplets: Vec<Vec<(usize, usize, f64)>>,
    rewards: Vec<Vec<f64>>,
    durations: Vec<f64>,
    state_labels: Vec<String>,
    action_labels: Vec<String>,
}

impl MdpBuilder {
    /// Starts a builder for a model with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `n_states` or `n_actions` is zero; an empty model is a
    /// programming error caught as early as possible.
    pub fn new(n_states: usize, n_actions: usize) -> MdpBuilder {
        assert!(
            n_states > 0 && n_actions > 0,
            "model must have at least one state and one action"
        );
        MdpBuilder {
            n_states,
            n_actions,
            triplets: vec![Vec::new(); n_actions],
            rewards: vec![vec![0.0; n_states]; n_actions],
            durations: vec![1.0; n_actions],
            state_labels: (0..n_states).map(|i| format!("s{i}")).collect(),
            action_labels: (0..n_actions).map(|i| format!("a{i}")).collect(),
        }
    }

    /// Adds probability mass `p` to the transition `from --action--> to`.
    ///
    /// Mass for the same triple accumulates across calls.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn transition(
        &mut self,
        from: impl Into<StateId>,
        action: impl Into<ActionId>,
        to: impl Into<StateId>,
        p: f64,
    ) -> &mut MdpBuilder {
        let (s, a, s2) = (
            from.into().index(),
            action.into().index(),
            to.into().index(),
        );
        assert!(s < self.n_states, "from-state {s} out of bounds");
        assert!(a < self.n_actions, "action {a} out of bounds");
        assert!(s2 < self.n_states, "to-state {s2} out of bounds");
        self.triplets[a].push((s, s2, p));
        self
    }

    /// Sets the reward `r(s, a)` (overwrites any previous value).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn reward(
        &mut self,
        state: impl Into<StateId>,
        action: impl Into<ActionId>,
        r: f64,
    ) -> &mut MdpBuilder {
        let (s, a) = (state.into().index(), action.into().index());
        assert!(s < self.n_states, "state {s} out of bounds");
        assert!(a < self.n_actions, "action {a} out of bounds");
        self.rewards[a][s] = r;
        self
    }

    /// Sets `r(s, a)` from a rate and an impulse component:
    /// `r(s, a) = rate · t_a + impulse` (paper §2). Uses the action's
    /// *current* duration, so call [`MdpBuilder::duration`] first.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn reward_rate_impulse(
        &mut self,
        state: impl Into<StateId>,
        action: impl Into<ActionId>,
        rate: f64,
        impulse: f64,
    ) -> &mut MdpBuilder {
        let a = action.into();
        assert!(
            a.index() < self.n_actions,
            "action {} out of bounds",
            a.index()
        );
        let t = self.durations[a.index()];
        self.reward(state, a, rate * t + impulse)
    }

    /// Sets the wall-clock duration of an action (default `1.0`).
    ///
    /// # Panics
    ///
    /// Panics if `action` is out of bounds or `duration` is not positive
    /// and finite.
    pub fn duration(&mut self, action: impl Into<ActionId>, duration: f64) -> &mut MdpBuilder {
        let a = action.into().index();
        assert!(a < self.n_actions, "action {a} out of bounds");
        assert!(
            duration.is_finite() && duration > 0.0,
            "duration must be positive and finite"
        );
        self.durations[a] = duration;
        self
    }

    /// Sets a human-readable label for a state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn state_label(
        &mut self,
        state: impl Into<StateId>,
        label: impl Into<String>,
    ) -> &mut MdpBuilder {
        let s = state.into().index();
        assert!(s < self.n_states, "state {s} out of bounds");
        self.state_labels[s] = label.into();
        self
    }

    /// Sets a human-readable label for an action.
    ///
    /// # Panics
    ///
    /// Panics if `action` is out of bounds.
    pub fn action_label(
        &mut self,
        action: impl Into<ActionId>,
        label: impl Into<String>,
    ) -> &mut MdpBuilder {
        let a = action.into().index();
        assert!(a < self.n_actions, "action {a} out of bounds");
        self.action_labels[a] = label.into();
        self
    }

    /// Number of states the builder was created with.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of actions the builder was created with.
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// Validates the accumulated model and builds an [`Mdp`].
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidProbability`] if any accumulated transition
    ///   probability is negative, above one, or non-finite.
    /// * [`Error::NotStochastic`] if any `(s, a)` row does not sum to 1
    ///   within `1e-9`.
    /// * [`Error::InvalidReward`] if any reward is NaN or infinite.
    pub fn build(&self) -> Result<Mdp, Error> {
        const TOL: f64 = 1e-9;
        let mut transitions = Vec::with_capacity(self.n_actions);
        for a in 0..self.n_actions {
            let m = CsrMatrix::from_triplets(self.n_states, self.n_states, &self.triplets[a])
                .map_err(Error::Linalg)?;
            for s in 0..self.n_states {
                let mut sum = 0.0;
                for (_, p) in m.row(s) {
                    if !p.is_finite() || !(-TOL..=1.0 + TOL).contains(&p) {
                        return Err(Error::InvalidProbability {
                            state: s,
                            action: a,
                            value: p,
                        });
                    }
                    sum += p;
                }
                if (sum - 1.0).abs() > TOL {
                    return Err(Error::NotStochastic {
                        state: s,
                        action: a,
                        sum,
                    });
                }
            }
            transitions.push(m);
        }
        for (a, ra) in self.rewards.iter().enumerate() {
            for (s, &r) in ra.iter().enumerate() {
                if !r.is_finite() {
                    return Err(Error::InvalidReward {
                        state: s,
                        action: a,
                        value: r,
                    });
                }
            }
        }
        Ok(Mdp {
            n_states: self.n_states,
            n_actions: self.n_actions,
            transitions,
            rewards: self.rewards.clone(),
            durations: self.durations.clone(),
            state_labels: self.state_labels.clone(),
            action_labels: self.action_labels.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1(a) two-server model with an Observe action.
    pub(crate) fn two_server() -> Mdp {
        let mut b = MdpBuilder::new(3, 3);
        b.state_label(0, "Fault(a)")
            .state_label(1, "Fault(b)")
            .state_label(2, "Null");
        b.action_label(0, "Restart(a)")
            .action_label(1, "Restart(b)")
            .action_label(2, "Observe");
        // Restart(a)
        b.transition(0, 0, 2, 1.0).reward(0, 0, -0.5);
        b.transition(1, 0, 1, 1.0).reward(1, 0, -1.0);
        b.transition(2, 0, 2, 1.0).reward(2, 0, -0.5);
        // Restart(b)
        b.transition(0, 1, 0, 1.0).reward(0, 1, -1.0);
        b.transition(1, 1, 2, 1.0).reward(1, 1, -0.5);
        b.transition(2, 1, 2, 1.0).reward(2, 1, -0.5);
        // Observe
        b.transition(0, 2, 0, 1.0).reward(0, 2, -1.0);
        b.transition(1, 2, 1, 1.0).reward(1, 2, -1.0);
        b.transition(2, 2, 2, 1.0).reward(2, 2, 0.0);
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_consistent_model() {
        let m = two_server();
        assert_eq!(m.n_states(), 3);
        assert_eq!(m.n_actions(), 3);
        assert_eq!(m.reward(0, 0), -0.5);
        assert_eq!(m.transition_prob(0, 0, 2), 1.0);
        assert_eq!(m.transition_prob(0, 0, 0), 0.0);
        assert_eq!(m.state_label(0), "Fault(a)");
        assert_eq!(m.action_label(2), "Observe");
        assert_eq!(m.state_by_label("Null"), Some(StateId::new(2)));
        assert_eq!(m.action_by_label("Restart(b)"), Some(ActionId::new(1)));
        assert_eq!(m.state_by_label("missing"), None);
        assert!(m.all_rewards_nonpositive());
        assert_eq!(m.worst_reward(), -1.0);
    }

    #[test]
    fn successors_enumerate_sparse_row() {
        let m = two_server();
        let succ: Vec<_> = m.successors(0, 0).collect();
        assert_eq!(succ, vec![(StateId::new(2), 1.0)]);
    }

    #[test]
    fn missing_row_fails_stochastic_check() {
        let mut b = MdpBuilder::new(2, 1);
        b.transition(0, 0, 1, 1.0);
        // State 1 has no outgoing transition for action 0.
        assert!(matches!(
            b.build(),
            Err(Error::NotStochastic {
                state: 1,
                action: 0,
                ..
            })
        ));
    }

    #[test]
    fn row_sum_off_by_some_fails() {
        let mut b = MdpBuilder::new(1, 1);
        b.transition(0, 0, 0, 0.5);
        assert!(matches!(b.build(), Err(Error::NotStochastic { .. })));
    }

    #[test]
    fn accumulating_transitions_sums_mass() {
        let mut b = MdpBuilder::new(2, 1);
        b.transition(0, 0, 1, 0.5);
        b.transition(0, 0, 1, 0.5);
        b.transition(1, 0, 1, 1.0);
        let m = b.build().unwrap();
        assert_eq!(m.transition_prob(0, 0, 1), 1.0);
    }

    #[test]
    fn negative_probability_is_rejected() {
        let mut b = MdpBuilder::new(1, 1);
        b.transition(0, 0, 0, 1.5);
        b.transition(0, 0, 0, -0.5);
        // Accumulates to 1.0 but the builder stores entries summed, so
        // the combined value passes; a genuinely negative stored entry
        // must fail.
        let mut b2 = MdpBuilder::new(2, 1);
        b2.transition(0, 0, 0, -0.2);
        b2.transition(0, 0, 1, 1.2);
        b2.transition(1, 0, 1, 1.0);
        assert!(matches!(b2.build(), Err(Error::InvalidProbability { .. })));
        assert!(b.build().is_ok());
    }

    #[test]
    fn nan_reward_is_rejected() {
        let mut b = MdpBuilder::new(1, 1);
        b.transition(0, 0, 0, 1.0).reward(0, 0, f64::NAN);
        assert!(matches!(b.build(), Err(Error::InvalidReward { .. })));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn builder_panics_on_bad_index() {
        MdpBuilder::new(2, 1).transition(0, 0, 5, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn empty_model_panics() {
        MdpBuilder::new(0, 1);
    }

    #[test]
    fn rate_impulse_rewards_combine() {
        let mut b = MdpBuilder::new(1, 1);
        b.transition(0, 0, 0, 1.0);
        b.duration(0, 60.0);
        b.reward_rate_impulse(0, 0, -0.5, -2.0);
        let m = b.build().unwrap();
        assert_eq!(m.reward(0, 0), -32.0);
    }

    #[test]
    fn durations_default_and_override() {
        let mut b = MdpBuilder::new(1, 2);
        b.transition(0, 0, 0, 1.0);
        b.transition(0, 1, 0, 1.0);
        b.duration(1, 300.0);
        let m = b.build().unwrap();
        assert_eq!(m.duration(0), 1.0);
        assert_eq!(m.duration(1), 300.0);
    }

    #[test]
    fn uniform_random_chain_averages_dynamics() {
        let m = two_server();
        let chain = m.uniform_random_chain();
        // From Fault(a): Restart(a) -> Null, Restart(b) -> Fault(a),
        // Observe -> Fault(a); average: 1/3 to Null, 2/3 self.
        assert!((chain.transition_prob(0, 2) - 1.0 / 3.0).abs() < 1e-12);
        assert!((chain.transition_prob(0, 0) - 2.0 / 3.0).abs() < 1e-12);
        // Reward average: (-0.5 - 1 - 1) / 3.
        assert!((chain.reward(0) - (-2.5 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn policy_chain_follows_policy() {
        let m = two_server();
        let rho =
            crate::policy::Policy::new(vec![ActionId::new(0), ActionId::new(1), ActionId::new(2)]);
        let chain = m.policy_chain(&rho).unwrap();
        assert_eq!(chain.transition_prob(0, 2), 1.0);
        assert_eq!(chain.transition_prob(1, 2), 1.0);
        assert_eq!(chain.transition_prob(2, 2), 1.0);
        assert_eq!(chain.reward(2), 0.0);
    }

    #[test]
    fn policy_chain_rejects_wrong_length() {
        let m = two_server();
        let rho = crate::policy::Policy::new(vec![ActionId::new(0)]);
        assert!(matches!(
            m.policy_chain(&rho),
            Err(Error::IndexOutOfBounds { .. })
        ));
    }
}
