//! Deterministic stationary policies, evaluation, and policy iteration.

use crate::chain::SolveOpts;
use crate::value_iteration::{q_values, Discount, Solution};
use crate::{ActionId, Error, Mdp, StateId};
use bpr_linalg::{solve, CsrMatrix};

/// A deterministic stationary Markov policy `ρ : S → A`.
///
/// # Examples
///
/// ```
/// use bpr_mdp::{policy::Policy, ActionId};
///
/// let rho = Policy::new(vec![ActionId::new(1), ActionId::new(0)]);
/// assert_eq!(rho.action(0.into()).index(), 1);
/// assert_eq!(rho.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Policy {
    actions: Vec<ActionId>,
}

impl Policy {
    /// Wraps a per-state action assignment.
    pub fn new(actions: Vec<ActionId>) -> Policy {
        Policy { actions }
    }

    /// The constant policy that plays `action` everywhere (the "blind"
    /// policy of Hauskrecht's bound).
    pub fn constant(n_states: usize, action: ActionId) -> Policy {
        Policy {
            actions: vec![action; n_states],
        }
    }

    /// The action prescribed for a state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn action(&self, state: StateId) -> ActionId {
        self.actions[state.index()]
    }

    /// Number of states covered.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True if the policy covers no states.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Iterates over per-state actions in state order.
    pub fn iter(&self) -> impl Iterator<Item = ActionId> + '_ {
        self.actions.iter().copied()
    }
}

/// Evaluates a policy exactly: the value `v_ρ` with
/// `v_ρ = r_ρ + β P_ρ v_ρ`.
///
/// For [`Discount::Undiscounted`] the solve goes through
/// [`crate::chain::MarkovChain::expected_total_reward`], which requires
/// the policy's recurrent classes to be reward-free; otherwise the value
/// does not exist and [`Error::DivergentValue`] is returned. This is
/// exactly the mechanism by which the blind-policy bound fails on
/// recovery models with recovery notification (paper §3.1).
///
/// # Errors
///
/// * [`Error::IndexOutOfBounds`] if the policy does not match the model.
/// * [`Error::DivergentValue`] if no finite value exists.
/// * [`Error::Linalg`] on solver failures.
pub fn evaluate(
    mdp: &Mdp,
    policy: &Policy,
    discount: Discount,
    opts: &SolveOpts,
) -> Result<Vec<f64>, Error> {
    discount.validate()?;
    match discount {
        Discount::Undiscounted => {
            let chain = mdp.policy_chain(policy)?;
            chain.expected_total_reward(opts)
        }
        Discount::Factor(beta) => {
            let chain = mdp.policy_chain(policy)?;
            let scaled: CsrMatrix = chain.transition_matrix().scaled(beta);
            let iter_opts = solve::IterOpts::default()
                .with_omega(opts.omega)
                .with_tol(opts.tol)
                .with_max_iters(opts.max_iters);
            solve::sor(&scaled, chain.rewards(), &iter_opts).map_err(Error::from)
        }
    }
}

/// Howard policy iteration for discounted models.
///
/// Starts from the all-zeros policy, alternating exact evaluation and
/// greedy improvement until the policy is stable.
///
/// Undiscounted models are not supported here because policy evaluation
/// may be undefined for intermediate policies; use
/// [`crate::value_iteration::ValueIteration`] with
/// [`Discount::Undiscounted`] instead.
///
/// # Errors
///
/// * [`Error::DivergentValue`] if `discount` is [`Discount::Undiscounted`]
///   or outside `[0, 1)`.
/// * Propagates evaluation failures.
pub fn policy_iteration(
    mdp: &Mdp,
    discount: Discount,
    opts: &SolveOpts,
) -> Result<Solution, Error> {
    let beta = match discount {
        Discount::Undiscounted => {
            return Err(Error::DivergentValue {
                what: "policy iteration on undiscounted model (use value iteration)",
            })
        }
        Discount::Factor(b) => {
            discount.validate()?;
            b
        }
    };
    let mut policy = Policy::constant(mdp.n_states(), ActionId::new(0));
    for it in 1..=1_000 {
        let v = evaluate(mdp, &policy, discount, opts)?;
        let q = q_values(mdp, &v, beta);
        let mut improved = Policy::new(
            (0..mdp.n_states())
                .map(|s| {
                    let mut best = policy.action(StateId::new(s));
                    let mut best_q = q[best.index()][s];
                    for (a, qa) in q.iter().enumerate() {
                        // Strict improvement beyond tolerance keeps the
                        // iteration from cycling on ties.
                        if qa[s] > best_q + 1e-12 {
                            best = ActionId::new(a);
                            best_q = qa[s];
                        }
                    }
                    best
                })
                .collect(),
        );
        std::mem::swap(&mut policy, &mut improved);
        if policy == improved {
            let values = evaluate(mdp, &policy, discount, opts)?;
            return Ok(Solution {
                values,
                policy,
                iterations: it,
            });
        }
    }
    Err(Error::DivergentValue {
        what: "policy iteration (did not stabilise)",
    })
}

/// The "blind policy" values of Hauskrecht's bound: for each action `a`,
/// the value of starting anywhere and playing `a` forever.
///
/// Returns one result per action; actions whose blind value diverges
/// under the undiscounted criterion yield `Err`, which callers (the
/// blind-policy POMDP bound) surface as "bound does not exist".
pub fn blind_values(
    mdp: &Mdp,
    discount: Discount,
    opts: &SolveOpts,
) -> Vec<Result<Vec<f64>, Error>> {
    (0..mdp.n_actions())
        .map(|a| {
            let policy = Policy::constant(mdp.n_states(), ActionId::new(a));
            evaluate(mdp, &policy, discount, opts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MdpBuilder;

    fn recovery_mdp() -> Mdp {
        let mut b = MdpBuilder::new(3, 2);
        // Action 0 fixes state 0; action 1 fixes state 1; state 2 absorbing.
        b.transition(0, 0, 2, 1.0).reward(0, 0, -0.5);
        b.transition(1, 0, 1, 1.0).reward(1, 0, -1.0);
        b.transition(2, 0, 2, 1.0);
        b.transition(0, 1, 0, 1.0).reward(0, 1, -1.0);
        b.transition(1, 1, 2, 1.0).reward(1, 1, -0.5);
        b.transition(2, 1, 2, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn evaluate_optimal_policy_undiscounted() {
        let mdp = recovery_mdp();
        let rho = Policy::new(vec![ActionId::new(0), ActionId::new(1), ActionId::new(0)]);
        let v = evaluate(&mdp, &rho, Discount::Undiscounted, &SolveOpts::default()).unwrap();
        assert!((v[0] + 0.5).abs() < 1e-9);
        assert!((v[1] + 0.5).abs() < 1e-9);
        assert_eq!(v[2], 0.0);
    }

    #[test]
    fn evaluate_bad_policy_diverges_undiscounted() {
        let mdp = recovery_mdp();
        // Playing action 1 in state 0 loops forever with cost.
        let rho = Policy::constant(3, ActionId::new(1));
        assert!(matches!(
            evaluate(&mdp, &rho, Discount::Undiscounted, &SolveOpts::default()),
            Err(Error::DivergentValue { .. })
        ));
    }

    #[test]
    fn evaluate_bad_policy_finite_discounted() {
        let mdp = recovery_mdp();
        let rho = Policy::constant(3, ActionId::new(1));
        let v = evaluate(&mdp, &rho, Discount::Factor(0.5), &SolveOpts::default()).unwrap();
        // v(0) = -1 + 0.5 v(0) => -2.
        assert!((v[0] + 2.0).abs() < 1e-9);
    }

    #[test]
    fn policy_iteration_matches_value_iteration() {
        use crate::value_iteration::ValueIteration;
        let mdp = recovery_mdp();
        let pi = policy_iteration(&mdp, Discount::Factor(0.9), &SolveOpts::default()).unwrap();
        let vi = ValueIteration::new(Discount::Factor(0.9))
            .solve(&mdp)
            .unwrap();
        for (a, b) in pi.values.iter().zip(&vi.values) {
            assert!((a - b).abs() < 1e-6);
        }
        assert_eq!(pi.policy.action(0.into()).index(), 0);
        assert_eq!(pi.policy.action(1.into()).index(), 1);
    }

    #[test]
    fn policy_iteration_rejects_undiscounted() {
        let mdp = recovery_mdp();
        assert!(policy_iteration(&mdp, Discount::Undiscounted, &SolveOpts::default()).is_err());
    }

    #[test]
    fn blind_values_mix_finite_and_divergent() {
        let mdp = recovery_mdp();
        let blind = blind_values(&mdp, Discount::Undiscounted, &SolveOpts::default());
        // Neither constant action recovers both fault states.
        assert!(blind[0].is_err());
        assert!(blind[1].is_err());
        let blind_disc = blind_values(&mdp, Discount::Factor(0.9), &SolveOpts::default());
        assert!(blind_disc.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn constant_policy_is_uniform() {
        let rho = Policy::constant(4, ActionId::new(2));
        assert_eq!(rho.len(), 4);
        assert!(!rho.is_empty());
        assert!(rho.iter().all(|a| a.index() == 2));
    }
}
