//! Markov chain analysis: reachability, recurrence, expected rewards.
//!
//! The RA-Bound (paper Eq. 5) reduces a POMDP to a Markov chain whose
//! expected *total* (undiscounted) accumulated reward must exist and be
//! finite. Existence hinges on structure: every recurrent state must
//! accrue zero reward. This module provides the classification machinery
//! (strongly connected components, recurrent classes, transient states)
//! and the guarded solve.

use crate::Error;
use bpr_linalg::{solve, CsrMatrix};

/// A finite Markov chain with one reward per state.
///
/// # Examples
///
/// ```
/// use bpr_linalg::CsrMatrix;
/// use bpr_mdp::chain::MarkovChain;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 0 -> 1 -> 2(absorbing), rewards -1 on the way.
/// let p = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 2, 1.0)])?;
/// let chain = MarkovChain::new(p, vec![-1.0, -1.0, 0.0])?;
/// let v = chain.expected_total_reward(&Default::default())?;
/// assert!((v[0] + 2.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovChain {
    p: CsrMatrix,
    rewards: Vec<f64>,
}

/// Options for [`MarkovChain::expected_total_reward`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOpts {
    /// Relaxation factor for the Gauss–Seidel/SOR sweeps.
    pub omega: f64,
    /// Convergence tolerance on the `ℓ∞` change between sweeps.
    pub tol: f64,
    /// Maximum sweeps before giving up.
    pub max_iters: usize,
}

impl Default for SolveOpts {
    fn default() -> SolveOpts {
        SolveOpts {
            omega: 1.0,
            tol: 1e-10,
            max_iters: 100_000,
        }
    }
}

impl MarkovChain {
    /// Creates a chain from a stochastic matrix and per-state rewards.
    ///
    /// # Errors
    ///
    /// * [`Error::NotStochastic`] if a row does not sum to 1.
    /// * [`Error::InvalidReward`] if a reward is NaN or infinite.
    /// * [`Error::IndexOutOfBounds`] if `rewards.len()` differs from the
    ///   matrix dimension or the matrix is not square.
    pub fn new(p: CsrMatrix, rewards: Vec<f64>) -> Result<MarkovChain, Error> {
        if p.nrows() != p.ncols() {
            return Err(Error::IndexOutOfBounds {
                what: "chain matrix columns",
                index: p.ncols(),
                bound: p.nrows(),
            });
        }
        if rewards.len() != p.nrows() {
            return Err(Error::IndexOutOfBounds {
                what: "chain rewards length",
                index: rewards.len(),
                bound: p.nrows(),
            });
        }
        for (s, sum) in p.row_sums().iter().enumerate() {
            if (sum - 1.0).abs() > 1e-9 {
                return Err(Error::NotStochastic {
                    state: s,
                    action: 0,
                    sum: *sum,
                });
            }
        }
        for (s, &r) in rewards.iter().enumerate() {
            if !r.is_finite() {
                return Err(Error::InvalidReward {
                    state: s,
                    action: 0,
                    value: r,
                });
            }
        }
        Ok(MarkovChain { p, rewards })
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.p.nrows()
    }

    /// The transition matrix.
    pub fn transition_matrix(&self) -> &CsrMatrix {
        &self.p
    }

    /// The probability of moving from `from` to `to` in one step.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn transition_prob(&self, from: usize, to: usize) -> f64 {
        self.p.get(from, to)
    }

    /// The reward accrued when leaving state `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of bounds.
    pub fn reward(&self, s: usize) -> f64 {
        self.rewards[s]
    }

    /// All per-state rewards.
    pub fn rewards(&self) -> &[f64] {
        &self.rewards
    }

    /// True if state `s` transitions to itself with probability 1.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of bounds.
    pub fn is_absorbing(&self, s: usize) -> bool {
        let mut self_mass = 0.0;
        for (t, p) in self.p.row(s) {
            if t == s {
                self_mass = p;
            } else if p > 0.0 {
                return false;
            }
        }
        (self_mass - 1.0).abs() < 1e-12
    }

    /// States reachable (in any number of steps, including zero) from
    /// any of `sources`, as a boolean mask.
    pub fn reachable_from(&self, sources: &[usize]) -> Vec<bool> {
        let n = self.n_states();
        let mut seen = vec![false; n];
        let mut stack: Vec<usize> = sources.iter().copied().filter(|&s| s < n).collect();
        for &s in &stack {
            seen[s] = true;
        }
        while let Some(s) = stack.pop() {
            for (t, p) in self.p.row(s) {
                if p > 0.0 && !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        seen
    }

    /// For every state, whether some state in `targets` is reachable
    /// from it (in any number of steps, including zero).
    pub fn can_reach(&self, targets: &[usize]) -> Vec<bool> {
        // Reverse-BFS over the transposed graph.
        let n = self.n_states();
        let pt = self.p.transpose();
        let mut seen = vec![false; n];
        let mut stack: Vec<usize> = targets.iter().copied().filter(|&s| s < n).collect();
        for &s in &stack {
            seen[s] = true;
        }
        while let Some(s) = stack.pop() {
            for (t, p) in pt.row(s) {
                if p > 0.0 && !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        seen
    }

    /// Strongly connected components in reverse topological order
    /// (successor components first), via iterative Tarjan.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.n_states();
        let mut index = vec![usize::MAX; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut components: Vec<Vec<usize>> = Vec::new();

        // Explicit DFS stack of (node, successor iterator position).
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut call_stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
            let succ: Vec<usize> = self
                .p
                .row(root)
                .filter(|&(_, p)| p > 0.0)
                .map(|(t, _)| t)
                .collect();
            index[root] = next_index;
            lowlink[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;
            call_stack.push((root, succ, 0));

            while let Some((v, succ, mut i)) = call_stack.pop() {
                let mut recursed = false;
                while i < succ.len() {
                    let w = succ[i];
                    i += 1;
                    if index[w] == usize::MAX {
                        // "Recurse" into w.
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        let wsucc: Vec<usize> = self
                            .p
                            .row(w)
                            .filter(|&(_, p)| p > 0.0)
                            .map(|(t, _)| t)
                            .collect();
                        call_stack.push((v, succ, i));
                        call_stack.push((w, wsucc, 0));
                        recursed = true;
                        break;
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                }
                if recursed {
                    continue;
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    components.push(comp);
                }
                // Propagate lowlink to the parent frame.
                if let Some((parent, _, _)) = call_stack.last() {
                    let parent = *parent;
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
            }
        }
        components
    }

    /// The recurrent classes: SCCs with no probability mass leaving them.
    pub fn recurrent_classes(&self) -> Vec<Vec<usize>> {
        let sccs = self.sccs();
        let n = self.n_states();
        let mut comp_of = vec![usize::MAX; n];
        for (ci, comp) in sccs.iter().enumerate() {
            for &s in comp {
                comp_of[s] = ci;
            }
        }
        sccs.iter()
            .enumerate()
            .filter(|(ci, comp)| {
                comp.iter()
                    .all(|&s| self.p.row(s).all(|(t, p)| p == 0.0 || comp_of[t] == *ci))
            })
            .map(|(_, comp)| comp.clone())
            .collect()
    }

    /// Boolean mask of transient states (states not in any recurrent
    /// class).
    pub fn transient_states(&self) -> Vec<bool> {
        let mut transient = vec![true; self.n_states()];
        for comp in self.recurrent_classes() {
            for s in comp {
                transient[s] = false;
            }
        }
        transient
    }

    /// Expected total accumulated reward `v(s) = r(s) + Σ p(s'|s) v(s')`
    /// from every state, for chains whose recurrent classes are
    /// reward-free (otherwise no finite solution exists).
    ///
    /// Recurrent states get value 0; the transient subsystem is solved
    /// with Gauss–Seidel/SOR as in the paper's Section 3.1.
    ///
    /// # Errors
    ///
    /// * [`Error::DivergentValue`] if any recurrent state has a non-zero
    ///   reward.
    /// * Propagates solver errors ([`Error::Linalg`]) from the sweep.
    pub fn expected_total_reward(&self, opts: &SolveOpts) -> Result<Vec<f64>, Error> {
        let n = self.n_states();
        let transient = self.transient_states();
        for (s, &t) in transient.iter().enumerate() {
            if !t && self.rewards[s] != 0.0 {
                return Err(Error::DivergentValue {
                    what: "expected total reward (recurrent state with non-zero reward)",
                });
            }
        }
        // Index map onto the transient subsystem.
        let idx: Vec<Option<usize>> = {
            let mut next = 0usize;
            transient
                .iter()
                .map(|&t| {
                    if t {
                        let i = next;
                        next += 1;
                        Some(i)
                    } else {
                        None
                    }
                })
                .collect()
        };
        let nt = idx.iter().flatten().count();
        if nt == 0 {
            return Ok(vec![0.0; n]);
        }
        let mut triplets = Vec::new();
        let mut b = vec![0.0; nt];
        for s in 0..n {
            let Some(i) = idx[s] else { continue };
            b[i] = self.rewards[s];
            for (t, p) in self.p.row(s) {
                if let Some(j) = idx[t] {
                    if p > 0.0 {
                        triplets.push((i, j, p));
                    }
                }
            }
        }
        let sub = CsrMatrix::from_triplets(nt, nt, &triplets).map_err(Error::Linalg)?;
        let iter_opts = solve::IterOpts::default()
            .with_omega(opts.omega)
            .with_tol(opts.tol)
            .with_max_iters(opts.max_iters);
        let vt = solve::sor(&sub, &b, &iter_opts)?;
        let mut v = vec![0.0; n];
        for s in 0..n {
            if let Some(i) = idx[s] {
                v[s] = vt[i];
            }
        }
        Ok(v)
    }

    /// Exact expected total reward via dense LU on the transient
    /// subsystem. Suitable for small chains; used to verify the
    /// iterative solve.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MarkovChain::expected_total_reward`], with
    /// [`Error::Linalg`] wrapping singular-matrix failures.
    pub fn expected_total_reward_direct(&self) -> Result<Vec<f64>, Error> {
        let n = self.n_states();
        let transient = self.transient_states();
        for (s, &t) in transient.iter().enumerate() {
            if !t && self.rewards[s] != 0.0 {
                return Err(Error::DivergentValue {
                    what: "expected total reward (recurrent state with non-zero reward)",
                });
            }
        }
        let idx: Vec<Option<usize>> = {
            let mut next = 0usize;
            transient
                .iter()
                .map(|&t| {
                    if t {
                        let i = next;
                        next += 1;
                        Some(i)
                    } else {
                        None
                    }
                })
                .collect()
        };
        let nt = idx.iter().flatten().count();
        if nt == 0 {
            return Ok(vec![0.0; n]);
        }
        let mut triplets = Vec::new();
        let mut b = vec![0.0; nt];
        for s in 0..n {
            let Some(i) = idx[s] else { continue };
            b[i] = self.rewards[s];
            for (t, p) in self.p.row(s) {
                if let Some(j) = idx[t] {
                    triplets.push((i, j, p));
                }
            }
        }
        let sub = CsrMatrix::from_triplets(nt, nt, &triplets).map_err(Error::Linalg)?;
        let vt = solve::direct(&sub, &b).map_err(Error::from)?;
        let mut v = vec![0.0; n];
        for s in 0..n {
            if let Some(i) = idx[s] {
                v[s] = vt[i];
            }
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize, triplets: &[(usize, usize, f64)], rewards: &[f64]) -> MarkovChain {
        let p = CsrMatrix::from_triplets(n, n, triplets).unwrap();
        MarkovChain::new(p, rewards.to_vec()).unwrap()
    }

    #[test]
    fn rejects_non_stochastic_matrix() {
        let p = CsrMatrix::from_triplets(1, 1, &[(0, 0, 0.5)]).unwrap();
        assert!(matches!(
            MarkovChain::new(p, vec![0.0]),
            Err(Error::NotStochastic { .. })
        ));
    }

    #[test]
    fn rejects_reward_length_mismatch() {
        let p = CsrMatrix::identity(2);
        assert!(matches!(
            MarkovChain::new(p, vec![0.0]),
            Err(Error::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn absorbing_detection() {
        let c = chain(2, &[(0, 1, 1.0), (1, 1, 1.0)], &[0.0, 0.0]);
        assert!(!c.is_absorbing(0));
        assert!(c.is_absorbing(1));
    }

    #[test]
    fn reachability_forward_and_backward() {
        // 0 -> 1 -> 2(abs), 3 isolated loop.
        let c = chain(
            4,
            &[(0, 1, 1.0), (1, 2, 1.0), (2, 2, 1.0), (3, 3, 1.0)],
            &[0.0; 4],
        );
        assert_eq!(c.reachable_from(&[0]), vec![true, true, true, false]);
        assert_eq!(c.can_reach(&[2]), vec![true, true, true, false]);
        assert_eq!(c.reachable_from(&[3]), vec![false, false, false, true]);
    }

    #[test]
    fn sccs_partition_states() {
        // Cycle {0,1}, absorbing {2}.
        let c = chain(
            3,
            &[(0, 1, 1.0), (1, 0, 0.5), (1, 2, 0.5), (2, 2, 1.0)],
            &[0.0; 3],
        );
        let mut sccs = c.sccs();
        sccs.sort();
        assert_eq!(sccs, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn recurrent_and_transient_classification() {
        // 0 -> {0,1} cycle leaks to 2; 2 absorbing.
        let c = chain(
            3,
            &[(0, 1, 1.0), (1, 0, 0.5), (1, 2, 0.5), (2, 2, 1.0)],
            &[0.0; 3],
        );
        assert_eq!(c.recurrent_classes(), vec![vec![2]]);
        assert_eq!(c.transient_states(), vec![true, true, false]);
    }

    #[test]
    fn two_recurrent_classes() {
        let c = chain(
            4,
            &[
                (0, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (3, 0, 0.5),
                (3, 1, 0.5),
            ],
            &[0.0; 4],
        );
        let mut rec = c.recurrent_classes();
        rec.sort();
        assert_eq!(rec, vec![vec![0], vec![1, 2]]);
        assert_eq!(c.transient_states(), vec![false, false, false, true]);
    }

    #[test]
    fn expected_reward_of_absorbing_walk() {
        // Geometric: stay with prob 0.5 (reward -1 each step until absorbed).
        let c = chain(2, &[(0, 0, 0.5), (0, 1, 0.5), (1, 1, 1.0)], &[-1.0, 0.0]);
        let v = c.expected_total_reward(&SolveOpts::default()).unwrap();
        // E[steps in 0] = 2 => v = -2.
        assert!((v[0] + 2.0).abs() < 1e-8);
        assert_eq!(v[1], 0.0);
    }

    #[test]
    fn iterative_matches_direct() {
        let c = chain(
            4,
            &[
                (0, 1, 0.3),
                (0, 2, 0.7),
                (1, 2, 0.5),
                (1, 3, 0.5),
                (2, 3, 1.0),
                (3, 3, 1.0),
            ],
            &[-1.0, -2.0, -0.5, 0.0],
        );
        let it = c.expected_total_reward(&SolveOpts::default()).unwrap();
        let ex = c.expected_total_reward_direct().unwrap();
        for (a, b) in it.iter().zip(&ex) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn sor_accelerates_but_agrees() {
        let c = chain(
            3,
            &[
                (0, 0, 0.9),
                (0, 1, 0.1),
                (1, 1, 0.9),
                (1, 2, 0.1),
                (2, 2, 1.0),
            ],
            &[-1.0, -1.0, 0.0],
        );
        let plain = c.expected_total_reward(&SolveOpts::default()).unwrap();
        let relaxed = c
            .expected_total_reward(&SolveOpts {
                omega: 1.5,
                ..SolveOpts::default()
            })
            .unwrap();
        for (a, b) in plain.iter().zip(&relaxed) {
            assert!((a - b).abs() < 1e-7);
        }
        assert!((plain[0] + 20.0).abs() < 1e-6);
    }

    #[test]
    fn recurrent_nonzero_reward_is_divergent() {
        let c = chain(1, &[(0, 0, 1.0)], &[-1.0]);
        assert!(matches!(
            c.expected_total_reward(&SolveOpts::default()),
            Err(Error::DivergentValue { .. })
        ));
        assert!(matches!(
            c.expected_total_reward_direct(),
            Err(Error::DivergentValue { .. })
        ));
    }

    #[test]
    fn reward_free_recurrent_chain_is_zero() {
        let c = chain(2, &[(0, 1, 1.0), (1, 0, 1.0)], &[0.0, 0.0]);
        let v = c.expected_total_reward(&SolveOpts::default()).unwrap();
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn large_chain_scc_does_not_overflow_stack() {
        // A long path: each state leads to the next, last absorbing.
        let n = 50_000;
        let mut triplets: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        triplets.push((n - 1, n - 1, 1.0));
        let c = chain(n, &triplets, &vec![0.0; n]);
        let sccs = c.sccs();
        assert_eq!(sccs.len(), n);
        assert_eq!(c.recurrent_classes(), vec![vec![n - 1]]);
    }
}
