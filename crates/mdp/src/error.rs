use std::fmt;

/// Errors produced when building or solving MDP models.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A state or action index was outside the model's dimensions.
    IndexOutOfBounds {
        /// Description of the offending index kind ("state", "action", ...).
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound it must stay under.
        bound: usize,
    },
    /// The transition distribution `p(·|s, a)` does not sum to 1.
    NotStochastic {
        /// State whose distribution is malformed.
        state: usize,
        /// Action whose distribution is malformed.
        action: usize,
        /// The actual row sum.
        sum: f64,
    },
    /// A probability was negative, above one, or non-finite.
    InvalidProbability {
        /// State of the offending entry.
        state: usize,
        /// Action of the offending entry.
        action: usize,
        /// The offending value.
        value: f64,
    },
    /// A reward was NaN or infinite.
    InvalidReward {
        /// State of the offending reward.
        state: usize,
        /// Action of the offending reward.
        action: usize,
        /// The offending value.
        value: f64,
    },
    /// The model has zero states or zero actions.
    EmptyModel,
    /// A dynamic-programming recursion has no finite solution
    /// (e.g. a recurrent class accrues non-zero reward under β = 1).
    DivergentValue {
        /// Human-readable description of what diverged.
        what: &'static str,
    },
    /// An underlying linear-algebra operation failed.
    Linalg(bpr_linalg::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::IndexOutOfBounds { what, index, bound } => {
                write!(f, "{what} index {index} out of bounds (< {bound} required)")
            }
            Error::NotStochastic { state, action, sum } => write!(
                f,
                "transition distribution for state {state}, action {action} sums to {sum}, not 1"
            ),
            Error::InvalidProbability {
                state,
                action,
                value,
            } => write!(
                f,
                "invalid probability {value} for state {state}, action {action}"
            ),
            Error::InvalidReward {
                state,
                action,
                value,
            } => write!(
                f,
                "invalid reward {value} for state {state}, action {action}"
            ),
            Error::EmptyModel => write!(f, "model must have at least one state and one action"),
            Error::DivergentValue { what } => {
                write!(f, "no finite solution exists for {what}")
            }
            Error::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<bpr_linalg::Error> for Error {
    fn from(e: bpr_linalg::Error) -> Error {
        match e {
            bpr_linalg::Error::Diverged { .. } => Error::DivergentValue {
                what: "iterative linear solve (diverged)",
            },
            other => Error::Linalg(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let errs: Vec<Error> = vec![
            Error::IndexOutOfBounds {
                what: "state",
                index: 5,
                bound: 3,
            },
            Error::NotStochastic {
                state: 0,
                action: 1,
                sum: 0.5,
            },
            Error::InvalidProbability {
                state: 0,
                action: 0,
                value: -0.1,
            },
            Error::InvalidReward {
                state: 0,
                action: 0,
                value: f64::NAN,
            },
            Error::EmptyModel,
            Error::DivergentValue { what: "test" },
            Error::Linalg(bpr_linalg::Error::Singular { pivot: 0 }),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn linalg_divergence_maps_to_divergent_value() {
        let e: Error = bpr_linalg::Error::Diverged { iteration: 3 }.into();
        assert!(matches!(e, Error::DivergentValue { .. }));
    }

    #[test]
    fn source_is_exposed_for_linalg_errors() {
        use std::error::Error as _;
        let e = Error::Linalg(bpr_linalg::Error::Singular { pivot: 1 });
        assert!(e.source().is_some());
        assert!(Error::EmptyModel.source().is_none());
    }
}
