//! Edge-case tests for the Markov-chain machinery and value iteration:
//! degenerate chains, near-singular dynamics, and large sparse models.

use bpr_linalg::CsrMatrix;
use bpr_mdp::chain::{MarkovChain, SolveOpts};
use bpr_mdp::value_iteration::{Discount, ValueIteration, ViOpts};
use bpr_mdp::MdpBuilder;

fn chain(n: usize, triplets: &[(usize, usize, f64)], rewards: Vec<f64>) -> MarkovChain {
    let p = CsrMatrix::from_triplets(n, n, triplets).unwrap();
    MarkovChain::new(p, rewards).unwrap()
}

#[test]
fn single_absorbing_state_chain() {
    let c = chain(1, &[(0, 0, 1.0)], vec![0.0]);
    assert!(c.is_absorbing(0));
    assert_eq!(c.recurrent_classes(), vec![vec![0]]);
    assert_eq!(
        c.expected_total_reward(&SolveOpts::default()).unwrap(),
        vec![0.0]
    );
}

#[test]
fn long_chain_with_slow_leak_converges() {
    // 200 states in a line, each with a 0.99 self-loop: stiff but
    // solvable. Verifies the iterative solver handles slow mixing.
    let n = 200;
    let mut triplets = Vec::new();
    let mut rewards = vec![-1.0; n];
    for s in 0..n - 1 {
        triplets.push((s, s, 0.99));
        triplets.push((s, s + 1, 0.01));
    }
    triplets.push((n - 1, n - 1, 1.0));
    rewards[n - 1] = 0.0;
    let c = chain(n, &triplets, rewards);
    let v = c
        .expected_total_reward(&SolveOpts {
            max_iters: 1_000_000,
            ..SolveOpts::default()
        })
        .unwrap();
    // Each transient state expects 100 visits of cost 1 before moving on:
    // v(s) = -(100 * remaining states).
    let expect_first = -100.0 * (n as f64 - 1.0);
    assert!(
        (v[0] - expect_first).abs() / expect_first.abs() < 1e-5,
        "v[0] = {}, expected {}",
        v[0],
        expect_first
    );
    // Under-relaxation also converges and agrees; aggressive
    // over-relaxation fails loudly on this stiff non-symmetric system
    // (reported as an error, never as silently wrong numbers).
    let v_sor = c
        .expected_total_reward(&SolveOpts {
            omega: 0.95,
            max_iters: 2_000_000,
            ..SolveOpts::default()
        })
        .unwrap();
    assert!((v_sor[0] - v[0]).abs() / v[0].abs() < 1e-5);
    assert!(c
        .expected_total_reward(&SolveOpts {
            omega: 1.9,
            max_iters: 100_000,
            ..SolveOpts::default()
        })
        .is_err());
}

#[test]
fn disconnected_recurrent_classes_are_each_detected() {
    // Three separate 2-cycles.
    let mut triplets = Vec::new();
    for k in 0..3 {
        let a = 2 * k;
        let b = 2 * k + 1;
        triplets.push((a, b, 1.0));
        triplets.push((b, a, 1.0));
    }
    let c = chain(6, &triplets, vec![0.0; 6]);
    let mut classes = c.recurrent_classes();
    classes.sort();
    assert_eq!(classes, vec![vec![0, 1], vec![2, 3], vec![4, 5]]);
    assert!(c.transient_states().iter().all(|t| !t));
}

#[test]
fn value_iteration_on_a_large_sparse_model() {
    // 300 states in a ring with a single absorbing exit; two actions:
    // "walk" (move clockwise, cost 1) and "exit" (jump to the absorbing
    // state, cost = distance-independent 50). Optimal: walk if close,
    // exit if far.
    let n = 301; // state n-1 is absorbing
    let mut b = MdpBuilder::new(n, 2);
    for s in 0..n - 1 {
        let next = if s + 1 == n - 1 { n - 1 } else { s + 1 };
        b.transition(s, 0, next, 1.0).reward(s, 0, -1.0);
        b.transition(s, 1, n - 1, 1.0).reward(s, 1, -50.0);
    }
    b.transition(n - 1, 0, n - 1, 1.0);
    b.transition(n - 1, 1, n - 1, 1.0);
    let mdp = b.build().unwrap();
    let sol = ValueIteration::new(Discount::Undiscounted)
        .with_opts(ViOpts {
            max_iters: 10_000,
            ..ViOpts::default()
        })
        .solve(&mdp)
        .unwrap();
    // Near the exit, walking is optimal and costs the distance.
    assert!((sol.values[n - 2] + 1.0).abs() < 1e-6);
    assert!((sol.values[n - 11] + 10.0).abs() < 1e-6);
    // Far away, bailing out for 50 caps the cost.
    assert!((sol.values[0] + 50.0).abs() < 1e-6);
    assert_eq!(sol.policy.action(bpr_mdp::StateId::new(0)).index(), 1);
    assert_eq!(sol.policy.action(bpr_mdp::StateId::new(n - 2)).index(), 0);
}

#[test]
fn uniform_random_chain_of_large_model_is_stochastic() {
    let n = 150;
    let mut b = MdpBuilder::new(n, 3);
    for s in 0..n {
        for a in 0..3 {
            let t = (s + a + 1) % n;
            b.transition(s, a, t, 0.5);
            b.transition(s, a, s, 0.5);
            b.reward(s, a, if s == 0 { 0.0 } else { -0.1 });
        }
    }
    // Make state 0 absorbing and free so a finite solution exists.
    let mdp = {
        let mut b2 = MdpBuilder::new(n, 3);
        for s in 0..n {
            for a in 0..3 {
                if s == 0 {
                    b2.transition(0, a, 0, 1.0);
                } else {
                    let t = (s + a + 1) % n;
                    b2.transition(s, a, t, 0.5);
                    b2.transition(s, a, s, 0.5);
                    b2.reward(s, a, -0.1);
                }
            }
        }
        b2.build().unwrap()
    };
    let chain = mdp.uniform_random_chain();
    assert!(chain.transition_matrix().is_stochastic(1e-9));
    let v = chain.expected_total_reward(&SolveOpts::default()).unwrap();
    assert_eq!(v[0], 0.0);
    assert!(v[1..].iter().all(|&x| x < 0.0 && x.is_finite()));
    drop(b);
}
