//! Property-based tests of the MDP substrate: chain classification,
//! value-iteration optimality, policy evaluation consistency, and the
//! random-action chain.

use bpr_linalg::CsrMatrix;
use bpr_mdp::chain::{MarkovChain, SolveOpts};
use bpr_mdp::policy::{evaluate, Policy};
use bpr_mdp::value_iteration::{Discount, ValueIteration};
use bpr_mdp::{ActionId, Mdp, MdpBuilder, StateId};
use proptest::prelude::*;

/// A random "recovery-shaped" MDP: state 0 absorbing and free; each
/// other state has a dedicated fixing action plus looping actions with
/// costs.
fn arb_recovery_mdp() -> impl Strategy<Value = Mdp> {
    (2usize..=5, 2usize..=4)
        .prop_flat_map(|(n, na)| {
            (
                Just(n),
                Just(na),
                proptest::collection::vec(0.1f64..3.0, n * na),
                proptest::collection::vec(0.0f64..1.0, n),
            )
        })
        .prop_map(|(n, na, costs, fix_prob)| {
            let mut b = MdpBuilder::new(n, na);
            for a in 0..na {
                b.transition(0, a, 0, 1.0).reward(0, a, 0.0);
            }
            for s in 1..n {
                for a in 0..na {
                    // Action (s % na) fixes state s with prob >= 0.5,
                    // giving every state a way out (Condition 1).
                    let p_fix = if a == s % na {
                        0.5 + 0.5 * fix_prob[s]
                    } else {
                        0.0
                    };
                    if p_fix > 0.0 {
                        b.transition(s, a, 0, p_fix);
                        if p_fix < 1.0 {
                            b.transition(s, a, s, 1.0 - p_fix);
                        }
                    } else {
                        b.transition(s, a, s, 1.0);
                    }
                    b.reward(s, a, -costs[s * na + a]);
                }
            }
            b.build().expect("random MDP builds")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn value_iteration_dominates_every_policy(mdp in arb_recovery_mdp(), pick in 0usize..100) {
        let sol = ValueIteration::new(Discount::Undiscounted).solve(&mdp).unwrap();
        // Compare against an arbitrary deterministic policy that plays
        // the fixing action everywhere (finite value guaranteed).
        let na = mdp.n_actions();
        let rho = Policy::new(
            (0..mdp.n_states())
                .map(|s| ActionId::new(if s == 0 { pick % na } else { s % na }))
                .collect(),
        );
        let v_rho = evaluate(&mdp, &rho, Discount::Undiscounted, &SolveOpts::default()).unwrap();
        for (s, &vr) in v_rho.iter().enumerate() {
            prop_assert!(
                sol.values[s] + 1e-7 >= vr,
                "optimal {} below policy value {} in state {s}",
                sol.values[s],
                vr
            );
        }
        // And the greedy policy achieves the optimal value.
        let v_greedy = evaluate(&mdp, &sol.policy, Discount::Undiscounted, &SolveOpts::default())
            .unwrap();
        for (s, &vg) in v_greedy.iter().enumerate() {
            prop_assert!((vg - sol.values[s]).abs() < 1e-6);
        }
    }

    #[test]
    fn discounted_value_is_above_undiscounted(mdp in arb_recovery_mdp()) {
        // With non-positive rewards, discounting can only shrink the
        // magnitude of accumulated cost: V_beta >= V_1 pointwise.
        let undiscounted = ValueIteration::new(Discount::Undiscounted).solve(&mdp).unwrap();
        let discounted = ValueIteration::new(Discount::Factor(0.9)).solve(&mdp).unwrap();
        for s in 0..mdp.n_states() {
            prop_assert!(discounted.values[s] + 1e-7 >= undiscounted.values[s]);
        }
    }

    #[test]
    fn random_action_chain_is_stochastic_and_below_optimum(mdp in arb_recovery_mdp()) {
        let chain = mdp.uniform_random_chain();
        prop_assert!(chain.transition_matrix().is_stochastic(1e-9));
        let v_ra = chain.expected_total_reward(&SolveOpts::default()).unwrap();
        let sol = ValueIteration::new(Discount::Undiscounted).solve(&mdp).unwrap();
        for (s, &vra) in v_ra.iter().enumerate() {
            prop_assert!(
                vra <= sol.values[s] + 1e-7,
                "RA value {} above optimum {} in state {s}",
                vra,
                sol.values[s]
            );
        }
    }

    #[test]
    fn chain_classification_partitions_states(mdp in arb_recovery_mdp()) {
        let chain = mdp.uniform_random_chain();
        let n = chain.n_states();
        let recurrent: Vec<usize> = chain.recurrent_classes().into_iter().flatten().collect();
        let transient = chain.transient_states();
        for (s, &t) in transient.iter().enumerate() {
            let is_recurrent = recurrent.contains(&s);
            prop_assert_eq!(is_recurrent, !t, "state {} double-classified", s);
        }
        // State 0 is absorbing, hence recurrent.
        prop_assert!(recurrent.contains(&0));
        // SCCs partition the state space.
        let total: usize = chain.sccs().iter().map(Vec::len).sum();
        prop_assert_eq!(total, n);
    }

    #[test]
    fn expected_reward_is_zero_iff_no_cost_reachable(mdp in arb_recovery_mdp()) {
        let chain = mdp.uniform_random_chain();
        let v = chain.expected_total_reward(&SolveOpts::default()).unwrap();
        // State 0 is free and absorbing: value 0. Every other state
        // accrues cost before absorption: value < 0.
        prop_assert_eq!(v[0], 0.0);
        for (s, &val) in v.iter().enumerate().skip(1) {
            prop_assert!(val < 0.0, "state {} has value {}", s, val);
        }
    }
}

#[test]
fn policy_evaluation_matches_hand_computed_chain() {
    // Deterministic sanity check alongside the property tests:
    // 1 -> 0 with cost 2 under the policy, 0 absorbing.
    let p = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1.0)]).unwrap();
    let chain = MarkovChain::new(p, vec![0.0, -2.0]).unwrap();
    let v = chain.expected_total_reward(&SolveOpts::default()).unwrap();
    assert_eq!(v, vec![0.0, -2.0]);
    let _ = StateId::new(0);
}
